// Ablation: candidate-pool clustering method (Section III-B design choice).
//
// The paper argues for threshold hierarchical clustering over k-means,
// density-based methods and grid merging. This bench quantifies the
// trade-off each method makes on the same stay points:
//   pool size      — how many candidates the selector must choose among,
//   oracle MAE     — distance from each test address's true delivery
//                    location to the nearest pool location (a lower bound
//                    on any selector's error),
//   build time     — clustering wall-clock.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "cluster/grid_merge.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/optics.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "geo/kdtree.h"

namespace {

using namespace dlinf;

void Report(const char* name, const std::vector<Point>& pool,
            double build_seconds, const sim::World& world) {
  KdTree tree(pool);
  std::vector<double> oracle;
  for (const sim::Address& addr : world.addresses) {
    if (addr.split != sim::Split::kTest) continue;
    double d = 0.0;
    tree.Nearest(addr.true_delivery_location, &d);
    oracle.push_back(d);
  }
  std::printf("%-22s %10zu %12.1f %12.1f %10.2f\n", name, pool.size(),
              Mean(oracle), Percentile(oracle, 0.95), build_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);
  std::printf("== Ablation: candidate-pool clustering (SynDowBJ) ==\n");
  std::printf("%-22s %10s %12s %12s %10s\n", "method", "pool", "oracleMAE(m)",
              "oracleP95(m)", "build(s)");

  bench::BenchData bundle = bench::MakeBenchData(sim::SynDowBJConfig());
  std::vector<Point> stay_locations;
  for (const StayPoint& sp : bundle.data.gen->stay_points()) {
    stay_locations.push_back(sp.location);
  }
  const sim::World& world = *bundle.world;
  Rng rng(5);

  {
    Stopwatch watch;
    const auto clusters = AgglomerateByDistance(stay_locations, 40.0);
    const double secs = watch.ElapsedSeconds();
    std::vector<Point> pool;
    for (const auto& c : clusters) pool.push_back(c.centroid);
    Report("hierarchical D=40", pool, secs, world);
  }
  {
    Stopwatch watch;
    const DbscanResult clustering = Dbscan(stay_locations, {30.0, 3});
    std::vector<std::vector<Point>> members(clustering.num_clusters);
    for (size_t i = 0; i < stay_locations.size(); ++i) {
      if (clustering.labels[i] >= 0) {
        members[clustering.labels[i]].push_back(stay_locations[i]);
      }
    }
    std::vector<Point> pool;
    for (const auto& m : members) pool.push_back(Centroid(m));
    Report("DBSCAN eps=30 min=3", pool, watch.ElapsedSeconds(), world);
  }
  {
    Stopwatch watch;
    const OpticsResult optics = Optics(stay_locations, {80.0, 3});
    const std::vector<int> labels = optics.ExtractDbscanClusters(30.0);
    int num_clusters = 0;
    for (int l : labels) num_clusters = std::max(num_clusters, l + 1);
    std::vector<std::vector<Point>> members(num_clusters);
    for (size_t i = 0; i < stay_locations.size(); ++i) {
      if (labels[i] >= 0) members[labels[i]].push_back(stay_locations[i]);
    }
    std::vector<Point> pool;
    for (const auto& m : members) pool.push_back(Centroid(m));
    Report("OPTICS eps'=30", pool, watch.ElapsedSeconds(), world);
  }
  {
    // k-means needs k chosen a priori — the difficulty the paper calls out.
    // Use the hierarchical pool size as an oracle-chosen k, and half / double
    // of it to show the sensitivity.
    const size_t k_ref =
        AgglomerateByDistance(stay_locations, 40.0).size();
    for (double factor : {0.5, 1.0, 2.0}) {
      const int k = std::max(1, static_cast<int>(k_ref * factor));
      Stopwatch watch;
      const KMeansResult result = KMeans(stay_locations, k, &rng);
      char label[64];
      std::snprintf(label, sizeof(label), "k-means k=%d", k);
      Report(label, result.centroids, watch.ElapsedSeconds(), world);
    }
  }
  {
    Stopwatch watch;
    const auto clusters = GridMergeCluster(stay_locations, 40.0);
    const double secs = watch.ElapsedSeconds();
    std::vector<Point> pool;
    for (const auto& c : clusters) pool.push_back(c.centroid);
    Report("grid merge 40m", pool, secs, world);
  }
  bench::DumpMetrics(metrics_path);
  return 0;
}
