#ifndef DLINF_BENCH_BENCH_UTIL_H_
#define DLINF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_json.h"
#include "common/stopwatch.h"
#include "dlinfma/inferrer.h"
#include "obs/metrics.h"
#include "sim/generator.h"

namespace dlinf {
namespace bench {

/// Parses the shared bench flags `--metrics [PATH]` (dump a metrics JSON
/// snapshot when the run finishes; default path `metrics.json` next to the
/// results) and `--no-metrics` (disable collection entirely, for overhead
/// baselines). Consumed flags are removed from argv so downstream parsers
/// (e.g. google-benchmark's) never see them. Returns the dump path, empty
/// when no dump was requested.
inline std::string ParseMetricsFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--no-metrics") == 0) {
      obs::SetMetricsEnabled(false);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 < *argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        path = argv[++i];
      } else {
        path = "metrics.json";
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Dumps the global registry snapshot to `path` (no-op when empty).
inline void DumpMetrics(const std::string& path) {
  if (path.empty()) return;
  if (obs::MetricsRegistry::Global().DumpJson(path)) {
    std::printf("metrics snapshot -> %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
  }
}

/// Parses and consumes `--json PATH`: append this run's named wall-times to
/// the flat JSON results file at PATH (the bench regression gate's input;
/// see tools/bench_compare.cc). Returns the path, empty when not requested.
inline std::string ParseJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0) {
      path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Parses and consumes `--quick`: shrink workloads to CI size. A committed
/// baseline must be produced with the same flag the comparison run uses.
inline bool ParseQuickFlag(int* argc, char** argv) {
  bool quick = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return quick;
}

/// Wall time of a fixed CPU-bound integer workload (best of 3). Stored under
/// `_calibration` in every results file so bench_compare can normalize out
/// the speed difference between the machine that produced the committed
/// baseline and the CI runner: regressions are judged on
/// time/calibration ratios, not raw seconds.
inline double CalibrationSeconds() {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    uint64_t x = 0x9e3779b97f4a7c15ull;
    uint64_t acc = 0;
    for (int i = 0; i < 20'000'000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      acc += x;
    }
    const double seconds = watch.ElapsedSeconds();
    // Defeat dead-code elimination of the loop above.
    if (acc == 0x5dee7) std::printf(" ");
    if (seconds < best) best = seconds;
  }
  return best;
}

/// Collects named wall-times and merge-writes them into a flat JSON results
/// file, so several bench binaries can contribute to one BENCH_pr.json.
///
/// Repeated measurements keep the minimum — both within one run (repeated
/// Add of the same name, e.g. google-benchmark repetitions) and across runs
/// (WriteJson min-merges with the existing file). Running a bench binary N
/// times against the same file therefore yields best-of-N wall times, which
/// is what the regression gate compares: the minimum is the least
/// contention-polluted estimate of the code's true cost.
class BenchResults {
 public:
  void Add(const std::string& name, double seconds) {
    const auto it = values_.find(name);
    if (it == values_.end() || seconds < it->second) values_[name] = seconds;
  }

  /// Min-merges into the existing file at `path`, adds the `_calibration`
  /// reference timing, writes. No-op on empty path.
  bool WriteJson(const std::string& path) {
    if (path.empty()) return true;
    std::map<std::string, double> merged;
    if (auto existing = FlatJsonLoad(path)) merged = std::move(*existing);
    Add("_calibration", CalibrationSeconds());
    for (const auto& [name, seconds] : values_) {
      const auto it = merged.find(name);
      if (it == merged.end() || seconds < it->second) merged[name] = seconds;
    }
    if (!FlatJsonSave(path, merged)) {
      std::fprintf(stderr, "error: cannot write bench results to %s\n",
                   path.c_str());
      return false;
    }
    std::printf("bench results -> %s (%zu entries)\n", path.c_str(),
                merged.size());
    return true;
  }

 private:
  std::map<std::string, double> values_;
};

/// A dataset bundle whose world outlives the Dataset's pointer to it.
struct BenchData {
  std::unique_ptr<sim::World> world;
  dlinfma::Dataset data;
  dlinfma::SampleSet samples;
};

/// Generates a world and runs the full candidate pipeline + default feature
/// extraction.
inline BenchData MakeBenchData(
    const sim::SimConfig& config,
    const dlinfma::CandidateGeneration::Options& options = {}) {
  BenchData bundle;
  bundle.world = std::make_unique<sim::World>(sim::GenerateWorld(config));
  bundle.data = dlinfma::BuildDataset(*bundle.world, options);
  bundle.samples =
      dlinfma::ExtractSamples(bundle.data, dlinfma::FeatureConfig{});
  return bundle;
}

/// Both paper-like datasets with default options.
inline std::vector<sim::SimConfig> PaperConfigs() {
  return {sim::SynDowBJConfig(), sim::SynSubBJConfig()};
}

}  // namespace bench
}  // namespace dlinf

#endif  // DLINF_BENCH_BENCH_UTIL_H_
