#ifndef DLINF_BENCH_BENCH_UTIL_H_
#define DLINF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dlinfma/inferrer.h"
#include "obs/metrics.h"
#include "sim/generator.h"

namespace dlinf {
namespace bench {

/// Parses the shared bench flags `--metrics [PATH]` (dump a metrics JSON
/// snapshot when the run finishes; default path `metrics.json` next to the
/// results) and `--no-metrics` (disable collection entirely, for overhead
/// baselines). Consumed flags are removed from argv so downstream parsers
/// (e.g. google-benchmark's) never see them. Returns the dump path, empty
/// when no dump was requested.
inline std::string ParseMetricsFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--no-metrics") == 0) {
      obs::SetMetricsEnabled(false);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 < *argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        path = argv[++i];
      } else {
        path = "metrics.json";
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Dumps the global registry snapshot to `path` (no-op when empty).
inline void DumpMetrics(const std::string& path) {
  if (path.empty()) return;
  if (obs::MetricsRegistry::Global().DumpJson(path)) {
    std::printf("metrics snapshot -> %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
  }
}

/// A dataset bundle whose world outlives the Dataset's pointer to it.
struct BenchData {
  std::unique_ptr<sim::World> world;
  dlinfma::Dataset data;
  dlinfma::SampleSet samples;
};

/// Generates a world and runs the full candidate pipeline + default feature
/// extraction.
inline BenchData MakeBenchData(
    const sim::SimConfig& config,
    const dlinfma::CandidateGeneration::Options& options = {}) {
  BenchData bundle;
  bundle.world = std::make_unique<sim::World>(sim::GenerateWorld(config));
  bundle.data = dlinfma::BuildDataset(*bundle.world, options);
  bundle.samples =
      dlinfma::ExtractSamples(bundle.data, dlinfma::FeatureConfig{});
  return bundle;
}

/// Both paper-like datasets with default options.
inline std::vector<sim::SimConfig> PaperConfigs() {
  return {sim::SynDowBJConfig(), sim::SynSubBJConfig()};
}

}  // namespace bench
}  // namespace dlinf

#endif  // DLINF_BENCH_BENCH_UTIL_H_
