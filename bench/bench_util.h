#ifndef DLINF_BENCH_BENCH_UTIL_H_
#define DLINF_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dlinfma/inferrer.h"
#include "sim/generator.h"

namespace dlinf {
namespace bench {

/// A dataset bundle whose world outlives the Dataset's pointer to it.
struct BenchData {
  std::unique_ptr<sim::World> world;
  dlinfma::Dataset data;
  dlinfma::SampleSet samples;
};

/// Generates a world and runs the full candidate pipeline + default feature
/// extraction.
inline BenchData MakeBenchData(
    const sim::SimConfig& config,
    const dlinfma::CandidateGeneration::Options& options = {}) {
  BenchData bundle;
  bundle.world = std::make_unique<sim::World>(sim::GenerateWorld(config));
  bundle.data = dlinfma::BuildDataset(*bundle.world, options);
  bundle.samples =
      dlinfma::ExtractSamples(bundle.data, dlinfma::FeatureConfig{});
  return bundle;
}

/// Both paper-like datasets with default options.
inline std::vector<sim::SimConfig> PaperConfigs() {
  return {sim::SynDowBJConfig(), sim::SynSubBJConfig()};
}

}  // namespace bench
}  // namespace dlinf

#endif  // DLINF_BENCH_BENCH_UTIL_H_
