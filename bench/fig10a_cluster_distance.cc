// Figure 10(a): clustering distance selection.
//
// Sweeps the candidate-pool clustering distance D over {20, 30, 40, 50, 60}
// meters and reports DLInfMA's test MAE on both datasets. The paper finds a
// U-shape: small D leaves too many candidates to choose among, large D
// degrades candidate precision; D = 40 m sits at the turning point.

#include <cstdio>

#include "baselines/evaluation.h"
#include "bench_util.h"
#include "common/logging.h"
#include "dlinfma/dlinfma_method.h"

int main(int argc, char** argv) {
  using namespace dlinf;
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);

  std::printf("== Figure 10(a): MAE vs clustering distance D ==\n");
  std::printf("%-8s %12s %12s %14s %14s\n", "D(m)", "SynDowBJ", "SynSubBJ",
              "cands(Dow)", "cands(Sub)");
  for (double d : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    double mae[2];
    size_t cands[2];
    int index = 0;
    for (const sim::SimConfig& config : bench::PaperConfigs()) {
      dlinfma::CandidateGeneration::Options options;
      options.cluster_distance_m = d;
      bench::BenchData bundle = bench::MakeBenchData(config, options);
      dlinfma::DlInfMaMethod method;
      const baselines::MethodResult result =
          baselines::RunMethod(&method, bundle.data, bundle.samples);
      mae[index] = result.metrics.mae_m;
      cands[index] = bundle.data.gen->candidates().size();
      ++index;
    }
    std::printf("%-8.0f %12.1f %12.1f %14zu %14zu\n", d, mae[0], mae[1],
                cands[0], cands[1]);
    std::fflush(stdout);
  }
  bench::DumpMetrics(metrics_path);
  return 0;
}
