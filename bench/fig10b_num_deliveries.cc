// Figure 10(b): MAE vs number of deliveries.
//
// Splits SynDowBJ test addresses into three equal-frequency groups by their
// number of deliveries and reports per-group MAE for the representative
// methods of the paper's figure: GeoCloud, MaxTC-ILC, GeoRank, UNet-based,
// and DLInfMA. Expected shape: annotation/heuristic methods improve with
// more deliveries; DLInfMA stays flat-to-improving and dominates everywhere.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/evaluation.h"
#include "baselines/georank.h"
#include "baselines/simple_baselines.h"
#include "baselines/unet_baseline.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/stats.h"
#include "dlinfma/dlinfma_method.h"

int main(int argc, char** argv) {
  using namespace dlinf;
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);

  bench::BenchData bundle = bench::MakeBenchData(sim::SynDowBJConfig());

  // Tercile boundaries by number of deliveries over test addresses.
  std::vector<double> deliveries;
  for (const dlinfma::AddressSample& s : bundle.samples.test) {
    deliveries.push_back(
        static_cast<double>(bundle.data.gen->address_trips(s.address_id).size()));
  }
  const double q1 = Percentile(deliveries, 1.0 / 3.0);
  const double q2 = Percentile(deliveries, 2.0 / 3.0);
  auto group_of = [&](size_t i) {
    if (deliveries[i] <= q1) return 0;
    if (deliveries[i] <= q2) return 1;
    return 2;
  };

  std::vector<std::unique_ptr<dlinfma::Inferrer>> methods;
  methods.push_back(std::make_unique<baselines::GeoCloudBaseline>());
  methods.push_back(std::make_unique<baselines::MaxTcIlcBaseline>());
  methods.push_back(std::make_unique<baselines::GeoRankBaseline>());
  methods.push_back(std::make_unique<baselines::UnetBaseline>());
  methods.push_back(std::make_unique<dlinfma::DlInfMaMethod>());

  std::printf("== Figure 10(b): MAE by #deliveries group (SynDowBJ) ==\n");
  std::printf("(groups: <=%.0f / <=%.0f / >%.0f deliveries)\n", q1, q2, q2);
  std::printf("%-14s %10s %10s %10s\n", "method", "few", "medium", "many");

  const std::vector<Point> truth =
      dlinfma::GroundTruthOf(*bundle.world, bundle.samples.test);
  for (auto& method : methods) {
    method->Fit(bundle.data, bundle.samples);
    const std::vector<Point> predictions =
        method->InferAll(bundle.data, bundle.samples.test);
    std::vector<std::vector<double>> errors(3);
    for (size_t i = 0; i < predictions.size(); ++i) {
      errors[group_of(i)].push_back(Distance(predictions[i], truth[i]));
    }
    std::printf("%-14s %10.1f %10.1f %10.1f\n", method->name().c_str(),
                Mean(errors[0]), Mean(errors[1]), Mean(errors[2]));
    std::fflush(stdout);
  }
  bench::DumpMetrics(metrics_path);
  return 0;
}
