// Figure 13: inference efficiency.
//
// google-benchmark over the number of addresses to infer: the paper reports
// time growing linearly with the address count, heuristics fastest, GeoRank
// slightly slower than GeoCloud (quadratic pairwise comparisons), DLInfMA
// faster than UNet-based, and DLInfMA sustaining ~1K addresses/s in Python
// (far more here in C++; the shape, not the constant, is the claim).

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/georank.h"
#include "baselines/simple_baselines.h"
#include "baselines/unet_baseline.h"
#include "bench_util.h"
#include "common/logging.h"
#include "dlinfma/dlinfma_method.h"

namespace {

using namespace dlinf;

/// Set by --quick (see main): shrink the fixture's world and epoch counts to
/// CI size. Must be decided before the first GetFixture() call.
bool g_quick = false;

/// Shared fixture: one dataset, every method fitted once. Inference-only
/// timing happens in the benchmark loops.
struct Fixture {
  Fixture() {
    SetMinLogLevel(LogLevel::kWarning);
    sim::SimConfig config = sim::SynDowBJConfig();
    if (g_quick) config.num_days = 10;
    bundle = bench::MakeBenchData(config);

    geocloud.Fit(bundle.data, bundle.samples);
    georank.Fit(bundle.data, bundle.samples);
    dlinfma::TrainConfig quick_train;
    // Inference speed is what's measured, so cap the training budget.
    quick_train.max_epochs = g_quick ? 10 : 30;
    dlinfma_method =
        std::make_unique<dlinfma::DlInfMaMethod>("DLInfMA",
                                                 dlinfma::LocMatcherConfig{},
                                                 quick_train);
    dlinfma_method->Fit(bundle.data, bundle.samples);
    baselines::UnetBaseline::Options unet_options;
    unet_options.max_epochs = g_quick ? 2 : 5;
    unet = std::make_unique<baselines::UnetBaseline>(unet_options);
    unet->Fit(bundle.data, bundle.samples);
  }

  /// First `count` test samples, cycling if count exceeds the test set.
  std::vector<dlinfma::AddressSample> SampleSlice(int64_t count) const {
    std::vector<dlinfma::AddressSample> slice;
    slice.reserve(count);
    for (int64_t i = 0; i < count; ++i) {
      slice.push_back(bundle.samples.test[i % bundle.samples.test.size()]);
    }
    return slice;
  }

  bench::BenchData bundle;
  baselines::GeoCloudBaseline geocloud;
  baselines::MaxTcIlcBaseline max_tc_ilc;
  baselines::GeoRankBaseline georank;
  std::unique_ptr<baselines::UnetBaseline> unet;
  std::unique_ptr<dlinfma::DlInfMaMethod> dlinfma_method;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

template <typename MethodGetter>
void RunInference(benchmark::State& state, MethodGetter getter) {
  Fixture& fixture = GetFixture();
  const std::vector<dlinfma::AddressSample> slice =
      fixture.SampleSlice(state.range(0));
  for (auto _ : state) {
    auto out = getter(fixture)->InferAll(fixture.bundle.data, slice);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GeoCloud(benchmark::State& state) {
  RunInference(state, [](Fixture& f) { return &f.geocloud; });
}
void BM_MaxTcIlc(benchmark::State& state) {
  RunInference(state, [](Fixture& f) { return &f.max_tc_ilc; });
}
void BM_GeoRank(benchmark::State& state) {
  RunInference(state, [](Fixture& f) { return &f.georank; });
}
void BM_UnetBased(benchmark::State& state) {
  RunInference(state, [](Fixture& f) { return f.unet.get(); });
}
void BM_DLInfMA(benchmark::State& state) {
  RunInference(state, [](Fixture& f) { return f.dlinfma_method.get(); });
}

BENCHMARK(BM_GeoCloud)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxTcIlc)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GeoRank)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UnetBased)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DLInfMA)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

/// Console reporter that additionally records every per-iteration real time
/// (seconds) into a BenchResults, keyed `fig13.BM_Method/N`, so the run can
/// contribute to the flat JSON results file the regression gate compares.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::BenchResults* results)
      : results_(results) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations <= 0) {
        continue;
      }
      results_->Add("fig13." + run.benchmark_name(),
                    run.real_accumulated_time /
                        static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchResults* results_;
};

}  // namespace

// BENCHMARK_MAIN() expanded so the run can honour --metrics [PATH],
// --json PATH, and --quick (see bench_util.h).
int main(int argc, char** argv) {
  const std::string metrics_path =
      dlinf::bench::ParseMetricsFlag(&argc, argv);
  const std::string json_path = dlinf::bench::ParseJsonFlag(&argc, argv);
  g_quick = dlinf::bench::ParseQuickFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dlinf::bench::BenchResults results;
  JsonCaptureReporter reporter(&results);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  dlinf::bench::DumpMetrics(metrics_path);
  if (!results.WriteJson(json_path)) return 1;
  return 0;
}
