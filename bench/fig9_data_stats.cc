// Figure 9: data analysis of the evaluation datasets, printed as text
// series.
//   (a) number of distinct delivery locations per building,
//   (b) CDF of the number of deliveries per address,
//   (c) distribution of stay points per trip,
//   (d) distribution of location candidates per address.

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stats.h"

namespace {

using namespace dlinf;

void Fig9a(const std::vector<bench::BenchData>& bundles) {
  std::printf("\n-- Fig 9(a): #delivery locations per building (fraction) --\n");
  std::printf("%-12s %10s %10s\n", "#locations", "SynDowBJ", "SynSubBJ");
  std::vector<std::map<int, double>> dist(2);
  for (int d = 0; d < 2; ++d) {
    const sim::World& world = *bundles[d].world;
    std::map<int64_t, std::set<std::pair<double, double>>> per_building;
    for (const sim::Address& addr : world.addresses) {
      per_building[addr.building_id].insert(
          {addr.true_delivery_location.x, addr.true_delivery_location.y});
    }
    for (const auto& [building, locations] : per_building) {
      dist[d][static_cast<int>(locations.size())] += 1.0;
    }
    for (auto& [k, v] : dist[d]) v /= per_building.size();
  }
  for (int k = 1; k <= 5; ++k) {
    std::printf("%-12d %10.3f %10.3f\n", k, dist[0][k], dist[1][k]);
  }
  for (int d = 0; d < 2; ++d) {
    double multi = 0;
    for (auto& [k, v] : dist[d]) {
      if (k > 1) multi += v;
    }
    std::printf("buildings with >1 location (%s): %.1f%%\n",
                bundles[d].world->name.c_str(), 100.0 * multi);
  }
}

void Fig9b(const std::vector<bench::BenchData>& bundles) {
  std::printf("\n-- Fig 9(b): CDF of #deliveries per address --\n");
  std::printf("%-14s %10s %10s\n", "#deliveries<=", "SynDowBJ", "SynSubBJ");
  std::vector<Histogram> cdfs;
  for (const bench::BenchData& b : bundles) {
    Histogram h(0.5, 1.0, 40);  // Buckets at 1, 2, 3, ...
    for (int64_t id : b.world->DeliveredAddressIds()) {
      h.Add(static_cast<double>(b.data.gen->address_trips(id).size()));
    }
    cdfs.push_back(h);
  }
  for (int k : {1, 2, 3, 5, 8, 12, 16, 20, 30, 40}) {
    std::printf("%-14d %10.3f %10.3f\n", k,
                cdfs[0].CumulativeFraction(k - 1),
                cdfs[1].CumulativeFraction(k - 1));
  }
}

void Fig9c(const std::vector<bench::BenchData>& bundles) {
  std::printf("\n-- Fig 9(c): stay points per trip --\n");
  std::printf("%-14s %10s %10s\n", "bucket", "SynDowBJ", "SynSubBJ");
  std::vector<Histogram> hists;
  std::vector<double> means;
  for (const bench::BenchData& b : bundles) {
    Histogram h(0.0, 5.0, 12);
    std::map<int64_t, int> per_trip;
    for (const StayPoint& sp : b.data.gen->stay_points()) {
      per_trip[sp.trip_id]++;
    }
    std::vector<double> counts;
    for (const auto& [trip, count] : per_trip) {
      h.Add(count);
      counts.push_back(count);
    }
    hists.push_back(h);
    means.push_back(Mean(counts));
  }
  for (int bucket = 0; bucket < 12; ++bucket) {
    std::printf("[%2.0f,%2.0f)        %10.3f %10.3f\n",
                hists[0].BucketLow(bucket), hists[0].BucketLow(bucket) + 5,
                hists[0].Fraction(bucket), hists[1].Fraction(bucket));
  }
  std::printf("mean stay points/trip: %.1f (SynDowBJ) %.1f (SynSubBJ)\n",
              means[0], means[1]);
}

void Fig9d(const std::vector<bench::BenchData>& bundles) {
  std::printf("\n-- Fig 9(d): location candidates per address --\n");
  std::printf("%-14s %10s %10s\n", "bucket", "SynDowBJ", "SynSubBJ");
  std::vector<Histogram> hists;
  std::vector<double> means;
  for (const bench::BenchData& b : bundles) {
    Histogram h(0.0, 5.0, 12);
    std::vector<double> counts;
    auto add = [&](const std::vector<dlinfma::AddressSample>& samples) {
      for (const auto& s : samples) {
        h.Add(static_cast<double>(s.candidate_ids.size()));
        counts.push_back(static_cast<double>(s.candidate_ids.size()));
      }
    };
    add(b.samples.train);
    add(b.samples.val);
    add(b.samples.test);
    hists.push_back(h);
    means.push_back(Mean(counts));
  }
  for (int bucket = 0; bucket < 12; ++bucket) {
    std::printf("[%2.0f,%2.0f)        %10.3f %10.3f\n",
                hists[0].BucketLow(bucket), hists[0].BucketLow(bucket) + 5,
                hists[0].Fraction(bucket), hists[1].Fraction(bucket));
  }
  std::printf("mean candidates/address: %.1f (SynDowBJ) %.1f (SynSubBJ)\n",
              means[0], means[1]);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);
  std::printf("== Figure 9: dataset distributions ==\n");
  std::vector<bench::BenchData> bundles;
  for (const sim::SimConfig& config : bench::PaperConfigs()) {
    bundles.push_back(bench::MakeBenchData(config));
  }
  Fig9a(bundles);
  Fig9b(bundles);
  Fig9c(bundles);
  Fig9d(bundles);
  bench::DumpMetrics(metrics_path);
  return 0;
}
