// ingest_throughput — end-to-end throughput/ack-latency bench of the
// durable ingestion front end (DESIGN.md §14): boots an IngestServer with a
// fresh WAL on loopback and drives it with producer client threads
// streaming deterministic synthetic trips as transactional POST /ingest
// batches — every record WAL-committed before its ack.
//
//   ingest_throughput [--quick] [--json PATH] [--threads 3] [--pipeline 32]
//                     [--seconds 1.5] [--fsync-every 0]
//
// Records into the bench-regression gate (tools/bench_compare):
//   ingest.point_seconds    mean wall seconds per acked record (1/RPS)
//   ingest.ack_p50_seconds  median per-batch ack latency
//   ingest.ack_p99_seconds  tail ack latency
//
// Hard gate (loopback, fsync off — the page-cache durability tier):
// sustained >= 10k records/s with p99 batch ack < 50 ms. Exits 1 when
// missed, so CI fails before bench_compare sees the numbers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "apps/http_conn.h"
#include "bench_util.h"
#include "common/check.h"
#include "stream/ingest_server.h"

namespace {

using dlinf::apps::HttpClient;
using dlinf::stream::FormatIngestLine;
using dlinf::stream::IngestRecord;
using dlinf::stream::IngestServer;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ClientResult {
  int64_t records = 0;
  int64_t errors = 0;
  std::vector<double> latency_s;  ///< One entry per POST (batch ack RTT).
};

/// One producer streaming synthetic trips (same shape as load_gen
/// --ingest): start_trip, a deterministic drifting point walk, finish_trip,
/// packed into POST batches of `pipeline` records.
void RunProducer(int port, int thread_index, int pipeline, double seconds,
                 ClientResult* result) {
  HttpClient client;
  if (!client.Connect(port)) {
    result->errors = 1;
    return;
  }
  const std::string client_id = "bench-" + std::to_string(thread_index);
  uint64_t seq = 0;
  int64_t trip = 0;
  int64_t point = 0;  // 0: next record starts a trip.
  const double deadline = NowSeconds() + seconds;
  while (NowSeconds() < deadline) {
    std::string body;
    for (int i = 0; i < pipeline; ++i) {
      IngestRecord record;
      record.client_id = client_id;
      record.seq = ++seq;
      if (point == 0) {
        record.kind = IngestRecord::Kind::kStartTrip;
        record.courier_id = 1000 + thread_index;
        record.start_time = static_cast<double>(trip) * 3600.0;
        record.end_time = record.start_time + 3600.0;
        ++point;
      } else if (point <= 8) {
        record.kind = IngestRecord::Kind::kPoint;
        record.x = 100.0 * thread_index + 10.0 * trip + point * 0.5;
        record.y = 50.0 * thread_index + 5.0 * trip + point * 0.25;
        record.t = static_cast<double>(trip) * 3600.0 + point * 15.0;
        ++point;
      } else {
        record.kind = IngestRecord::Kind::kFinishTrip;
        point = 0;
        ++trip;
      }
      body += FormatIngestLine(record);
      body += '\n';
    }
    const double start = NowSeconds();
    if (!client.SendPost("/ingest", body)) {
      ++result->errors;
      return;
    }
    int status = 0;
    std::string response;
    if (!client.ReadResponse(&status, &response)) {
      ++result->errors;
      return;
    }
    if (status != 200) {
      ++result->errors;
      continue;
    }
    result->records += pipeline;
    result->latency_s.push_back(NowSeconds() - start);
  }
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[rank];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = dlinf::bench::ParseJsonFlag(&argc, argv);
  const bool quick = dlinf::bench::ParseQuickFlag(&argc, argv);
  const std::string metrics_path = dlinf::bench::ParseMetricsFlag(&argc, argv);

  int threads = 3;
  int pipeline = 32;
  double seconds = quick ? 0.8 : 1.5;
  int64_t fsync_every = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--threads" && has_value) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--pipeline" && has_value) {
      pipeline = std::atoi(argv[++i]);
    } else if (arg == "--seconds" && has_value) {
      seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fsync-every" && has_value) {
      fsync_every = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::string wal_dir =
      (std::filesystem::temp_directory_path() / "ingest_throughput_wal")
          .string();
  std::filesystem::remove_all(wal_dir);

  IngestServer::Options options;
  options.wal.dir = wal_dir;
  options.wal.fsync_every_n = fsync_every;
  // Tiny static city: the bench measures the WAL + apply path, not mining
  // over a big world.
  dlinf::sim::SimConfig config = dlinf::sim::SynDowBJConfig();
  config.num_days = 1;
  config.num_communities = 3;
  options.city = dlinf::sim::GenerateWorld(config);
  options.city.trips.clear();
  IngestServer server(std::move(options));
  std::string error;
  CHECK(server.Start(&error)) << error;

  // Warm-up (connection setup, first segment allocation), then the
  // measured run.
  {
    ClientResult warmup;
    RunProducer(server.port(), 99, pipeline, 0.2, &warmup);
    CHECK(warmup.errors == 0) << "warm-up produced errors";
  }

  std::vector<ClientResult> results(static_cast<size_t>(threads));
  const double start = NowSeconds();
  std::vector<std::thread> producers;
  for (int i = 0; i < threads; ++i) {
    producers.emplace_back(RunProducer, server.port(), i, pipeline, seconds,
                           &results[static_cast<size_t>(i)]);
  }
  for (std::thread& producer : producers) producer.join();
  const double wall = NowSeconds() - start;

  int64_t records = 0;
  int64_t errors = 0;
  std::vector<double> latency;
  for (const ClientResult& result : results) {
    records += result.records;
    errors += result.errors;
    latency.insert(latency.end(), result.latency_s.begin(),
                   result.latency_s.end());
  }
  std::sort(latency.begin(), latency.end());

  const double rps = wall > 0.0 ? static_cast<double>(records) / wall : 0.0;
  const double p50 = Percentile(latency, 0.50);
  const double p99 = Percentile(latency, 0.99);
  std::printf(
      "ingest_throughput: threads=%d pipeline=%d fsync_every=%lld "
      "records=%lld points_per_sec=%.0f ack_p50_ms=%.3f ack_p99_ms=%.3f "
      "errors=%lld\n",
      threads, pipeline, static_cast<long long>(fsync_every),
      static_cast<long long>(records), rps, p50 * 1e3, p99 * 1e3,
      static_cast<long long>(errors));

  server.Stop();

  dlinf::bench::BenchResults bench_results;
  if (rps > 0.0) bench_results.Add("ingest.point_seconds", 1.0 / rps);
  bench_results.Add("ingest.ack_p50_seconds", p50);
  bench_results.Add("ingest.ack_p99_seconds", p99);
  if (!bench_results.WriteJson(json_path)) return 2;
  dlinf::bench::DumpMetrics(metrics_path);
  std::filesystem::remove_all(wal_dir);

  if (errors > 0) {
    std::fprintf(stderr, "FAIL: %lld transport/status errors\n",
                 static_cast<long long>(errors));
    return 1;
  }
  // The acceptance gate: >= 10k WAL-committed records/s, p99 ack < 50 ms
  // (fsync off: durability against SIGKILL, not power loss).
  if (fsync_every == 0 && (rps < 10000.0 || p99 >= 0.050)) {
    std::fprintf(stderr,
                 "FAIL: acceptance gate missed (rps=%.0f need >=10000, "
                 "ack_p99=%.3fms need <50ms)\n",
                 rps, p99 * 1e3);
    return 1;
  }
  std::printf("OK: sustained %.0f records/s at ack p99 %.3f ms\n", rps,
              p99 * 1e3);
  return 0;
}
