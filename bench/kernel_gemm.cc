// GEMM kernel microbench (DESIGN.md §12) — isolates the nn/kernels.h
// matrix-multiply from everything above it, on the shapes the model
// actually runs:
//
//   kernel.gemm.attn       the per-(batch, head) attention score panel
//                          (N=24 candidates, head dim 8)
//   kernel.gemm.proj       the flattened [B*N, D] QKV/output projection
//   kernel.gemm.ff         the transformer feed-forward layer
//   kernel.gemm.large      a cache-blocking stress shape (256^3)
//
// Each shape is also run with the scalar path forced
// (kernel.gemm.<name>.scalar), so the bench history tracks the SIMD
// speedup itself — a dispatch regression (e.g. the AVX2 TU silently
// compiled out) shows up as the two curves collapsing together.
//
// Flags: --json PATH (append results), --quick (fewer repetitions).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "nn/kernels.h"

namespace dlinf {
namespace bench {
namespace {

struct GemmCase {
  const char* name;
  int64_t m, n, k;
  int64_t iters;  // Inner repetitions per timed sample.
};

volatile float g_sink = 0.0f;

double TimeGemm(const GemmCase& c, int reps) {
  Rng rng(42);
  std::vector<float> a(static_cast<size_t>(c.m * c.k));
  std::vector<float> b(static_cast<size_t>(c.k * c.n));
  std::vector<float> out(static_cast<size_t>(c.m * c.n), 0.0f);
  for (float& x : a) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.Uniform(-1.0, 1.0));

  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (int64_t i = 0; i < c.iters; ++i) {
      nn::kernel::Gemm(c.m, c.n, c.k, a.data(), b.data(), out.data(),
                       /*accumulate=*/false);
    }
    const double seconds = watch.ElapsedSeconds();
    if (seconds < best) best = seconds;
    g_sink = out.front() + out.back();
  }
  return best;
}

}  // namespace

int Main(int argc, char** argv) {
  const std::string metrics_path = ParseMetricsFlag(&argc, argv);
  const std::string json_path = ParseJsonFlag(&argc, argv);
  const bool quick = ParseQuickFlag(&argc, argv);
  const int reps = quick ? 3 : 5;
  BenchResults results;

  const GemmCase cases[] = {
      {"attn", 24, 24, 8, 20000},
      {"proj", 1536, 16, 16, 2000},
      {"ff", 1536, 32, 16, 1000},
      {"large", 256, 256, 256, 30},
  };

  std::printf("== GEMM kernel microbench (path: %s) ==\n",
              nn::kernel::PathName());
  std::printf("%-8s %14s %14s %8s\n", "shape", "simd/active(s)", "scalar(s)",
              "speedup");
  for (const GemmCase& c : cases) {
    const double active = TimeGemm(c, reps);
    results.Add(std::string("kernel.gemm.") + c.name, active);

    nn::kernel::ForceScalar(true);
    const double scalar = TimeGemm(c, reps);
    nn::kernel::ForceScalar(false);
    results.Add(std::string("kernel.gemm.") + c.name + ".scalar", scalar);

    std::printf("%-8s %14.6f %14.6f %7.2fx  (%lldx%lldx%lld)\n", c.name,
                active, scalar, scalar / active, static_cast<long long>(c.m),
                static_cast<long long>(c.n), static_cast<long long>(c.k));
  }

  results.WriteJson(json_path);
  DumpMetrics(metrics_path);
  return 0;
}

}  // namespace bench
}  // namespace dlinf

int main(int argc, char** argv) { return dlinf::bench::Main(argc, argv); }
