// Profiler overhead microbench (DESIGN.md §15) — the cost contract behind
// leaving the sampling CPU profiler compiled into release binaries:
//
//   profiler.disarmed.check      N ProfilingArmed() checks (one relaxed load)
//   profiler.workload.disarmed   fixed CPU-bound workload, profiler off
//   profiler.workload.armed99    the same workload sampled at 99 Hz
//
// Two gates, enforced in-binary (exit 1) so a regression fails the bench
// job even before bench_compare sees the JSON:
//   - disarmed is free: the armed-flag check must cost no more than a few
//     ns per op (it is one relaxed atomic load, same budget as the
//     telemetry_overhead checks);
//   - armed at the default 99 Hz costs < 5% wall time on a CPU-bound
//     workload — 99 signals/s, each a backtrace into a per-thread ring.
//
// The profiler.* JSON keys additionally feed the bench_compare regression
// gate once the committed baseline carries them (candidate-only keys are
// informational — src/common/bench_compare.h).
//
// Flags: --json PATH (append results), --quick (smaller workload).

#include <cstdint>
#include <cstdio>

#include "bench_util.h"
#include "obs/profiler.h"

namespace dlinf {
namespace bench {
namespace {

constexpr int64_t kCheckIterations = 100'000'000;
constexpr int kRepetitions = 3;

/// Opaque sink the optimizer cannot see through.
volatile uint64_t g_sink = 0;

template <typename Fn>
double BestOfReps(Fn&& body) {
  double best = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Stopwatch watch;
    body();
    const double seconds = watch.ElapsedSeconds();
    if (seconds < best) best = seconds;
  }
  return best;
}

/// The fixed CPU-bound workload both configurations run: xorshift mixing,
/// ~1 ns/iteration, long enough that 99 Hz lands dozens of samples.
void SpinWorkload(int64_t iterations) {
  uint64_t x = 0x9e3779b97f4a7c15ull;
  uint64_t acc = 0;
  for (int64_t i = 0; i < iterations; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    acc += x;
  }
  g_sink = acc;
}

}  // namespace

int Main(int argc, char** argv) {
  const std::string metrics_path = ParseMetricsFlag(&argc, argv);
  const std::string json_path = ParseJsonFlag(&argc, argv);
  const bool quick = ParseQuickFlag(&argc, argv);
  BenchResults results;

  const int64_t workload_iterations = quick ? 200'000'000 : 1'000'000'000;
  obs::prof::RegisterCurrentThread("bench.main");

  // Gate 1: the disarmed armed-flag check is one relaxed load.
  const double check_seconds = BestOfReps([] {
    uint64_t acc = 0;
    for (int64_t i = 0; i < kCheckIterations; ++i) {
      acc += obs::prof::ProfilingArmed() ? 1 : 0;
    }
    g_sink = acc;
  });
  results.Add("profiler.disarmed.check", check_seconds);

  // Gate 2: armed at the default 99 Hz vs disarmed on the same workload.
  const double disarmed_seconds =
      BestOfReps([workload_iterations] { SpinWorkload(workload_iterations); });
  results.Add("profiler.workload.disarmed", disarmed_seconds);

  obs::prof::CpuProfiler::Options options;
  options.hz = 99;
  std::string error;
  if (!obs::prof::CpuProfiler::Global().Start(options, &error)) {
    std::fprintf(stderr, "FAIL: profiler Start: %s\n", error.c_str());
    return 1;
  }
  const double armed_seconds =
      BestOfReps([workload_iterations] { SpinWorkload(workload_iterations); });
  obs::prof::CpuProfiler::Global().Stop();
  results.Add("profiler.workload.armed99", armed_seconds);

  const double check_ns = check_seconds / kCheckIterations * 1e9;
  const double overhead =
      disarmed_seconds > 0.0 ? armed_seconds / disarmed_seconds - 1.0 : 0.0;
  const int64_t samples = obs::prof::CpuProfiler::Global().sample_count();

  std::printf("disarmed armed-flag check: %.3f ns/op (best of %d x %lld)\n",
              check_ns, kRepetitions,
              static_cast<long long>(kCheckIterations));
  std::printf("workload %.4fs disarmed -> %.4fs armed @ 99 Hz "
              "(%+.2f%%, %lld samples)\n",
              disarmed_seconds, armed_seconds, overhead * 100.0,
              static_cast<long long>(samples));

  results.WriteJson(json_path);
  DumpMetrics(metrics_path);

  // A relaxed load plus a branch; 5 ns/op flags an accidental fence or
  // function call without tripping on slow CI machines.
  if (check_ns > 5.0) {
    std::fprintf(stderr, "FAIL: disarmed check %.3f ns/op > 5 ns budget\n",
                 check_ns);
    return 1;
  }
  if (overhead > 0.05) {
    std::fprintf(stderr, "FAIL: armed overhead %.2f%% > 5%% budget\n",
                 overhead * 100.0);
    return 1;
  }
  if (samples <= 0) {
    std::fprintf(stderr, "FAIL: armed run captured no samples\n");
    return 1;
  }
  std::printf("OK: disarmed check and 99 Hz overhead within budget\n");
  return 0;
}

}  // namespace bench
}  // namespace dlinf

int main(int argc, char** argv) { return dlinf::bench::Main(argc, argv); }
