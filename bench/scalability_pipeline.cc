// Section V-F pipeline scalability:
//  (1) stay-point extraction with trajectory-level parallelization,
//  (2) bi-weekly candidate-pool construction vs one-shot clustering,
//  (3) training-time comparison: GeoRank << DLInfMA < UNet-based
//      (ordering per the paper; absolute numbers differ by substrate).
//
// Flags: --json PATH appends stage wall-times to a flat JSON results file
// (input of tools/bench_compare, the CI regression gate); --quick shrinks
// the world and epoch counts to CI size (the committed baseline under
// bench/baselines/ is produced with --quick as well).

#include <cstdio>

#include "baselines/georank.h"
#include "baselines/unet_baseline.h"
#include "bench_util.h"
#include "cluster/hierarchical.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dlinfma/dlinfma_method.h"

int main(int argc, char** argv) {
  using namespace dlinf;
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  const std::string json_path = bench::ParseJsonFlag(&argc, argv);
  const bool quick = bench::ParseQuickFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);
  bench::BenchResults results;
  std::printf("== Section V-F: pipeline scalability%s ==\n",
              quick ? " (quick)" : "");

  sim::SimConfig config = sim::SynDowBJConfig();
  if (quick) config.num_days = 10;
  const sim::World world = sim::GenerateWorld(config);
  std::printf("world: %lld GPS points, %zu trips\n",
              static_cast<long long>(world.TotalTrajectoryPoints()),
              world.trips.size());

  // --- (1) Stay-point extraction, serial vs parallel. ----------------------
  dlinfma::CandidateGeneration::Options options;
  {
    Stopwatch watch;
    const auto serial = dlinfma::CandidateGeneration::Build(world, options);
    const double serial_s = watch.ElapsedSeconds();
    ThreadPool pool(4);
    watch.Reset();
    const auto parallel =
        dlinfma::CandidateGeneration::Build(world, options, &pool);
    const double parallel_s = watch.ElapsedSeconds();
    results.Add("pipeline.staypoint.serial", serial_s);
    results.Add("pipeline.staypoint.pool4", parallel_s);
    std::printf(
        "stay-point extraction + pool: serial %.2fs | 4-thread pool %.2fs "
        "(%zu stay points -> %zu candidates)\n",
        serial_s, parallel_s, serial.stay_points().size(),
        serial.candidates().size());
  }

  // --- (2) Bi-weekly incremental clustering vs one-shot. --------------------
  {
    const auto gen = dlinfma::CandidateGeneration::Build(world, options);
    std::vector<Point> points;
    for (const StayPoint& sp : gen.stay_points()) {
      points.push_back(sp.location);
    }
    Stopwatch watch;
    const auto one_shot = AgglomerateByDistance(points, 40.0);
    const double one_shot_s = watch.ElapsedSeconds();
    results.Add("pipeline.cluster.oneshot", one_shot_s);
    std::printf(
        "clustering %zu stay points: one-shot %.2fs -> %zu clusters "
        "(bi-weekly merge is part of the pipeline timing above)\n",
        points.size(), one_shot_s, one_shot.size());
  }

  // --- (3) Training time comparison. ----------------------------------------
  {
    bench::BenchData bundle = bench::MakeBenchData(config);
    std::printf("\n%-14s %12s\n", "model", "train(s)");

    baselines::GeoRankBaseline georank;
    Stopwatch watch;
    georank.Fit(bundle.data, bundle.samples);
    results.Add("pipeline.train.georank", watch.ElapsedSeconds());
    std::printf("%-14s %12.1f\n", "GeoRank", watch.ElapsedSeconds());

    baselines::UnetBaseline::Options unet_options;
    if (quick) unet_options.max_epochs = 2;
    baselines::UnetBaseline unet(unet_options);
    watch.Reset();
    unet.Fit(bundle.data, bundle.samples);
    results.Add("pipeline.train.unet", watch.ElapsedSeconds());
    std::printf("%-14s %12.1f\n", "UNet-based", watch.ElapsedSeconds());

    dlinfma::TrainConfig train_config;
    if (quick) {
      train_config.max_epochs = 15;
      train_config.early_stop_patience = 5;
    }
    dlinfma::DlInfMaMethod dlinfma_method("DLInfMA", {}, train_config);
    watch.Reset();
    dlinfma_method.Fit(bundle.data, bundle.samples);
    results.Add("pipeline.train.dlinfma", watch.ElapsedSeconds());
    std::printf("%-14s %12.1f (epochs=%d)\n", "DLInfMA",
                watch.ElapsedSeconds(),
                dlinfma_method.train_result().epochs_run);
  }
  bench::DumpMetrics(metrics_path);
  if (!results.WriteJson(json_path)) return 1;
  return 0;
}
