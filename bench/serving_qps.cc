// serving_qps — end-to-end throughput/tail-latency bench of the sharded
// query engine (DESIGN.md §11): trains a small fixed-seed pipeline, saves
// it as a bundle, boots a 4-shard QueryEngine on loopback, and drives it
// with pipelined keep-alive client threads.
//
//   serving_qps [--quick] [--json PATH] [--shards 4] [--threads 4]
//               [--pipeline 16] [--seconds 1.5]
//
// Records into the bench-regression gate (tools/bench_compare):
//   serving.query_seconds   mean wall seconds per answered query (1/QPS)
//   serving.p50_seconds     median per-request latency (burst RTT bound)
//   serving.p99_seconds     tail latency
//   serving.p999_seconds    far tail
//
// Hard gate (the PR acceptance bar, loopback + warm bundle): sustained QPS
// >= 10k on 4 shards with p99 < 10 ms. The process exits 1 when either is
// missed, so CI fails even before bench_compare sees the numbers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "apps/query_engine.h"
#include "bench_util.h"
#include "common/check.h"
#include "dlinfma/dlinfma_method.h"
#include "io/bundle.h"

namespace {

using dlinf::apps::HttpClient;
using dlinf::apps::QueryEngine;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ClientResult {
  int64_t requests = 0;
  int64_t errors = 0;
  std::vector<double> latency_s;
};

void RunClient(int port, int64_t address_count, int pipeline, int phase,
               double seconds, ClientResult* result) {
  HttpClient client;
  if (!client.Connect(port)) {
    result->errors = 1;
    return;
  }
  int64_t cursor = (phase * 7919) % address_count;
  const double deadline = NowSeconds() + seconds;
  while (NowSeconds() < deadline) {
    std::string burst;
    for (int i = 0; i < pipeline; ++i) {
      burst += "GET /query?address_id=" + std::to_string(cursor) +
               " HTTP/1.1\r\nHost: h\r\n\r\n";
      cursor = (cursor + 13) % address_count;
    }
    const double start = NowSeconds();
    if (!client.SendRaw(burst)) {
      ++result->errors;
      return;
    }
    for (int i = 0; i < pipeline; ++i) {
      int status = 0;
      std::string body;
      if (!client.ReadResponse(&status, &body)) {
        ++result->errors;
        return;
      }
      if (status != 200) ++result->errors;
    }
    const double elapsed = NowSeconds() - start;
    result->requests += pipeline;
    // The burst RTT bounds every request in it; recording it per request
    // keeps the percentile conservative.
    for (int i = 0; i < pipeline; ++i) result->latency_s.push_back(elapsed);
  }
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[rank];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = dlinf::bench::ParseJsonFlag(&argc, argv);
  const bool quick = dlinf::bench::ParseQuickFlag(&argc, argv);
  const std::string metrics_path = dlinf::bench::ParseMetricsFlag(&argc, argv);

  int shards = 4;
  int threads = 4;
  int pipeline = 16;
  double seconds = quick ? 0.8 : 1.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--shards" && has_value) {
      shards = std::atoi(argv[++i]);
    } else if (arg == "--threads" && has_value) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--pipeline" && has_value) {
      pipeline = std::atoi(argv[++i]);
    } else if (arg == "--seconds" && has_value) {
      seconds = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  // Fixed-seed warm bundle (same scale the engine tests use).
  dlinf::sim::SimConfig config = dlinf::sim::SynDowBJConfig();
  config.num_days = 3;
  config.num_communities = 5;
  dlinf::bench::BenchData bench_data = dlinf::bench::MakeBenchData(config);
  dlinf::dlinfma::TrainConfig train_config;
  train_config.max_epochs = 2;
  train_config.early_stop_patience = 2;
  dlinf::dlinfma::DlInfMaMethod method(
      "DLInfMA", dlinf::dlinfma::LocMatcherConfig{}, train_config);
  method.Fit(bench_data.data, bench_data.samples);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "serving_qps_bundle")
          .string();
  std::string error;
  CHECK(dlinf::io::SaveBundle(dir, *bench_data.world, bench_data.data,
                              bench_data.samples, method, &error))
      << error;

  QueryEngine::Options options;
  options.bundle_dir = dir;
  options.num_shards = shards;
  std::unique_ptr<QueryEngine> engine = QueryEngine::Create(options, &error);
  CHECK(engine != nullptr) << error;
  const int64_t address_count =
      static_cast<int64_t>(bench_data.world->addresses.size());

  // Warm-up burst (connection setup, first-touch of the KV maps), then the
  // measured run.
  {
    ClientResult warmup;
    RunClient(engine->port(), address_count, pipeline, 0, 0.2, &warmup);
    CHECK(warmup.errors == 0) << "warm-up produced errors";
  }

  std::vector<ClientResult> results(static_cast<size_t>(threads));
  const double start = NowSeconds();
  std::vector<std::thread> clients;
  for (int i = 0; i < threads; ++i) {
    clients.emplace_back(RunClient, engine->port(), address_count, pipeline,
                         i, seconds, &results[static_cast<size_t>(i)]);
  }
  for (std::thread& client : clients) client.join();
  const double wall = NowSeconds() - start;

  int64_t requests = 0;
  int64_t errors = 0;
  std::vector<double> latency;
  for (const ClientResult& result : results) {
    requests += result.requests;
    errors += result.errors;
    latency.insert(latency.end(), result.latency_s.begin(),
                   result.latency_s.end());
  }
  std::sort(latency.begin(), latency.end());

  const double qps = wall > 0.0 ? static_cast<double>(requests) / wall : 0.0;
  const double p50 = Percentile(latency, 0.50);
  const double p99 = Percentile(latency, 0.99);
  const double p999 = Percentile(latency, 0.999);
  std::printf(
      "serving_qps: shards=%d threads=%d pipeline=%d requests=%lld "
      "qps=%.0f p50_ms=%.3f p99_ms=%.3f p999_ms=%.3f errors=%lld\n",
      shards, threads, pipeline, static_cast<long long>(requests), qps,
      p50 * 1e3, p99 * 1e3, p999 * 1e3, static_cast<long long>(errors));

  dlinf::bench::BenchResults bench_results;
  if (qps > 0.0) bench_results.Add("serving.query_seconds", 1.0 / qps);
  bench_results.Add("serving.p50_seconds", p50);
  bench_results.Add("serving.p99_seconds", p99);
  bench_results.Add("serving.p999_seconds", p999);
  if (!bench_results.WriteJson(json_path)) return 2;
  dlinf::bench::DumpMetrics(metrics_path);

  engine->Stop();
  std::filesystem::remove_all(dir);

  if (errors > 0) {
    std::fprintf(stderr, "FAIL: %lld transport/status errors\n",
                 static_cast<long long>(errors));
    return 1;
  }
  // The acceptance gate: >=10k QPS at p99 < 10 ms on the 4-shard default.
  if (shards == 4 && (qps < 10000.0 || p99 >= 0.010)) {
    std::fprintf(stderr,
                 "FAIL: acceptance gate missed (qps=%.0f need >=10000, "
                 "p99=%.3fms need <10ms)\n",
                 qps, p99 * 1e3);
    return 1;
  }
  std::printf("OK: sustained %.0f QPS at p99 %.3f ms\n", qps, p99 * 1e3);
  return 0;
}
