// Table I: statistics of the (synthetic) evaluation datasets.
//
// The paper's Table I reports, per dataset, the scale of trips, waybills,
// addresses and the train/eval/test spatial split. This binary regenerates
// the same rows for SynDowBJ / SynSubBJ.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"

int main(int argc, char** argv) {
  using namespace dlinf;
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);

  std::printf("== Table I: dataset statistics ==\n");
  std::printf("%-28s %12s %12s\n", "statistic", "SynDowBJ", "SynSubBJ");

  std::vector<bench::BenchData> bundles;
  for (const sim::SimConfig& config : bench::PaperConfigs()) {
    bundles.push_back(bench::MakeBenchData(config));
  }

  auto row = [&](const char* name, auto getter) {
    std::printf("%-28s %12lld %12lld\n", name,
                static_cast<long long>(getter(bundles[0])),
                static_cast<long long>(getter(bundles[1])));
  };
  row("communities", [](const bench::BenchData& b) {
    return b.world->communities.size();
  });
  row("buildings", [](const bench::BenchData& b) {
    return b.world->buildings.size();
  });
  row("addresses", [](const bench::BenchData& b) {
    return b.world->addresses.size();
  });
  row("delivered addresses", [](const bench::BenchData& b) {
    return b.world->DeliveredAddressIds().size();
  });
  row("couriers", [](const bench::BenchData& b) {
    return b.world->couriers.size();
  });
  row("delivery trips", [](const bench::BenchData& b) {
    return b.world->trips.size();
  });
  row("waybills", [](const bench::BenchData& b) {
    return b.world->TotalWaybills();
  });
  row("GPS points", [](const bench::BenchData& b) {
    return b.world->TotalTrajectoryPoints();
  });
  row("stay points", [](const bench::BenchData& b) {
    return b.data.gen->stay_points().size();
  });
  row("location candidates", [](const bench::BenchData& b) {
    return b.data.gen->candidates().size();
  });
  row("train addresses", [](const bench::BenchData& b) {
    return b.samples.train.size();
  });
  row("eval addresses", [](const bench::BenchData& b) {
    return b.samples.val.size();
  });
  row("test addresses", [](const bench::BenchData& b) {
    return b.samples.test.size();
  });
  bench::DumpMetrics(metrics_path);
  return 0;
}
