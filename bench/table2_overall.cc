// Table II: overall effectiveness on both datasets.
//
// Reproduces every row of the paper's Table II: the eight baselines, the
// classification / pairwise-ranking variants, the encoder and clustering
// variants (DLInfMA-PN, DLInfMA-Grid), the feature ablations
// (nTC / nD / nP / nLC / nA / LC_addr), and DLInfMA itself — each evaluated
// with MAE, P95 and beta50 on the spatially held-out test split.
//
// Pass --quick to cut training budgets (for smoke runs).

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "apps/location_service.h"
#include "baselines/evaluation.h"
#include "baselines/georank.h"
#include "baselines/simple_baselines.h"
#include "baselines/unet_baseline.h"
#include "baselines/variants.h"
#include "bench_util.h"
#include "common/logging.h"
#include "dlinfma/dlinfma_method.h"

namespace {

using namespace dlinf;

bool g_quick = false;

dlinfma::TrainConfig LocMatcherTrainConfig() {
  dlinfma::TrainConfig config;
  if (g_quick) {
    config.max_epochs = 20;
    config.early_stop_patience = 5;
  }
  return config;
}

/// Runs a LocMatcher-based method on a specific sample set (used for the
/// feature ablations, which re-extract features).
baselines::MethodResult RunLocMatcher(const std::string& name,
                                      const dlinfma::Dataset& data,
                                      const dlinfma::SampleSet& samples,
                                      dlinfma::LocMatcherConfig model_config =
                                          dlinfma::LocMatcherConfig()) {
  dlinfma::DlInfMaMethod method(name, model_config, LocMatcherTrainConfig());
  return baselines::RunMethod(&method, data, samples);
}

void RunDataset(const sim::SimConfig& config) {
  bench::BenchData base = bench::MakeBenchData(config);
  std::vector<baselines::MethodResult> results;

  // --- Baselines (Table II upper block). --------------------------------
  {
    baselines::GeocodingBaseline m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::AnnotationBaseline m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::GeoCloudBaseline m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::GeoRankBaseline m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::UnetBaseline::Options options;
    if (g_quick) options.max_epochs = 5;
    baselines::UnetBaseline m(options);
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::MinDistBaseline m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::MaxTcBaseline m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::MaxTcIlcBaseline m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }

  // --- Classification / ranking variants. --------------------------------
  {
    baselines::ClassificationVariant::Options options;
    if (g_quick) {
      options.gbdt_stages = 30;
      options.rf_trees = 50;
      options.mlp_epochs = 10;
    }
    baselines::ClassificationVariant gbdt(
        baselines::ClassificationVariant::Model::kGbdt, "DLInfMA-GBDT",
        options);
    results.push_back(baselines::RunMethod(&gbdt, base.data, base.samples));
    baselines::ClassificationVariant rf(
        baselines::ClassificationVariant::Model::kRandomForest, "DLInfMA-RF",
        options);
    results.push_back(baselines::RunMethod(&rf, base.data, base.samples));
    baselines::ClassificationVariant mlp(
        baselines::ClassificationVariant::Model::kMlp, "DLInfMA-MLP",
        options);
    results.push_back(baselines::RunMethod(&mlp, base.data, base.samples));
  }
  {
    baselines::RankDtVariant m;
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }
  {
    baselines::RankNetVariant::Options options;
    if (g_quick) options.epochs = 10;
    baselines::RankNetVariant m(options);
    results.push_back(baselines::RunMethod(&m, base.data, base.samples));
  }

  // --- Encoder variant: DLInfMA-PN (LSTM instead of transformer). ---------
  {
    dlinfma::LocMatcherConfig pn;
    pn.encoder = dlinfma::LocMatcherConfig::EncoderKind::kLstm;
    results.push_back(RunLocMatcher("DLInfMA-PN", base.data, base.samples, pn));
  }

  // --- Clustering variant: DLInfMA-Grid (grid-merge candidate pool). ------
  {
    dlinfma::CandidateGeneration::Options grid_options;
    grid_options.use_grid_merge = true;
    bench::BenchData grid = bench::MakeBenchData(config, grid_options);
    baselines::MethodResult r =
        RunLocMatcher("DLInfMA-Grid", grid.data, grid.samples);
    results.push_back(r);
    std::printf("(grid pool: %zu candidates vs hierarchical: %zu)\n",
                grid.data.gen->candidates().size(),
                base.data.gen->candidates().size());
  }

  // --- Feature ablations. --------------------------------------------------
  auto run_ablation = [&](const std::string& name,
                          dlinfma::FeatureConfig feature_config) {
    const dlinfma::SampleSet samples =
        dlinfma::ExtractSamples(base.data, feature_config);
    results.push_back(RunLocMatcher(name, base.data, samples));
  };
  {
    dlinfma::FeatureConfig fc;
    fc.use_trip_coverage = false;
    run_ablation("DLInfMA-nTC", fc);
  }
  {
    dlinfma::FeatureConfig fc;
    fc.use_distance = false;
    run_ablation("DLInfMA-nD", fc);
  }
  {
    dlinfma::FeatureConfig fc;
    fc.use_profile = false;
    run_ablation("DLInfMA-nP", fc);
  }
  {
    dlinfma::FeatureConfig fc;
    fc.use_location_commonality = false;
    run_ablation("DLInfMA-nLC", fc);
  }
  {
    dlinfma::FeatureConfig fc;
    fc.lc_address_based = true;
    run_ablation("DLInfMA-LCaddr", fc);
  }
  {
    dlinfma::LocMatcherConfig na;
    na.use_address_context = false;
    results.push_back(RunLocMatcher("DLInfMA-nA", base.data, base.samples, na));
  }

  // --- DLInfMA itself. ------------------------------------------------------
  {
    dlinfma::DlInfMaMethod method("DLInfMA", dlinfma::LocMatcherConfig(),
                                  LocMatcherTrainConfig());
    results.push_back(baselines::RunMethod(&method, base.data, base.samples));

    // Deployment check (Section VI-A): publish the test-split inferences
    // into the 3-tier service and serve every address through it, so bench
    // metrics cover the serving path (address / building / geocode hits).
    const std::vector<Point> locations =
        method.InferAll(base.data, base.samples.test);
    std::unordered_map<int64_t, Point> inferred;
    for (size_t i = 0; i < base.samples.test.size(); ++i) {
      inferred[base.samples.test[i].address_id] = locations[i];
    }
    const apps::DeliveryLocationService service =
        apps::DeliveryLocationService::Build(*base.world, inferred);
    int hits[3] = {0, 0, 0};
    for (const sim::Address& addr : base.world->addresses) {
      ++hits[static_cast<int>(service.Query(addr.id).source)];
    }
    // The real-time case: a brand-new address known only by building.
    for (const sim::Building& building : base.world->buildings) {
      ++hits[static_cast<int>(
          service.QueryByBuilding(building.id, building.position).source)];
    }
    std::printf(
        "(service tiers over %zu addresses + %zu new-address building "
        "queries: address=%d building=%d geocode=%d)\n",
        base.world->addresses.size(), base.world->buildings.size(), hits[0],
        hits[1], hits[2]);
  }

  baselines::PrintResultsTable("Table II (" + base.world->name + ")", results);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) g_quick = true;
  }
  for (const sim::SimConfig& config : bench::PaperConfigs()) {
    RunDataset(config);
  }
  bench::DumpMetrics(metrics_path);
  return 0;
}
