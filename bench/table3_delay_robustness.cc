// Table III: robustness against confirmation delays.
//
// Re-injects the paper's batch-confirmation delay model over the same trips
// with p_d in {0.2, 0.6, 1.0} (slight / moderate / significant delays) and
// evaluates every method family on both datasets. Expected shapes (paper):
// Geocoding is delay-invariant; annotation-based methods (Annotation,
// GeoCloud, GeoRank, UNet-based) degrade sharply and eventually fall below
// Geocoding; trajectory-based methods (MinDist, MaxTC, MaxTC-ILC, DLInfMA)
// are far less sensitive, with DLInfMA best throughout.
//
// Pass --quick for reduced training budgets.

#include <cstdio>
#include <cstring>
#include <memory>

#include "baselines/evaluation.h"
#include "baselines/georank.h"
#include "baselines/simple_baselines.h"
#include "baselines/unet_baseline.h"
#include "bench_util.h"
#include "common/logging.h"
#include "dlinfma/dlinfma_method.h"

namespace {

using namespace dlinf;

bool g_quick = false;

void RunDataset(const sim::SimConfig& base_config) {
  for (double p_delay : {0.2, 0.6, 1.0}) {
    sim::SimConfig config = base_config;
    config.p_delay = p_delay;
    // Same seed: identical city and trips, only the confirmation behaviour
    // changes — exactly the paper's controlled injection.
    bench::BenchData bundle = bench::MakeBenchData(config);

    std::vector<baselines::MethodResult> results;
    {
      baselines::GeocodingBaseline m;
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      baselines::AnnotationBaseline m;
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      baselines::GeoCloudBaseline m;
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      baselines::GeoRankBaseline m;
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      baselines::UnetBaseline::Options options;
      if (g_quick) options.max_epochs = 5;
      baselines::UnetBaseline m(options);
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      baselines::MinDistBaseline m;
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      baselines::MaxTcBaseline m;
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      baselines::MaxTcIlcBaseline m;
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    {
      dlinfma::TrainConfig train_config;
      if (g_quick) {
        train_config.max_epochs = 20;
        train_config.early_stop_patience = 5;
      }
      dlinfma::DlInfMaMethod m("DLInfMA", {}, train_config);
      results.push_back(baselines::RunMethod(&m, bundle.data, bundle.samples));
    }
    baselines::PrintResultsTable(
        "Table III (" + bundle.world->name + ", p_d=" +
            std::to_string(p_delay).substr(0, 3) + ")",
        results);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  SetMinLogLevel(LogLevel::kWarning);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) g_quick = true;
  }
  for (const sim::SimConfig& config : bench::PaperConfigs()) {
    RunDataset(config);
  }
  bench::DumpMetrics(metrics_path);
  return 0;
}
