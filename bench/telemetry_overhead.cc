// Disarmed-telemetry overhead microbench (DESIGN.md §10) — the cost
// contract behind leaving tracing compiled into release binaries:
//
//   telemetry.disarmed.check     N TracingArmed() checks (one relaxed load)
//   telemetry.disarmed.span      N TraceSpan construct/destruct cycles
//   telemetry.disarmed.instant   N TraceInstant() calls
//   telemetry.disarmed.logline   N LogLine emit attempts with a closed sink
//   fault.disarmed.hit           N disarmed fault::Hit() probes — the
//                                existing budget these must stay within
//
// All five run the same iteration count, so the regression gate
// (tools/bench_compare.cc, on time/_calibration ratios) holds the tracing
// hooks to the disarmed-fault-point budget: if a change makes a disarmed
// span meaningfully heavier than a disarmed fault probe, the bench job
// fails before it ships.
//
// Flags: --json PATH (append results), --quick (accepted for CLI symmetry
// with the other benches; the workload is already CI-sized).

#include <cstdint>
#include <cstdio>

#include "bench_util.h"
#include "fault/fault.h"
#include "obs/structured_log.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace bench {
namespace {

constexpr int64_t kIterations = 100'000'000;
constexpr int kRepetitions = 3;

/// Opaque sink the optimizer cannot see through; keeps the measured loops
/// from folding into nothing.
volatile uint64_t g_sink = 0;

template <typename Fn>
double BestOfReps(Fn&& body) {
  double best = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Stopwatch watch;
    body();
    const double seconds = watch.ElapsedSeconds();
    if (seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int Main(int argc, char** argv) {
  const std::string metrics_path = ParseMetricsFlag(&argc, argv);
  const std::string json_path = ParseJsonFlag(&argc, argv);
  ParseQuickFlag(&argc, argv);
  BenchResults results;

  // The whole point is the *disarmed* cost: nothing may be armed here.
  obs::TraceLog::Global().Stop();
  obs::StructuredLog::Global().Close();
  fault::Disarm();

  const double check_seconds = BestOfReps([] {
    uint64_t acc = 0;
    for (int64_t i = 0; i < kIterations; ++i) {
      acc += obs::TracingArmed() ? 1 : 0;
    }
    g_sink = acc;
  });
  results.Add("telemetry.disarmed.check", check_seconds);

  const double span_seconds = BestOfReps([] {
    for (int64_t i = 0; i < kIterations; ++i) {
      obs::TraceSpan span("bench.span");
      g_sink = static_cast<uint64_t>(i);
    }
  });
  results.Add("telemetry.disarmed.span", span_seconds);

  const double instant_seconds = BestOfReps([] {
    for (int64_t i = 0; i < kIterations; ++i) {
      obs::TraceInstant("bench.instant");
      g_sink = static_cast<uint64_t>(i);
    }
  });
  results.Add("telemetry.disarmed.instant", instant_seconds);

  const double logline_seconds = BestOfReps([] {
    for (int64_t i = 0; i < kIterations; ++i) {
      obs::LogLine(obs::LogSeverity::kInfo, "bench.logline");
      g_sink = static_cast<uint64_t>(i);
    }
  });
  results.Add("telemetry.disarmed.logline", logline_seconds);

  const double fault_seconds = BestOfReps([] {
    uint64_t acc = 0;
    for (int64_t i = 0; i < kIterations; ++i) {
      acc += fault::Hit("bench.disarmed.point").has_value() ? 1 : 0;
    }
    g_sink = acc;
  });
  results.Add("fault.disarmed.hit", fault_seconds);

  std::printf("disarmed per-op (ns, best of %d x %lld iters):\n", kRepetitions,
              static_cast<long long>(kIterations));
  std::printf("  tracing check   %.3f\n", check_seconds / kIterations * 1e9);
  std::printf("  trace span      %.3f\n", span_seconds / kIterations * 1e9);
  std::printf("  trace instant   %.3f\n", instant_seconds / kIterations * 1e9);
  std::printf("  log line        %.3f\n", logline_seconds / kIterations * 1e9);
  std::printf("  fault hit       %.3f  (budget reference)\n",
              fault_seconds / kIterations * 1e9);

  results.WriteJson(json_path);
  DumpMetrics(metrics_path);
  return 0;
}

}  // namespace bench
}  // namespace dlinf

int main(int argc, char** argv) { return dlinf::bench::Main(argc, argv); }
