// Extension application: arrival-time estimation on inferred delivery
// locations (motivated by the paper's introduction: delivery locations feed
// arrival time estimation [3]).
//
// For every historical trip, the courier's actual stop order is replayed and
// ETAs are computed from three sets of believed stop locations — Geocoded,
// DLInfMA-inferred, and the true locations (oracle) — with a leg-time model
// calibrated on historical trips. The error against the actual arrival
// times shrinks as the believed locations improve.

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "apps/arrival_time.h"
#include "common/logging.h"
#include "common/stats.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "sim/generator.h"

int main() {
  using namespace dlinf;
  SetMinLogLevel(LogLevel::kWarning);

  const sim::World world = sim::GenerateWorld(sim::SynDowBJConfig());
  const dlinfma::Dataset data = dlinfma::BuildDataset(world, {});
  const dlinfma::SampleSet samples =
      dlinfma::ExtractSamples(data, dlinfma::FeatureConfig{});

  // Train DLInfMA and index inferred locations by address.
  dlinfma::DlInfMaMethod method;
  method.Fit(data, samples);
  std::unordered_map<int64_t, Point> inferred;
  {
    const std::vector<Point> out = method.InferAll(data, samples.test);
    for (size_t i = 0; i < samples.test.size(); ++i) {
      inferred[samples.test[i].address_id] = out[i];
    }
  }

  // Calibrate the leg-time model from historical trips (distance vs elapsed
  // between consecutive delivery stops).
  std::vector<double> leg_distances, leg_elapsed;
  for (const sim::DeliveryTrip& trip : world.trips) {
    const sim::PlannedStay* prev = nullptr;
    for (const sim::PlannedStay& stay : trip.planned_stays) {
      if (stay.delivered_address_ids.empty()) continue;
      if (prev != nullptr) {
        leg_distances.push_back(Distance(prev->location, stay.location));
        leg_elapsed.push_back(stay.start_time - prev->start_time);
      }
      prev = &stay;
    }
  }
  const apps::EtaOptions eta = apps::CalibrateEta(leg_distances, leg_elapsed);
  std::printf("calibrated leg model: speed %.1f m/s, service %.0f s "
              "(from %zu legs)\n",
              eta.speed_mps, eta.service_time_s, leg_distances.size());

  // One-step-ahead leg ETAs: from each delivery stop's *actual* departure,
  // predict the arrival at the next delivery stop using believed locations
  // for both endpoints. The leg model's average error is common to all
  // sources; the difference between rows is purely location quality.
  std::vector<double> err_geocode, err_inferred, err_oracle;
  for (const sim::DeliveryTrip& trip : world.trips) {
    const sim::PlannedStay* prev = nullptr;
    for (const sim::PlannedStay& stay : trip.planned_stays) {
      if (stay.delivered_address_ids.empty()) continue;
      if (prev != nullptr) {
        const int64_t from_id = prev->delivered_address_ids.front();
        const int64_t to_id = stay.delivered_address_ids.front();
        auto from_it = inferred.find(from_id);
        auto to_it = inferred.find(to_id);
        if (from_it != inferred.end() && to_it != inferred.end()) {
          auto leg_eta = [&](const Point& a, const Point& b) {
            return prev->start_time + Distance(a, b) / eta.speed_mps +
                   eta.service_time_s;
          };
          const double actual = stay.start_time;
          err_geocode.push_back(std::fabs(
              leg_eta(world.address(from_id).geocoded_location,
                      world.address(to_id).geocoded_location) -
              actual));
          err_inferred.push_back(
              std::fabs(leg_eta(from_it->second, to_it->second) - actual));
          err_oracle.push_back(
              std::fabs(leg_eta(prev->location, stay.location) - actual));
        }
      }
      prev = &stay;
    }
  }

  std::printf("\n== ETA error vs actual arrival times (test addresses) ==\n");
  std::printf("%-26s %10s %10s\n", "locations", "MAE(s)", "P90(s)");
  std::printf("%-26s %10.0f %10.0f\n", "Geocoded", Mean(err_geocode),
              Percentile(err_geocode, 0.9));
  std::printf("%-26s %10.0f %10.0f\n", "DLInfMA inferred", Mean(err_inferred),
              Percentile(err_inferred, 0.9));
  std::printf("%-26s %10.0f %10.0f\n", "true (oracle)", Mean(err_oracle),
              Percentile(err_oracle, 0.9));
  return 0;
}
