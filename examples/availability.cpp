// Application 2 (Section VI-C): customer availability inference.
//
// Availability labels derived from *recorded* delivery times are distorted
// by batch confirmations. After inferring each address's delivery location,
// the actual delivery times can be recovered from the stay points near that
// location, and the availability profile (day-of-week x hour-of-day) gets
// much closer to the truth.

#include <cstdio>

#include "apps/availability.h"
#include "common/logging.h"
#include "common/stats.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "sim/generator.h"

int main() {
  using namespace dlinf;
  SetMinLogLevel(LogLevel::kWarning);

  sim::SimConfig config = sim::SynDowBJConfig();
  config.p_delay = 0.8;  // Heavy batch-confirmation delays.
  const sim::World world = sim::GenerateWorld(config);
  const dlinfma::Dataset data = dlinfma::BuildDataset(world, {});
  const dlinfma::SampleSet samples =
      dlinfma::ExtractSamples(data, dlinfma::FeatureConfig{});

  dlinfma::DlInfMaMethod method;
  method.Fit(data, samples);
  const std::vector<Point> inferred = method.InferAll(data, samples.test);

  // Ground-truth / recorded / corrected delivery-time pools over all test
  // addresses.
  std::vector<double> truth_times, recorded_times, corrected_times;
  for (size_t i = 0; i < samples.test.size(); ++i) {
    const int64_t address_id = samples.test[i].address_id;
    for (const sim::DeliveryTrip& trip : world.trips) {
      for (const sim::Waybill& w : trip.waybills) {
        if (w.address_id == address_id) {
          truth_times.push_back(w.actual_delivery_time);
          recorded_times.push_back(w.recorded_delivery_time);
        }
      }
    }
    const std::vector<double> corrected =
        apps::EstimateActualDeliveryTimes(*data.gen, address_id, inferred[i]);
    corrected_times.insert(corrected_times.end(), corrected.begin(),
                           corrected.end());
  }

  const apps::AvailabilityProfile truth =
      apps::BuildAvailabilityProfile(truth_times);
  const apps::AvailabilityProfile recorded =
      apps::BuildAvailabilityProfile(recorded_times);
  const apps::AvailabilityProfile corrected =
      apps::BuildAvailabilityProfile(corrected_times);

  std::printf("== Customer availability inference (p_delay = 0.8) ==\n");
  std::printf("profile L1 distance to ground truth:\n");
  std::printf("  from recorded (delayed) times:   %.3f\n",
              apps::ProfileDistance(recorded, truth));
  std::printf("  from corrected (stay-point) times: %.3f\n",
              apps::ProfileDistance(corrected, truth));

  // Per-address example windows (Figure 15(b) style).
  const int64_t example = samples.test[0].address_id;
  const apps::AvailabilityProfile profile = apps::BuildAvailabilityProfile(
      apps::EstimateActualDeliveryTimes(*data.gen, example, inferred[0]));
  std::printf("\navailability windows for \"%s\" (threshold 5%%):\n",
              world.address(example).text.c_str());
  for (int dow = 0; dow < 7; ++dow) {
    const auto windows = profile.WindowsAbove(0.05, dow);
    if (windows.empty()) continue;
    std::printf("  day %d:", dow);
    for (const auto& [start, end] : windows) {
      std::printf(" %02d:00-%02d:00", start, end);
    }
    std::printf("\n");
  }
  return 0;
}
