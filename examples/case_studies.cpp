// Case studies (Figure 12 of the paper): three ways Geocoding fails and how
// trajectory-based inference recovers.
//   (a) Wrong address parsing: the geocode lands in a different community,
//       hundreds of meters away.
//   (b) Coarse POI database: several buildings' addresses share a single
//       geocoded point (the community center).
//   (c) Diverse customer preferences: two addresses in the same building
//       with different actual delivery locations.

#include <cstdio>
#include <map>
#include <set>

#include "common/logging.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "sim/generator.h"

namespace {

using namespace dlinf;

void PrintCase(const sim::World& world, const dlinfma::AddressSample& sample,
               const Point& inferred) {
  const sim::Address& addr = world.address(sample.address_id);
  const double geocode_err =
      Distance(addr.geocoded_location, addr.true_delivery_location);
  const double dlinfma_err =
      Distance(inferred, addr.true_delivery_location);
  std::printf(
      "  \"%s\"\n    geocode error %.0fm -> DLInfMA error %.0fm "
      "(%zu candidates)\n",
      addr.text.c_str(), geocode_err, dlinfma_err,
      sample.candidate_ids.size());
}

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kWarning);
  const sim::World world = sim::GenerateWorld(sim::SynDowBJConfig());
  const dlinfma::Dataset data = dlinfma::BuildDataset(world, {});
  const dlinfma::SampleSet samples =
      dlinfma::ExtractSamples(data, dlinfma::FeatureConfig{});

  dlinfma::DlInfMaMethod method;
  method.Fit(data, samples);
  const std::vector<Point> predictions =
      method.InferAll(data, samples.test);

  // --- Case (a): wrong parsing — geocode in another community. ------------
  std::printf("== Case (a): wrong address parsing ==\n");
  int shown = 0;
  for (size_t i = 0; i < samples.test.size() && shown < 3; ++i) {
    const sim::Address& addr = world.address(samples.test[i].address_id);
    const double geocode_err =
        Distance(addr.geocoded_location, addr.true_delivery_location);
    if (geocode_err > 250.0) {  // Cross-community error.
      PrintCase(world, samples.test[i], predictions[i]);
      ++shown;
    }
  }

  // --- Case (b): coarse POI — many addresses, one geocode. ----------------
  std::printf("\n== Case (b): coarse POI database ==\n");
  std::map<std::pair<double, double>, std::vector<size_t>> by_geocode;
  for (size_t i = 0; i < samples.test.size(); ++i) {
    const sim::Address& addr = world.address(samples.test[i].address_id);
    by_geocode[{addr.geocoded_location.x, addr.geocoded_location.y}]
        .push_back(i);
  }
  for (const auto& [geocode, indexes] : by_geocode) {
    // A geocode shared by addresses of several buildings.
    std::set<int64_t> buildings;
    for (size_t i : indexes) {
      buildings.insert(
          world.address(samples.test[i].address_id).building_id);
    }
    if (buildings.size() >= 3) {
      std::printf("  one geocoded point (%.0f, %.0f) covers %zu addresses in "
                  "%zu buildings; DLInfMA separates them:\n",
                  geocode.first, geocode.second, indexes.size(),
                  buildings.size());
      int printed = 0;
      for (size_t i : indexes) {
        if (printed++ >= 3) break;
        PrintCase(world, samples.test[i], predictions[i]);
      }
      break;
    }
  }

  // --- Case (c): same building, different preferences. --------------------
  std::printf("\n== Case (c): diverse customer preferences ==\n");
  std::map<int64_t, std::vector<size_t>> by_building;
  for (size_t i = 0; i < samples.test.size(); ++i) {
    by_building[world.address(samples.test[i].address_id).building_id]
        .push_back(i);
  }
  bool found = false;
  for (const auto& [building, indexes] : by_building) {
    for (size_t a = 0; a < indexes.size() && !found; ++a) {
      for (size_t b = a + 1; b < indexes.size() && !found; ++b) {
        const sim::Address& addr_a =
            world.address(samples.test[indexes[a]].address_id);
        const sim::Address& addr_b =
            world.address(samples.test[indexes[b]].address_id);
        const double separation = Distance(addr_a.true_delivery_location,
                                           addr_b.true_delivery_location);
        if (separation > 50.0) {
          std::printf("  same building %lld, delivery locations %.0fm "
                      "apart (modes %d vs %d):\n",
                      static_cast<long long>(building), separation,
                      static_cast<int>(addr_a.mode),
                      static_cast<int>(addr_b.mode));
          PrintCase(world, samples.test[indexes[a]], predictions[indexes[a]]);
          PrintCase(world, samples.test[indexes[b]], predictions[indexes[b]]);
          found = true;
        }
      }
    }
    if (found) break;
  }
  return 0;
}
