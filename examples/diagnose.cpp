// Internal diagnostic: dissects pipeline quality on a small world.
// Not part of the paper's deliverables; useful when tuning the simulator.

#include <cstdio>
#include <map>
#include <cstdlib>
#include <string>

#include "common/stats.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "dlinfma/trainer.h"
#include "sim/generator.h"

int main(int argc, char** argv) {
  using namespace dlinf;
  sim::SimConfig config = sim::SynDowBJConfig();
  if (argc > 1 && std::string(argv[1]) == "sub") config = sim::SynSubBJConfig();
  if (const char* fine = std::getenv("GEOCODE_FINE")) {
    config.p_geocode_fine = std::atof(fine);
    config.p_geocode_coarse = 0.9 - config.p_geocode_fine;
  }
  if (const char* locker = std::getenv("P_LOCKER")) {
    config.p_locker = std::atof(locker);
  }
  sim::World world = sim::GenerateWorld(config);

  dlinfma::Dataset data =
      dlinfma::BuildDataset(world, dlinfma::CandidateGeneration::Options{});
  dlinfma::SampleSet samples =
      dlinfma::ExtractSamples(data, dlinfma::FeatureConfig{});

  // Oracle: distance from ground truth to the *nearest* candidate (the label).
  std::vector<double> oracle_err;
  std::vector<double> num_cands;
  std::map<sim::DeliveryMode, std::vector<double>> oracle_by_mode;
  for (const auto& s : samples.test) {
    const sim::Address& addr = world.address(s.address_id);
    const Point label_loc =
        data.gen->candidate(s.candidate_ids[s.label]).location;
    const double err = Distance(label_loc, addr.true_delivery_location);
    oracle_err.push_back(err);
    oracle_by_mode[addr.mode].push_back(err);
    num_cands.push_back(static_cast<double>(s.candidate_ids.size()));
  }
  std::printf("candidates/address: mean=%.1f p95=%.0f\n", Mean(num_cands),
              Percentile(num_cands, 0.95));
  std::printf("oracle err: mean=%.1fm p50=%.1f p95=%.1fm\n", Mean(oracle_err),
              Median(oracle_err), Percentile(oracle_err, 0.95));
  for (auto& [mode, v] : oracle_by_mode) {
    std::printf("  mode %d: n=%zu mean=%.1f p95=%.1f\n", static_cast<int>(mode),
                v.size(), Mean(v), Percentile(v, 0.95));
  }

  // Label candidate's features vs others.
  double label_tc = 0, other_tc = 0, label_lc = 0, other_lc = 0;
  int label_n = 0, other_n = 0;
  for (const auto& s : samples.test) {
    for (size_t i = 0; i < s.features.size(); ++i) {
      if (static_cast<int>(i) == s.label) {
        label_tc += s.features[i].trip_coverage;
        label_lc += s.features[i].location_commonality;
        ++label_n;
      } else {
        other_tc += s.features[i].trip_coverage;
        other_lc += s.features[i].location_commonality;
        ++other_n;
      }
    }
  }
  std::printf("label: TC=%.3f LC=%.3f | others: TC=%.3f LC=%.3f\n",
              label_tc / label_n, label_lc / label_n, other_tc / other_n,
              other_lc / other_n);

  // Train DLInfMA and measure pick accuracy + error by mode.
  dlinfma::TrainConfig tc;
  tc.max_epochs = 150;
  tc.verbose = true;
  if (argc > 2) tc.learning_rate = std::stof(argv[2]);
  if (argc > 3) tc.lr_halve_epochs = std::stoi(argv[3]);
  if (argc > 4) tc.early_stop_patience = std::stoi(argv[4]);
  dlinfma::LocMatcherConfig mc;
  if (const char* z = std::getenv("MODEL_DIM")) mc.model_dim = std::atoi(z);
  if (const char* l = std::getenv("LAYERS")) mc.num_layers = std::atoi(l);
  dlinfma::DlInfMaMethod method("DLInfMA", mc, tc);
  method.Fit(data, samples);
  std::printf("trained %d epochs val_loss=%.3f\n",
              method.train_result().epochs_run,
              method.train_result().best_val_loss);

  const std::vector<int> picks = method.model()->PredictIndices(samples.test);
  int correct = 0;
  std::map<sim::DeliveryMode, std::vector<double>> err_by_mode;
  std::vector<double> errs;
  for (size_t i = 0; i < samples.test.size(); ++i) {
    const auto& s = samples.test[i];
    if (picks[i] == s.label) ++correct;
    const sim::Address& addr = world.address(s.address_id);
    const double err =
        Distance(data.gen->candidate(s.candidate_ids[picks[i]]).location,
                 addr.true_delivery_location);
    errs.push_back(err);
    err_by_mode[addr.mode].push_back(err);
  }
  std::printf("pick accuracy: %.1f%% (%d/%zu)\n",
              100.0 * correct / samples.test.size(), correct,
              samples.test.size());

  // Feature comparison on wrong picks: what fooled the model?
  double p_tc = 0, p_lc = 0, p_d = 0, p_dur = 0, p_cour = 0;
  double t_tc = 0, t_lc = 0, t_d = 0, t_dur = 0, t_cour = 0;
  int wrong = 0;
  for (size_t i = 0; i < samples.test.size(); ++i) {
    const auto& s = samples.test[i];
    if (picks[i] == s.label) continue;
    ++wrong;
    const auto& pf = s.features[picks[i]];
    const auto& tf = s.features[s.label];
    p_tc += pf.trip_coverage; t_tc += tf.trip_coverage;
    p_lc += pf.location_commonality; t_lc += tf.location_commonality;
    p_d += pf.distance; t_d += tf.distance;
    p_dur += pf.avg_duration; t_dur += tf.avg_duration;
    p_cour += pf.num_couriers; t_cour += tf.num_couriers;
  }
  if (wrong > 0) {
    std::printf("wrong picks (%d): picked TC=%.2f LC=%.3f d=%.2f dur=%.2f cour=%.1f\n",
                wrong, p_tc / wrong, p_lc / wrong, p_d / wrong, p_dur / wrong, p_cour / wrong);
    std::printf("            labels: TC=%.2f LC=%.3f d=%.2f dur=%.2f cour=%.1f\n",
                t_tc / wrong, t_lc / wrong, t_d / wrong, t_dur / wrong, t_cour / wrong);
  }
  std::printf("model err: mean=%.1f p50=%.1f p95=%.1f\n", Mean(errs),
              Median(errs), Percentile(errs, 0.95));
  for (auto& [mode, v] : err_by_mode) {
    std::printf("  mode %d: n=%zu mean=%.1f p95=%.1f\n", static_cast<int>(mode),
                v.size(), Mean(v), Percentile(v, 0.95));
  }
  return 0;
}
