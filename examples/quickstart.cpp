// Quickstart: the full DLInfMA pipeline on a small synthetic dataset.
//
// Generates a synthetic courier world, mines delivery-location candidates
// from the trajectories, trains LocMatcher, and compares the result against
// the Geocoding and MaxTC-ILC baselines.

#include <cstdio>

#include "baselines/evaluation.h"
#include "baselines/simple_baselines.h"
#include "common/logging.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "sim/generator.h"

int main() {
  using namespace dlinf;

  // 1. A small synthetic city with 20 days of courier operations.
  sim::SimConfig config = sim::SynDowBJConfig();
  config.num_days = 20;
  sim::World world = sim::GenerateWorld(config);
  std::printf("world: %zu addresses, %zu trips, %lld waybills\n",
              world.addresses.size(), world.trips.size(),
              static_cast<long long>(world.TotalWaybills()));

  // 2. Candidate generation: stay points -> clustering -> retrieval.
  dlinfma::Dataset data =
      dlinfma::BuildDataset(world, dlinfma::CandidateGeneration::Options{});
  std::printf("pipeline: %zu stay points -> %zu location candidates\n",
              data.gen->stay_points().size(), data.gen->candidates().size());

  // 3. Feature extraction for the three spatially disjoint splits.
  dlinfma::SampleSet samples =
      dlinfma::ExtractSamples(data, dlinfma::FeatureConfig{});
  std::printf("samples: train=%zu val=%zu test=%zu\n", samples.train.size(),
              samples.val.size(), samples.test.size());

  // 4. Train DLInfMA (LocMatcher) and run two baselines.
  std::vector<baselines::MethodResult> results;

  baselines::GeocodingBaseline geocoding;
  results.push_back(baselines::RunMethod(&geocoding, data, samples));

  baselines::MaxTcIlcBaseline max_tc_ilc;
  results.push_back(baselines::RunMethod(&max_tc_ilc, data, samples));

  dlinfma::DlInfMaMethod dlinfma_method;
  results.push_back(baselines::RunMethod(&dlinfma_method, data, samples));
  std::printf("LocMatcher trained for %d epochs (%.1fs)\n",
              dlinfma_method.train_result().epochs_run,
              dlinfma_method.train_result().train_seconds);

  baselines::PrintResultsTable("Quickstart (" + world.name + ")", results);
  return 0;
}
