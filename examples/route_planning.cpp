// Application 1 (Section VI-B): route planning on inferred delivery
// locations.
//
// Plans a courier tour over a batch of addresses three ways — using the
// Geocoded locations, the DLInfMA-inferred locations, and the (oracle) true
// locations — and reports the *actual* walking distance of each planned
// order over the true stops. Better believed locations yield shorter real
// routes.

#include <cstdio>

#include "apps/route_planner.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "sim/generator.h"

int main() {
  using namespace dlinf;
  SetMinLogLevel(LogLevel::kWarning);

  const sim::World world = sim::GenerateWorld(sim::SynDowBJConfig());
  const dlinfma::Dataset data = dlinfma::BuildDataset(world, {});
  const dlinfma::SampleSet samples =
      dlinfma::ExtractSamples(data, dlinfma::FeatureConfig{});

  dlinfma::DlInfMaMethod method;
  method.Fit(data, samples);
  const std::vector<Point> inferred = method.InferAll(data, samples.test);

  // Simulate 30 delivery batches of 18 test addresses each.
  Rng rng(99);
  std::vector<double> cost_geocode, cost_inferred, cost_oracle;
  for (int batch = 0; batch < 30; ++batch) {
    std::vector<int> picks;
    for (int k = 0; k < 18; ++k) {
      picks.push_back(static_cast<int>(
          rng.UniformInt(0, static_cast<int64_t>(samples.test.size()) - 1)));
    }
    std::vector<Point> geocoded, believed, truth;
    for (int i : picks) {
      const sim::Address& addr = world.address(samples.test[i].address_id);
      geocoded.push_back(addr.geocoded_location);
      believed.push_back(inferred[i]);
      truth.push_back(addr.true_delivery_location);
    }
    cost_geocode.push_back(
        apps::ActualRouteCost(world.station, geocoded, truth));
    cost_inferred.push_back(
        apps::ActualRouteCost(world.station, believed, truth));
    cost_oracle.push_back(apps::ActualRouteCost(world.station, truth, truth));
  }

  std::printf("== Route planning: actual tour length (mean over 30 batches of "
              "18 stops) ==\n");
  std::printf("%-26s %12s\n", "planning input", "tour (m)");
  std::printf("%-26s %12.0f\n", "Geocoded locations", Mean(cost_geocode));
  std::printf("%-26s %12.0f\n", "DLInfMA locations", Mean(cost_inferred));
  std::printf("%-26s %12.0f\n", "true locations (oracle)", Mean(cost_oracle));
  std::printf("\nDLInfMA closes %.0f%% of the gap between Geocoding and the "
              "oracle.\n",
              100.0 * (Mean(cost_geocode) - Mean(cost_inferred)) /
                  std::max(1.0, Mean(cost_geocode) - Mean(cost_oracle)));
  return 0;
}
