#include "apps/arrival_time.h"

#include <cmath>

#include "common/check.h"

namespace dlinf {
namespace apps {

std::vector<double> EstimateArrivalTimes(const Point& start,
                                         const std::vector<Point>& stops,
                                         const std::vector<int>& order,
                                         double start_time,
                                         const EtaOptions& options) {
  CHECK_EQ(order.size(), stops.size());
  CHECK_GT(options.speed_mps, 0.0);
  std::vector<double> arrivals;
  arrivals.reserve(order.size());
  double t = start_time;
  Point cur = start;
  for (int index : order) {
    t += Distance(cur, stops[index]) / options.speed_mps;
    arrivals.push_back(t);
    t += options.service_time_s;
    cur = stops[index];
  }
  return arrivals;
}

EtaOptions CalibrateEta(const std::vector<double>& leg_distances,
                        const std::vector<double>& leg_elapsed) {
  EtaOptions options;
  CHECK_EQ(leg_distances.size(), leg_elapsed.size());
  const size_t n = leg_distances.size();
  if (n < 2) return options;
  // Least squares for elapsed = d / v + s, i.e. elapsed = a*d + s with
  // a = 1/v: standard simple linear regression.
  double sum_d = 0, sum_t = 0, sum_dd = 0, sum_dt = 0;
  for (size_t i = 0; i < n; ++i) {
    sum_d += leg_distances[i];
    sum_t += leg_elapsed[i];
    sum_dd += leg_distances[i] * leg_distances[i];
    sum_dt += leg_distances[i] * leg_elapsed[i];
  }
  const double denom = n * sum_dd - sum_d * sum_d;
  if (std::fabs(denom) < 1e-9) return options;
  const double a = (n * sum_dt - sum_d * sum_t) / denom;
  const double s = (sum_t - a * sum_d) / n;
  if (a <= 1e-6) return options;  // Degenerate: keep defaults.
  options.speed_mps = 1.0 / a;
  options.service_time_s = std::max(0.0, s);
  return options;
}

}  // namespace apps
}  // namespace dlinf
