#ifndef DLINF_APPS_ARRIVAL_TIME_H_
#define DLINF_APPS_ARRIVAL_TIME_H_

#include <vector>

#include "geo/point.h"

namespace dlinf {
namespace apps {

/// Arrival-time estimation — the third downstream application the paper's
/// introduction motivates ([3]): given a courier's planned route over
/// believed delivery locations, predict when each stop is reached.
///
/// The estimator walks the route accumulating travel time (distance over an
/// average speed) plus a per-stop service time. Its accuracy is bounded by
/// the accuracy of the believed locations, which is how better
/// delivery-location inference translates into better ETAs.
struct EtaOptions {
  double speed_mps = 4.0;        ///< Average courier movement speed.
  double service_time_s = 100.0; ///< Mean handling time per stop.
};

/// Estimated arrival time (seconds from `start_time`) at every stop of the
/// route `order` over `stops`, starting from `start`.
std::vector<double> EstimateArrivalTimes(const Point& start,
                                         const std::vector<Point>& stops,
                                         const std::vector<int>& order,
                                         double start_time,
                                         const EtaOptions& options = {});

/// Calibrates EtaOptions from historical trips: fits the average speed and
/// service time that minimize squared error of the leg model on observed
/// (distance, elapsed) pairs. `leg_distances` / `leg_elapsed` are matched
/// samples of consecutive-stop distance and actual elapsed time (travel +
/// service). Falls back to the defaults for degenerate inputs.
EtaOptions CalibrateEta(const std::vector<double>& leg_distances,
                        const std::vector<double>& leg_elapsed);

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_ARRIVAL_TIME_H_
