#include "apps/availability.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dlinf {
namespace apps {

double AvailabilityProfile::ProbabilityAt(int day_of_week, int hour) const {
  CHECK(day_of_week >= 0 && day_of_week < 7);
  CHECK(hour >= 0 && hour < 24);
  return histogram[day_of_week][hour];
}

std::vector<std::pair<int, int>> AvailabilityProfile::WindowsAbove(
    double threshold, int day_of_week) const {
  CHECK(day_of_week >= 0 && day_of_week < 7);
  std::vector<std::pair<int, int>> windows;
  int start = -1;
  for (int hour = 0; hour <= 24; ++hour) {
    const bool above =
        hour < 24 && histogram[day_of_week][hour] >= threshold;
    if (above && start < 0) start = hour;
    if (!above && start >= 0) {
      windows.emplace_back(start, hour);
      start = -1;
    }
  }
  return windows;
}

std::vector<double> EstimateActualDeliveryTimes(
    const dlinfma::CandidateGeneration& gen, int64_t address_id,
    const Point& delivery_location) {
  // Nearest candidate to the inferred location.
  int64_t target = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (const dlinfma::LocationCandidate& c : gen.candidates()) {
    const double d = Distance(c.location, delivery_location);
    if (d < best_d) {
      best_d = d;
      target = c.id;
    }
  }
  std::vector<double> times;
  for (const dlinfma::AddressTripRecord& record :
       gen.address_trips(address_id)) {
    double latest = -1.0;
    for (const dlinfma::TripCandidateVisit& visit :
         gen.trip_visits()[record.trip_id]) {
      if (visit.candidate_id == target &&
          visit.time <= record.recorded_delivery_time) {
        latest = std::max(latest, visit.time);
      }
    }
    // Fall back to the recorded time when the location was never visited
    // before the confirmation (e.g., a wrong inferred location).
    times.push_back(latest >= 0 ? latest : record.recorded_delivery_time);
  }
  return times;
}

AvailabilityProfile BuildAvailabilityProfile(
    const std::vector<double>& times) {
  AvailabilityProfile profile;
  for (double t : times) {
    const int day = static_cast<int>(std::floor(t / 86400.0));
    const int dow = ((day % 7) + 7) % 7;
    const int hour =
        std::clamp(static_cast<int>(std::fmod(t, 86400.0) / 3600.0), 0, 23);
    profile.histogram[dow][hour] += 1.0;
    ++profile.num_observations;
  }
  if (profile.num_observations > 0) {
    for (auto& day : profile.histogram) {
      for (double& h : day) h /= profile.num_observations;
    }
  }
  return profile;
}

double ProfileDistance(const AvailabilityProfile& a,
                       const AvailabilityProfile& b) {
  double total = 0.0;
  for (int d = 0; d < 7; ++d) {
    for (int h = 0; h < 24; ++h) {
      total += std::fabs(a.histogram[d][h] - b.histogram[d][h]);
    }
  }
  return total;
}

}  // namespace apps
}  // namespace dlinf
