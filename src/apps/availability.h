#ifndef DLINF_APPS_AVAILABILITY_H_
#define DLINF_APPS_AVAILABILITY_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "dlinfma/candidate_generation.h"
#include "geo/point.h"

namespace dlinf {
namespace apps {

/// Customer availability inference (Section VI-C): a day-of-week x
/// hour-of-day distribution of when an address actually receives parcels.
struct AvailabilityProfile {
  /// histogram[dow][hour]: fraction of observed deliveries (sums to 1).
  std::array<std::array<double, 24>, 7> histogram{};
  int num_observations = 0;

  double ProbabilityAt(int day_of_week, int hour) const;

  /// Contiguous [start_hour, end_hour) windows on `day_of_week` where the
  /// delivery probability is at least `threshold` (Figure 15(b) style).
  std::vector<std::pair<int, int>> WindowsAbove(double threshold,
                                                int day_of_week) const;
};

/// Estimates the *actual* delivery times of an address from stay points near
/// its (inferred) delivery location: in each of the address's trips, the
/// last visit to the candidate nearest `delivery_location` at or before the
/// recorded confirmation time. This is the paper's correction of the
/// delayed, manually recorded times.
std::vector<double> EstimateActualDeliveryTimes(
    const dlinfma::CandidateGeneration& gen, int64_t address_id,
    const Point& delivery_location);

/// Builds a profile from delivery timestamps (seconds since the dataset
/// epoch; day 0 is taken as a Monday).
AvailabilityProfile BuildAvailabilityProfile(const std::vector<double>& times);

/// L1 distance between two profiles' distributions (diagnostic: how much the
/// delayed recorded times distort availability).
double ProfileDistance(const AvailabilityProfile& a,
                       const AvailabilityProfile& b);

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_AVAILABILITY_H_
