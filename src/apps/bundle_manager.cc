#include "apps/bundle_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace apps {
namespace {

obs::Counter* ReloadCounter(const char* which) {
  return obs::MetricsRegistry::Global().GetCounter(
      std::string("service.reload.") + which);
}

obs::Gauge* DegradedGauge() {
  return obs::MetricsRegistry::Global().GetGauge("service.reload.degraded");
}

void SetError(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
}

/// Axis-aligned bounding box of every fixed location in the world (building
/// positions and receptions, address geocodes, community gates/lockers),
/// padded by `margin`. A sane delivery-location answer must land inside it.
struct Bounds {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  void Cover(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
};

Bounds WorldBounds(const sim::World& world, double margin) {
  Bounds bounds;
  bounds.Cover(world.station);
  for (const sim::Community& c : world.communities) {
    bounds.Cover(c.gate);
    bounds.Cover(c.locker);
  }
  for (const sim::Building& b : world.buildings) {
    bounds.Cover(b.position);
    bounds.Cover(b.reception);
  }
  for (const sim::Address& a : world.addresses) {
    bounds.Cover(a.geocoded_location);
  }
  bounds.min_x -= margin;
  bounds.min_y -= margin;
  bounds.max_x += margin;
  bounds.max_y += margin;
  return bounds;
}

}  // namespace

std::shared_ptr<const BundleManager::ServingState> BundleManager::Stage(
    const std::string& dir, uint64_t generation, std::string* error) {
  obs::Span span("bundle_stage");
  // Injected torn/corrupt push: the load fails exactly as a CRC or decode
  // error would, without needing a real bad file on disk.
  if (fault::Hit("service.reload.corrupt")) {
    SetError(error, "injected bundle corruption in " + dir);
    return nullptr;
  }
  std::optional<io::WarmBundle> bundle = io::LoadBundle(dir, error);
  if (!bundle) return nullptr;

  auto state = std::make_shared<ServingState>();
  state->bundle = std::move(*bundle);
  state->samples = io::AllSamples(state->bundle.samples);
  state->service = std::make_unique<DeliveryLocationService>(
      DeliveryLocationService::BuildFromInferrer(
          *state->bundle.world, state->bundle.data, state->samples,
          state->bundle.method.get()));
  state->generation = generation;
  return state;
}

std::unique_ptr<BundleManager> BundleManager::Create(const Config& config,
                                                     std::string* error) {
  std::shared_ptr<const ServingState> boot =
      Stage(config.dir, /*generation=*/0, error);
  if (boot == nullptr) return nullptr;
  // The private constructor keeps make_unique out; new is fine here.
  std::unique_ptr<BundleManager> manager(new BundleManager(config));
  std::atomic_store_explicit(&manager->live_, std::move(boot),
                             std::memory_order_release);
  manager->RecordWatchStamp();
  return manager;
}

void BundleManager::RecordWatchStamp() {
  const std::filesystem::path manifest =
      std::filesystem::path(config_.dir) / "manifest.art";
  std::error_code ec;
  last_mtime_ = std::filesystem::last_write_time(manifest, ec);
  if (ec) last_mtime_ = std::filesystem::file_time_type{};
  last_size_ = std::filesystem::file_size(manifest, ec);
  if (ec) last_size_ = 0;
}

BundleManager::ReloadOutcome BundleManager::Poll(std::string* error) {
  const std::filesystem::path manifest =
      std::filesystem::path(config_.dir) / "manifest.art";
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(manifest, ec);
  if (ec) {
    // Mid-push (manifest is the last file written) or a broken deploy;
    // either way nothing loadable changed yet. Keep serving.
    return ReloadOutcome::kUnchanged;
  }
  const uintmax_t size = std::filesystem::file_size(manifest, ec);
  if (ec) return ReloadOutcome::kUnchanged;
  if (mtime == last_mtime_ && size == last_size_) {
    return ReloadOutcome::kUnchanged;
  }
  return ReloadNow(error);
}

BundleManager::ReloadOutcome BundleManager::ReloadNow(std::string* error) {
  // Each reload attempt is one trace: stage/validate spans and the
  // swap/rollback outcome correlate under a single trace id.
  obs::TraceScope trace;
  obs::Span span("bundle_reload");
  ReloadCounter("attempts")->Add(1);
  // Stamp first: a push that rolls back is not retried every Poll — only a
  // *new* push (fresh manifest stamp) triggers the next attempt.
  RecordWatchStamp();

  const std::shared_ptr<const ServingState> live =
      std::atomic_load_explicit(&live_, std::memory_order_acquire);
  auto rollback = [&](const std::string& reason) {
    ReloadCounter("rollbacks")->Add(1);
    degraded_.store(true, std::memory_order_release);
    DegradedGauge()->Set(1.0);
    obs::TraceInstant("reload.rollback");
    obs::LogLine(obs::LogSeverity::kError, "reload.rollback")
        .Str("reason", reason)
        .Int("serving_generation",
             static_cast<int64_t>(live->generation));
    SetError(error, reason + " (still serving generation " +
                        std::to_string(live->generation) + ")");
    return ReloadOutcome::kRolledBack;
  };

  std::string reason;
  std::shared_ptr<const ServingState> candidate =
      Stage(config_.dir, live->generation + 1, &reason);
  if (candidate == nullptr) {
    return rollback("bundle stage failed: " + reason);
  }
  if (!Validate(*live, *candidate, &reason)) {
    return rollback("bundle validation failed: " + reason);
  }

  // RCU-style publish: new queries load the candidate; in-flight queries
  // keep their shared_ptr to the old generation until they drain.
  const uint64_t new_generation = candidate->generation;
  std::atomic_store_explicit(&live_, std::move(candidate),
                             std::memory_order_release);
  ReloadCounter("success")->Add(1);
  degraded_.store(false, std::memory_order_release);
  DegradedGauge()->Set(0.0);
  obs::TraceInstant("reload.swap");
  obs::LogLine(obs::LogSeverity::kInfo, "reload.swap")
      .Int("generation", static_cast<int64_t>(new_generation));
  return ReloadOutcome::kSwapped;
}

bool BundleManager::Validate(const ServingState& live,
                             const ServingState& candidate,
                             std::string* error) const {
  obs::Span span("bundle_validate");
  const std::vector<int64_t> delivered =
      candidate.bundle.world->DeliveredAddressIds();
  if (delivered.empty()) {
    SetError(error, "candidate bundle serves no delivered addresses");
    return false;
  }

  // Probe ids must resolve in both worlds (ids are dense indexes): compare
  // only the overlap, sampled evenly across the candidate inventory.
  const auto live_count =
      static_cast<int64_t>(live.bundle.world->addresses.size());
  std::vector<int64_t> probes;
  probes.reserve(static_cast<size_t>(config_.probe_count));
  const size_t stride =
      std::max<size_t>(1, delivered.size() /
                              static_cast<size_t>(std::max(
                                  1, config_.probe_count)));
  for (size_t i = 0;
       i < delivered.size() &&
       probes.size() < static_cast<size_t>(std::max(1, config_.probe_count));
       i += stride) {
    if (delivered[i] < live_count) probes.push_back(delivered[i]);
  }
  if (probes.empty()) {
    SetError(error, "candidate bundle shares no addresses with the live one");
    return false;
  }

  const Bounds bounds =
      WorldBounds(*candidate.bundle.world, config_.bounds_margin_m);
  size_t agreeing = 0;
  for (const int64_t id : probes) {
    const DeliveryLocationService::Answer fresh =
        candidate.service->Query(id);
    if (!std::isfinite(fresh.location.x) || !std::isfinite(fresh.location.y)) {
      SetError(error, "probe address " + std::to_string(id) +
                          " answered a non-finite location");
      return false;
    }
    if (!bounds.Contains(fresh.location)) {
      SetError(error, "probe address " + std::to_string(id) +
                          " answered outside the world bounds");
      return false;
    }
    const DeliveryLocationService::Answer current = live.service->Query(id);
    if (Distance(fresh.location, current.location) <=
        config_.agree_tolerance_m) {
      ++agreeing;
    }
  }

  const double agree_fraction =
      static_cast<double>(agreeing) / static_cast<double>(probes.size());
  // Injected validation veto: a candidate that decodes fine but would
  // answer garbage (the "model push gone bad" drill).
  if (fault::Hit("service.reload.validation_fail")) {
    SetError(error, "injected validation failure");
    return false;
  }
  if (agree_fraction < config_.min_agree_fraction) {
    SetError(error,
             "only " + std::to_string(agreeing) + "/" +
                 std::to_string(probes.size()) +
                 " probes agree with the live bundle");
    return false;
  }
  return true;
}

}  // namespace apps
}  // namespace dlinf
