#ifndef DLINF_APPS_BUNDLE_MANAGER_H_
#define DLINF_APPS_BUNDLE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/location_service.h"
#include "io/bundle.h"

namespace dlinf {
namespace apps {

/// Zero-downtime bundle hot-reload with validated rollback (DESIGN.md §9).
///
/// The serving process periodically retrains offline and pushes a fresh
/// artifact bundle; BundleManager is the online side of that handshake. It
/// watches the bundle directory (manifest mtime/size poll), and on a change
/// runs the reload state machine:
///
///   watch ── change ──▶ stage (load into a private slot, full envelope +
///            detected      cross-artifact validation)
///                        │ decode / CRC / consistency error
///                        ├────────────────────────────────▶ rollback
///                        ▼
///                      validate (shadow probe set: finite answers, inside
///                        the world's bounding box, agreement with the live
///                        bundle above a threshold)
///                        │ probe contract violated
///                        ├────────────────────────────────▶ rollback
///                        ▼
///                      swap (RCU-style shared_ptr exchange; in-flight
///                        queries drain on the old bundle, new queries see
///                        the new one; nothing ever blocks)
///
/// A rollback keeps the live bundle serving, increments
/// `service.reload.rollbacks`, and raises the degraded-health flag (gauge
/// `service.reload.degraded`) until a later push swaps cleanly. Every
/// attempt/outcome feeds `service.reload.{attempts,success,rollbacks}`.
///
/// Fault points (DESIGN.md §8): `service.reload.corrupt` makes staging fail
/// exactly as a torn/corrupt push would; `service.reload.validation_fail`
/// vetoes an otherwise healthy candidate in the validate step. Both drive
/// the real rollback path deterministically.
///
/// Threading: `state()` is wait-free-ish (atomic shared_ptr load) and safe
/// from any number of query threads; Poll/ReloadNow must be called from one
/// control thread at a time (the serve loop). Old states stay alive until
/// the last in-flight query releases its shared_ptr.
class BundleManager {
 public:
  struct Config {
    std::string dir;  ///< Bundle directory (io/bundle.h layout).

    /// Shadow-validation probe set: up to this many delivered addresses,
    /// sampled evenly across the candidate bundle's inventory.
    int probe_count = 64;
    /// A probe "agrees" when the candidate's answer lies within this many
    /// meters of the live bundle's answer for the same address.
    double agree_tolerance_m = 25.0;
    /// Minimum fraction of probes that must agree for the swap to proceed.
    double min_agree_fraction = 0.9;
    /// Padding around the candidate world's bounding box when checking that
    /// probe answers are geographically sane.
    double bounds_margin_m = 500.0;
  };

  /// Everything one bundle generation serves from. Immutable after
  /// construction; published to query threads as shared_ptr<const>.
  struct ServingState {
    io::WarmBundle bundle;
    std::vector<dlinfma::AddressSample> samples;  ///< Serving inventory.
    std::unique_ptr<DeliveryLocationService> service;
    uint64_t generation = 0;  ///< 0 for the boot bundle, +1 per swap.
  };

  enum class ReloadOutcome { kUnchanged, kSwapped, kRolledBack };

  /// Boot: loads and validates the bundle at `config.dir` and stands up the
  /// service. There is no live bundle to fall back to yet, so a boot
  /// failure returns nullptr with the reason in `error`.
  static std::unique_ptr<BundleManager> Create(const Config& config,
                                               std::string* error = nullptr);

  /// The live serving state. Hold the returned shared_ptr for the duration
  /// of a query (or a batch); a concurrent swap cannot invalidate it.
  /// Uses the free-function shared_ptr atomics (not
  /// std::atomic<shared_ptr>): libstdc++'s _Sp_atomic spinlock is invisible
  /// to TSan and false-positives on every swap/load pair, while the free
  /// functions synchronize through instrumented mutexes.
  std::shared_ptr<const ServingState> state() const {
    return std::atomic_load_explicit(&live_, std::memory_order_acquire);
  }

  /// Watch step: stat the bundle manifest and run the reload state machine
  /// if it changed since the last Poll/ReloadNow. kUnchanged when the
  /// manifest is untouched.
  ReloadOutcome Poll(std::string* error = nullptr);

  /// Stage→validate→swap/rollback unconditionally (a push is known to have
  /// happened, e.g. via an operator signal or in tests where mtime
  /// granularity is too coarse to trust).
  ReloadOutcome ReloadNow(std::string* error = nullptr);

  /// True after a rollback until the next successful swap: the service is
  /// healthy but running on an older generation than the last push.
  bool reload_degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Generation of the live bundle (number of successful swaps since boot).
  uint64_t generation() const {
    return state()->generation;
  }

 private:
  explicit BundleManager(const Config& config) : config_(config) {}

  /// Loads `dir` and builds a full ServingState (no swap). Returns nullptr
  /// with a reason on any decode/validation failure.
  static std::shared_ptr<const ServingState> Stage(const std::string& dir,
                                                   uint64_t generation,
                                                   std::string* error);

  /// The shadow-validation probe set: answers from `candidate` must be
  /// finite, inside the candidate world's (padded) bounding box, and agree
  /// with `live` on at least `min_agree_fraction` of probes.
  bool Validate(const ServingState& live, const ServingState& candidate,
                std::string* error) const;

  /// Remembers the manifest stamp so Poll only fires on a fresh push.
  void RecordWatchStamp();

  Config config_;
  std::shared_ptr<const ServingState> live_;  ///< Via std::atomic_* frees.
  std::atomic<bool> degraded_{false};

  /// Watch state (control thread only).
  std::filesystem::file_time_type last_mtime_{};
  uintmax_t last_size_ = 0;
};

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_BUNDLE_MANAGER_H_
