#include "apps/http_conn.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace dlinf {
namespace apps {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

/// RFC 7230 token characters (header names, methods).
bool IsTokenChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SendAllBlocking(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// --- HttpRequest ------------------------------------------------------------

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HttpRequest::QueryParam(const std::string& key,
                             std::string* value) const {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      *value = query.substr(eq + 1, end - eq - 1);
      return true;
    }
    pos = end + 1;
  }
  return false;
}

// --- HttpParser -------------------------------------------------------------

HttpParser::Status HttpParser::Fail(int status, const std::string& reason) {
  error_status_ = status;
  error_reason_ = reason;
  return Status::kError;
}

/// Finds the end of one line in `buffer_` starting at `from`: the position
/// of the terminating LF, accepting both CRLF and bare LF. npos when the
/// line is still incomplete.
static size_t FindLineEnd(const std::string& buffer, size_t from) {
  return buffer.find('\n', from);
}

/// The line's content (without CR/LF) given its LF position.
static std::string LineAt(const std::string& buffer, size_t from, size_t lf) {
  size_t end = lf;
  if (end > from && buffer[end - 1] == '\r') --end;
  return buffer.substr(from, end - from);
}

HttpParser::Status HttpParser::ParseHeaderBlock(size_t block_end,
                                                size_t consumed) {
  // `consumed` is the offset just past the blank line; [0, block_end) holds
  // the request line + headers (individual lines still terminated).
  pending_ = HttpRequest{};
  size_t pos = 0;

  // Request line.
  const size_t line_lf = FindLineEnd(buffer_, pos);
  const std::string request_line = LineAt(buffer_, pos, line_lf);
  if (request_line.size() > limits_.max_line_bytes) {
    return Fail(431, "request line too long");
  }
  pos = line_lf + 1;
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.find(' ', sp2 + 1) != std::string::npos) {
    return Fail(400, "malformed request line");
  }
  pending_.method = request_line.substr(0, sp1);
  pending_.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (!IsToken(pending_.method)) return Fail(400, "malformed method");
  if (pending_.method != "GET" && pending_.method != "HEAD" &&
      pending_.method != "POST") {
    return Fail(501, "method not implemented: " + pending_.method);
  }
  if (pending_.target.empty() || pending_.target[0] != '/') {
    return Fail(400, "malformed request target");
  }
  if (version == "HTTP/1.1") {
    pending_.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    pending_.minor_version = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    return Fail(505, "unsupported version: " + version);
  } else {
    return Fail(400, "malformed HTTP version");
  }
  const size_t qmark = pending_.target.find('?');
  pending_.path = pending_.target.substr(0, qmark);
  pending_.query =
      qmark == std::string::npos ? "" : pending_.target.substr(qmark + 1);

  // Header lines.
  while (pos < block_end) {
    const size_t lf = FindLineEnd(buffer_, pos);
    const std::string line = LineAt(buffer_, pos, lf);
    pos = lf + 1;
    if (line.empty()) break;  // The blank line (block_end bound is safe).
    if (line.size() > limits_.max_line_bytes) {
      return Fail(431, "header line too long");
    }
    if (pending_.headers.size() >= limits_.max_headers) {
      return Fail(431, "too many headers");
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) return Fail(400, "header without colon");
    const std::string name = ToLower(line.substr(0, colon));
    if (!IsToken(name)) return Fail(400, "malformed header name");
    pending_.headers.emplace_back(name, Trim(line.substr(colon + 1)));
  }

  // Connection semantics: 1.1 defaults to keep-alive, 1.0 to close.
  pending_.keep_alive = pending_.minor_version >= 1;
  if (const std::string* conn = pending_.FindHeader("connection")) {
    const std::string value = ToLower(*conn);
    if (value.find("close") != std::string::npos) {
      pending_.keep_alive = false;
    } else if (value.find("keep-alive") != std::string::npos) {
      pending_.keep_alive = true;
    }
  }

  // Body framing.
  const std::string* length = pending_.FindHeader("content-length");
  const std::string* encoding = pending_.FindHeader("transfer-encoding");
  if (length != nullptr && encoding != nullptr) {
    return Fail(400, "both content-length and transfer-encoding");
  }
  buffer_.erase(0, consumed);
  if (encoding != nullptr) {
    if (ToLower(*encoding) != "chunked") {
      return Fail(501, "unsupported transfer-encoding: " + *encoding);
    }
    phase_ = Phase::kChunkSize;
    trailer_lines_ = 0;
    return Status::kNeedMore;  // Caller re-enters Next().
  }
  if (length != nullptr) {
    if (length->empty() || length->size() > 12 ||
        length->find_first_not_of("0123456789") != std::string::npos) {
      return Fail(400, "malformed content-length");
    }
    const unsigned long long declared = std::stoull(*length);
    if (declared > limits_.max_body_bytes) {
      return Fail(413, "declared body too large");
    }
    body_remaining_ = static_cast<size_t>(declared);
    phase_ = Phase::kBody;
    return Status::kNeedMore;
  }
  phase_ = Phase::kHeaders;
  return Status::kRequest;
}

HttpParser::Status HttpParser::Next(HttpRequest* out) {
  if (error_status_ != 0) return Status::kError;
  for (;;) {
    switch (phase_) {
      case Phase::kHeaders: {
        // Scan for the blank line ending the header block; CRLF and LF are
        // both accepted as line terminators.
        size_t pos = 0;
        size_t block_end = std::string::npos;
        size_t consumed = 0;
        while (pos < buffer_.size()) {
          const size_t lf = FindLineEnd(buffer_, pos);
          if (lf == std::string::npos) break;
          if (LineAt(buffer_, pos, lf).empty()) {
            // Skip leading blank lines between pipelined requests (robust
            // clients send none; RFC 7230 tolerates them).
            if (pos == 0) {
              buffer_.erase(0, lf + 1);
              pos = 0;
              continue;
            }
            block_end = pos;
            consumed = lf + 1;
            break;
          }
          pos = lf + 1;
        }
        if (block_end == std::string::npos) {
          if (buffer_.size() > limits_.max_header_bytes) {
            return Fail(431, "header block too large");
          }
          // An incomplete first line may already be hopeless.
          const size_t first_lf = FindLineEnd(buffer_, 0);
          if (first_lf == std::string::npos &&
              buffer_.size() > limits_.max_line_bytes) {
            return Fail(431, "request line too long");
          }
          return Status::kNeedMore;
        }
        const Status status = ParseHeaderBlock(block_end, consumed);
        if (status == Status::kError) return status;
        if (status == Status::kRequest) {
          *out = std::move(pending_);
          pending_ = HttpRequest{};
          return Status::kRequest;
        }
        continue;  // Body phases read from the remaining buffer.
      }

      case Phase::kBody: {
        if (buffer_.size() < body_remaining_) return Status::kNeedMore;
        pending_.body.append(buffer_, 0, body_remaining_);
        buffer_.erase(0, body_remaining_);
        body_remaining_ = 0;
        phase_ = Phase::kHeaders;
        *out = std::move(pending_);
        pending_ = HttpRequest{};
        return Status::kRequest;
      }

      case Phase::kChunkSize: {
        const size_t lf = FindLineEnd(buffer_, 0);
        if (lf == std::string::npos) {
          if (buffer_.size() > limits_.max_line_bytes) {
            return Fail(400, "chunk size line too long");
          }
          return Status::kNeedMore;
        }
        std::string line = LineAt(buffer_, 0, lf);
        // Chunk extensions (";token=value") are tolerated but ignored.
        const size_t semi = line.find(';');
        if (semi != std::string::npos) line.resize(semi);
        line = Trim(line);
        if (line.empty() || line.size() > 8 ||
            line.find_first_not_of("0123456789abcdefABCDEF") !=
                std::string::npos) {
          return Fail(400, "malformed chunk size");
        }
        const unsigned long long size = std::stoull(line, nullptr, 16);
        if (pending_.body.size() + size > limits_.max_body_bytes) {
          return Fail(413, "chunked body too large");
        }
        buffer_.erase(0, lf + 1);
        if (size == 0) {
          phase_ = Phase::kTrailers;
        } else {
          body_remaining_ = static_cast<size_t>(size);
          phase_ = Phase::kChunkData;
        }
        continue;
      }

      case Phase::kChunkData: {
        if (buffer_.size() < body_remaining_) return Status::kNeedMore;
        pending_.body.append(buffer_, 0, body_remaining_);
        buffer_.erase(0, body_remaining_);
        body_remaining_ = 0;
        phase_ = Phase::kChunkEnd;
        continue;
      }

      case Phase::kChunkEnd: {
        // The CRLF that closes every chunk's data.
        const size_t lf = FindLineEnd(buffer_, 0);
        if (lf == std::string::npos) {
          if (buffer_.size() > 2) return Fail(400, "missing chunk terminator");
          return Status::kNeedMore;
        }
        if (!LineAt(buffer_, 0, lf).empty()) {
          return Fail(400, "garbage after chunk data");
        }
        buffer_.erase(0, lf + 1);
        phase_ = Phase::kChunkSize;
        continue;
      }

      case Phase::kTrailers: {
        const size_t lf = FindLineEnd(buffer_, 0);
        if (lf == std::string::npos) {
          if (buffer_.size() > limits_.max_line_bytes) {
            return Fail(431, "trailer line too long");
          }
          return Status::kNeedMore;
        }
        const std::string line = LineAt(buffer_, 0, lf);
        buffer_.erase(0, lf + 1);
        if (line.empty()) {
          phase_ = Phase::kHeaders;
          *out = std::move(pending_);
          pending_ = HttpRequest{};
          return Status::kRequest;
        }
        if (++trailer_lines_ > limits_.max_headers) {
          return Fail(431, "too many trailers");
        }
        if (line.find(':') == std::string::npos) {
          return Fail(400, "malformed trailer");
        }
        continue;
      }
    }
  }
}

// --- Response serialization -------------------------------------------------

std::string BuildHttpResponse(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive, bool head_only,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    ReasonPhrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!keep_alive) out += "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  if (!head_only) out += body;
  return out;
}

// --- HttpServer -------------------------------------------------------------

namespace {

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* parse_errors;
  obs::Counter* connections;
  obs::Counter* timeouts;
  obs::Gauge* open_connections;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return ServerMetrics{registry.GetCounter("service.http.requests"),
                           registry.GetCounter("service.http.parse_errors"),
                           registry.GetCounter("service.http.connections"),
                           registry.GetCounter("service.http.timeouts"),
                           registry.GetGauge("service.http.open_connections")};
    }();
    return metrics;
  }
};

}  // namespace

void HttpServer::ResponseHandle::Respond(int status,
                                         const std::string& content_type,
                                         const std::string& body) const {
  RespondWithHeaders(status, content_type, body, {});
}

void HttpServer::ResponseHandle::RespondWithHeaders(
    int status, const std::string& content_type, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers)
    const {
  if (server_ == nullptr) return;
  server_->Complete(conn_id_, seq_,
                    BuildHttpResponse(status, content_type, body, keep_alive_,
                                      head_only_, extra_headers));
}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(const Options& options, Handler handler,
                       std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "http server already running";
    return false;
  }
  options_ = options;
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0 || !SetNonBlocking(fd)) {
    if (error != nullptr) *error = std::string("bind: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + strerror(errno);
    }
    ::close(fd);
    return false;
  }

  const int epoll_fd = ::epoll_create1(0);
  const int wake_fd = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd < 0 || wake_fd < 0) {
    if (error != nullptr) {
      *error = std::string("epoll/eventfd: ") + strerror(errno);
    }
    ::close(fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // 0 == listen fd, 1 == wake fd, >=2 == conn id.
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  ev.data.u64 = 1;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev);

  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  epoll_fd_ = epoll_fd;
  wake_fd_ = wake_fd;
  next_conn_id_ = 2;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpServer::Loop, this);
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  for (auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  ServerMetrics::Get().open_connections->Set(0);
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.clear();
  }
}

void HttpServer::Complete(uint64_t conn_id, uint64_t seq, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back({conn_id, seq, std::move(bytes)});
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void HttpServer::Loop() {
  if (!options_.thread_name.empty()) {
    obs::prof::RegisterCurrentThread(options_.thread_name);
  }
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  double last_sweep = NowSeconds();
  while (running()) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        AcceptNew();
      } else if (tag == 1) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else {
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConn(tag);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
        // HandleReadable may have closed the connection.
        auto again = conns_.find(tag);
        if (again != conns_.end() &&
            (events[i].events & EPOLLOUT) != 0) {
          FlushConn(again->second.get());
        }
      }
    }
    DrainCompletions();
    const double now = NowSeconds();
    if (now - last_sweep > 0.2) {
      SweepIdle(now);
      last_sweep = now;
    }
  }
}

void HttpServer::AcceptNew() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: try next wakeup.
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Over capacity: a best-effort 503 and close — never a silent drop.
      const std::string reply = BuildHttpResponse(
          503, "text/plain", "server at connection capacity\n",
          /*keep_alive=*/false);
      SendAllBlocking(client, reply.data(), reply.size());
      ::close(client);
      continue;
    }
    if (!SetNonBlocking(client)) {
      ::close(client);
      continue;
    }
    const int nodelay = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof(nodelay));
    auto conn = std::make_unique<Conn>();
    conn->fd = client;
    conn->id = next_conn_id_++;
    conn->parser = HttpParser(options_.limits);
    conn->last_progress_s = NowSeconds();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev) != 0) {
      ::close(client);
      continue;
    }
    ServerMetrics::Get().connections->Add(1);
    conns_[conn->id] = std::move(conn);
    ServerMetrics::Get().open_connections->Set(
        static_cast<double>(conns_.size()));
  }
}

void HttpServer::HandleReadable(Conn* conn) {
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->last_progress_s = NowSeconds();
      conn->parser.Feed(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer closed (or hard error): flush what is pending, then close. With
    // requests still in flight the pending queue keeps the conn alive until
    // they complete; answered bytes will fail to send and close it then.
    if (conn->pending.empty() && conn->out.size() == conn->out_offset) {
      CloseConn(conn->id);
      return;
    }
    conn->close_after_flush = true;
    break;
  }
  DispatchRequests(conn);
}

void HttpServer::DispatchRequests(Conn* conn) {
  const uint64_t conn_id = conn->id;
  HttpRequest request;
  for (;;) {
    const HttpParser::Status status = conn->parser.Next(&request);
    if (status == HttpParser::Status::kNeedMore) return;
    if (status == HttpParser::Status::kError) {
      ServerMetrics::Get().parse_errors->Add(1);
      // A typed reject, pipelined behind any in-flight responses; nothing
      // after a framing error can be trusted, so the connection closes.
      const uint64_t seq = conn->next_seq++;
      conn->pending.push_back(
          {seq, true,
           BuildHttpResponse(conn->parser.error_status(), "text/plain",
                             conn->parser.error_reason() + "\n",
                             /*keep_alive=*/false)});
      conn->close_after_flush = true;
      FlushConn(conn);
      return;
    }
    ServerMetrics::Get().requests->Add(1);
    conn->last_progress_s = NowSeconds();
    const uint64_t seq = conn->next_seq++;
    conn->pending.push_back({seq, false, {}});
    if (!request.keep_alive) conn->close_after_flush = true;
    handler_(request,
             ResponseHandle(this, conn_id, seq, request.keep_alive,
                            request.method == "HEAD"));
    // Synchronous handlers complete via the queue; drain so the response
    // goes out in this iteration. The flush may close the connection, so
    // re-resolve the pointer before touching it again.
    DrainCompletions();
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // Closed while completing.
    conn = it->second.get();
    if (conn->close_after_flush) return;  // Ignore pipelined leftovers.
  }
}

void HttpServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // Connection died; drop the bytes.
    Conn* conn = it->second.get();
    for (Pending& pending : conn->pending) {
      if (pending.seq == completion.seq) {
        pending.ready = true;
        pending.bytes = std::move(completion.bytes);
        break;
      }
    }
    conn->last_progress_s = NowSeconds();
    FlushConn(conn);
  }
}

void HttpServer::FlushConn(Conn* conn) {
  // Move every leading ready response into the out buffer (strict request
  // order: a later response never overtakes an earlier in-flight one).
  while (!conn->pending.empty() && conn->pending.front().ready) {
    conn->out += conn->pending.front().bytes;
    conn->pending.pop_front();
  }
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      conn->last_progress_s = NowSeconds();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateEpollOut(conn);
      }
      return;
    }
    CloseConn(conn->id);
    return;
  }
  conn->out.clear();
  conn->out_offset = 0;
  if (conn->want_write) {
    conn->want_write = false;
    UpdateEpollOut(conn);
  }
  if (conn->close_after_flush && conn->pending.empty()) {
    CloseConn(conn->id);
  }
}

void HttpServer::UpdateEpollOut(Conn* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void HttpServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  ServerMetrics::Get().open_connections->Set(
      static_cast<double>(conns_.size()));
}

void HttpServer::SweepIdle(double now_s) {
  std::vector<uint64_t> stale;
  for (const auto& [id, conn] : conns_) {
    const bool waiting_on_handler =
        !conn->pending.empty() && !conn->pending.front().ready &&
        conn->parser.buffered_bytes() == 0;
    if (waiting_on_handler) continue;  // Handler latency is not client abuse.
    if (now_s - conn->last_progress_s > options_.idle_timeout_s) {
      stale.push_back(id);
    }
  }
  for (const uint64_t id : stale) {
    Conn* conn = conns_[id].get();
    // A half-sent request gets a typed 408 farewell; a quietly idle
    // keep-alive connection is just closed.
    if (conn->parser.buffered_bytes() > 0) {
      const std::string reply = BuildHttpResponse(
          408, "text/plain", "request timeout\n", /*keep_alive=*/false);
      SendAllBlocking(conn->fd, reply.data(), reply.size());
      ServerMetrics::Get().timeouts->Add(1);
    }
    CloseConn(id);
  }
}

// --- HttpClient -------------------------------------------------------------

bool HttpClient::Connect(int port, std::string* error) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::string("connect: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  timeval timeout{};
  timeout.tv_sec = 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  fd_ = fd;
  buffer_.clear();
  return true;
}

bool HttpClient::SendRaw(const std::string& bytes) {
  return fd_ >= 0 && SendAllBlocking(fd_, bytes.data(), bytes.size());
}

bool HttpClient::SendGet(const std::string& target) {
  return SendRaw("GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

bool HttpClient::SendPost(const std::string& target,
                          const std::string& body) {
  return SendRaw("POST " + target +
                 " HTTP/1.1\r\nHost: localhost\r\nContent-Type: "
                 "application/json\r\nContent-Length: " +
                 std::to_string(body.size()) + "\r\n\r\n" + body);
}

bool HttpClient::ReadResponse(int* status, std::string* body,
                              std::string* error) {
  return ReadResponse(status, nullptr, body, error);
}

bool HttpClient::ReadResponse(
    int* status, std::vector<std::pair<std::string, std::string>>* headers,
    std::string* body, std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  if (fd_ < 0) return fail("not connected");

  // Accumulate until the header block is complete.
  size_t header_end;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return fail("connection closed before response headers");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  const std::string head = buffer_.substr(0, header_end);
  if (head.compare(0, 5, "HTTP/") != 0) return fail("malformed status line");
  const size_t space = head.find(' ');
  if (space == std::string::npos || space + 4 > head.size()) {
    return fail("malformed status line");
  }
  const int parsed_status = std::atoi(head.c_str() + space + 1);

  if (headers != nullptr) {
    headers->clear();
    size_t line_begin = head.find("\r\n");
    while (line_begin != std::string::npos && line_begin + 2 < head.size()) {
      line_begin += 2;
      size_t line_end = head.find("\r\n", line_begin);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_begin, line_end - line_begin);
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string value = line.substr(colon + 1);
        const size_t first = value.find_first_not_of(" \t");
        const size_t last = value.find_last_not_of(" \t");
        value = first == std::string::npos
                    ? ""
                    : value.substr(first, last - first + 1);
        headers->emplace_back(ToLower(line.substr(0, colon)),
                              std::move(value));
      }
      line_begin = line_end == head.size() ? std::string::npos : line_end;
    }
  }

  // Content-Length (every response from our servers carries one).
  size_t content_length = 0;
  {
    const std::string lowered = ToLower(head);
    const size_t pos = lowered.find("content-length:");
    if (pos == std::string::npos) return fail("response without length");
    content_length = static_cast<size_t>(
        std::atoll(head.c_str() + pos + std::strlen("content-length:")));
  }
  const size_t body_begin = header_end + 4;
  while (buffer_.size() < body_begin + content_length) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return fail("connection closed mid-body");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  if (status != nullptr) *status = parsed_status;
  if (body != nullptr) *body = buffer_.substr(body_begin, content_length);
  buffer_.erase(0, body_begin + content_length);
  return true;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool HttpGetOnce(int port, const std::string& path, int* status,
                 std::string* body) {
  HttpClient client;
  if (!client.Connect(port)) return false;
  if (!client.SendRaw("GET " + path +
                      " HTTP/1.1\r\nHost: localhost\r\nConnection: "
                      "close\r\n\r\n")) {
    return false;
  }
  return client.ReadResponse(status, body);
}

}  // namespace apps
}  // namespace dlinf
