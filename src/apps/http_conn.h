#ifndef DLINF_APPS_HTTP_CONN_H_
#define DLINF_APPS_HTTP_CONN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file
/// The serving substrate of the sharded query engine (DESIGN.md §11): an
/// incremental HTTP/1.1 request parser, a non-blocking epoll event loop with
/// keep-alive and pipelining, and a small blocking client for tests, the
/// load generator and the chaos runner.
///
/// Split of responsibilities:
///  - `HttpParser` turns an arbitrary byte stream into complete requests. It
///    is strict about malformed input (oversized lines, bad chunked framing,
///    absurd Content-Length) and *always* degrades to a typed error status —
///    it never CHECK-aborts, whatever the bytes (see
///    tests/http_parser_test.cc).
///  - `HttpServer` owns the listening socket, an epoll loop and every
///    connection. All connection state is touched only by the loop thread;
///    handlers may finish a response asynchronously from any thread through
///    `ResponseHandle`, which posts the bytes back to the loop via an
///    eventfd. Pipelined requests on one connection are answered strictly in
///    request order regardless of the order handlers complete.
///  - `HttpClient` is a deliberately simple blocking keep-alive client: it
///    exists so the deterministic concurrency tests and `tools/load_gen` can
///    drive the server with pipelined request batches without a dependency.

namespace dlinf {
namespace apps {

/// One parsed request. Header names are lowercased; values are trimmed.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD" or "POST".
  std::string target;  ///< Raw request target, e.g. "/query?address_id=7".
  std::string path;    ///< Target up to (excluding) '?'.
  std::string query;   ///< Target after '?' ("" when absent).
  int minor_version = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted.
  bool keep_alive = true;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of header `name` (lowercase), nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;

  /// Value of `key` in the query string ("k1=v1&k2=v2"), nullptr if absent.
  /// Returned pointer is into an internal decoded cache; no %-decoding is
  /// performed (the API uses only numeric parameters).
  bool QueryParam(const std::string& key, std::string* value) const;
};

/// Hard limits the parser enforces; exceeding one is a typed parse error
/// (413/431), never unbounded buffering.
struct HttpParserLimits {
  size_t max_line_bytes = 8192;     ///< Request line and each header line.
  size_t max_header_bytes = 16384;  ///< Whole header block.
  size_t max_headers = 64;
  size_t max_body_bytes = 1 << 20;  ///< Declared or chunked-decoded body.
};

/// Incremental request parser. Feed() bytes as they arrive, then call
/// Next() until it stops returning kRequest. After kError the parser is
/// poisoned: the connection must send `error_status()` and close.
class HttpParser {
 public:
  enum class Status { kNeedMore, kRequest, kError };

  explicit HttpParser(const HttpParserLimits& limits = {}) : limits_(limits) {}

  void Feed(const char* data, size_t size) { buffer_.append(data, size); }

  Status Next(HttpRequest* out);

  /// HTTP status describing the parse failure (400, 413, 431, 501, 505).
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  enum class Phase { kHeaders, kBody, kChunkSize, kChunkData, kChunkEnd,
                     kTrailers };

  Status Fail(int status, const std::string& reason);
  Status ParseHeaderBlock(size_t block_end, size_t consumed);

  HttpParserLimits limits_;
  std::string buffer_;
  Phase phase_ = Phase::kHeaders;
  HttpRequest pending_;
  size_t body_remaining_ = 0;  ///< Content-Length or current-chunk bytes.
  size_t trailer_lines_ = 0;
  int error_status_ = 0;
  std::string error_reason_;
};

/// Serializes a full response with Content-Length (and `Connection: close`
/// when `keep_alive` is false). `head_only` omits the body bytes (HEAD).
/// `extra_headers` are emitted verbatim after the standard ones (used for
/// e.g. `Retry-After` on 429 backpressure responses).
std::string BuildHttpResponse(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive, bool head_only = false,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

/// Non-blocking epoll HTTP server. One loop thread owns all I/O; request
/// handlers run on the loop thread and either answer inline or hand the
/// `ResponseHandle` to another thread which completes it later. See the
/// file comment for the threading contract.
class HttpServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    int port = 0;
    /// A connection with no read/write progress for this long is closed —
    /// the slow-loris guard. Requests already dispatched to a handler are
    /// unaffected (their completion is progress).
    double idle_timeout_s = 30.0;
    int max_connections = 1024;
    HttpParserLimits limits;
    /// When nonempty, the event-loop thread registers under this name for
    /// thread naming, trace-track labels and CPU-profile sampling
    /// (obs::prof::RegisterCurrentThread).
    std::string thread_name;
  };

  /// Completion token for one request. Respond() may be called exactly once,
  /// from any thread; calling it after the connection died is safe (the
  /// bytes are dropped). Default-constructed handles are inert.
  class ResponseHandle {
   public:
    ResponseHandle() = default;

    void Respond(int status, const std::string& content_type,
                 const std::string& body) const;

    /// Respond with additional response headers (e.g. Retry-After).
    void RespondWithHeaders(
        int status, const std::string& content_type, const std::string& body,
        const std::vector<std::pair<std::string, std::string>>& extra_headers)
        const;

   private:
    friend class HttpServer;
    ResponseHandle(HttpServer* server, uint64_t conn_id, uint64_t seq,
                   bool keep_alive, bool head_only)
        : server_(server), conn_id_(conn_id), seq_(seq),
          keep_alive_(keep_alive), head_only_(head_only) {}

    HttpServer* server_ = nullptr;
    uint64_t conn_id_ = 0;
    uint64_t seq_ = 0;
    bool keep_alive_ = true;
    bool head_only_ = false;
  };

  using Handler = std::function<void(const HttpRequest&, ResponseHandle)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:port, spawns the loop thread. False (reason in *error)
  /// when the socket setup fails.
  bool Start(const Options& options, Handler handler,
             std::string* error = nullptr);

  /// Wakes the loop, joins it, closes every connection. Idempotent.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Pending {
    uint64_t seq = 0;
    bool ready = false;
    std::string bytes;
  };

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    HttpParser parser;
    std::deque<Pending> pending;  ///< Responses in request order.
    uint64_t next_seq = 0;
    std::string out;          ///< Bytes accepted by the kernel lag these.
    size_t out_offset = 0;
    bool close_after_flush = false;
    bool want_write = false;  ///< EPOLLOUT currently requested.
    double last_progress_s = 0.0;
  };

  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string bytes;
  };

  void Loop();
  void AcceptNew();
  void HandleReadable(Conn* conn);
  void DispatchRequests(Conn* conn);
  void DrainCompletions();
  void FlushConn(Conn* conn);
  void UpdateEpollOut(Conn* conn);
  void CloseConn(uint64_t conn_id);
  void SweepIdle(double now_s);
  void Complete(uint64_t conn_id, uint64_t seq, std::string bytes);

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: async completions + Stop.
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;

  // Loop-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  // Cross-thread completion queue (any thread -> loop thread).
  std::mutex completions_mu_;
  std::vector<Completion> completions_;
};

/// Blocking keep-alive client against 127.0.0.1 (tests / load_gen / chaos
/// only — the serving path never uses it). Supports sending several
/// pipelined requests before reading the responses back in order.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  bool Connect(int port, std::string* error = nullptr);

  /// Sends raw bytes (e.g. several pipelined GET requests at once).
  bool SendRaw(const std::string& bytes);

  /// Convenience: one "GET <target> HTTP/1.1" keep-alive request.
  bool SendGet(const std::string& target);

  /// One POST with a body (Content-Type application/json).
  bool SendPost(const std::string& target, const std::string& body);

  /// Reads exactly one response (headers + Content-Length body). Leftover
  /// bytes stay buffered for the next pipelined response. False on
  /// transport/parse failure or timeout.
  bool ReadResponse(int* status, std::string* body,
                    std::string* error = nullptr);

  /// Like ReadResponse but also returns the response headers (names
  /// lowercased, values trimmed) so callers can read e.g. Retry-After.
  bool ReadResponse(int* status,
                    std::vector<std::pair<std::string, std::string>>* headers,
                    std::string* body, std::string* error = nullptr);

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Minimal one-shot GET helper (connect, request, read, close). Used by the
/// telemetry endpoints' tests and the chaos healthz scenario.
bool HttpGetOnce(int port, const std::string& path, int* status,
                 std::string* body);

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_HTTP_CONN_H_
