#include "apps/location_service.h"

#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace apps {

namespace {

/// Per-tier hit counters + query latency (DESIGN.md §5), plus the
/// degradation counters of DESIGN.md §8. Pointers are stable for the
/// process lifetime, so cache them once.
struct ServiceMetrics {
  obs::Counter* address_hits;
  obs::Counter* building_hits;
  obs::Counter* geocode_hits;
  obs::Histogram* query_seconds;
  obs::Histogram* batch_seconds;
  obs::Histogram* batch_size;
  obs::Counter* address_failures;
  obs::Counter* building_failures;
  obs::Counter* retries;
  obs::Counter* fallbacks;
  obs::Counter* degraded;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return ServiceMetrics{
          registry.GetCounter("service.query.hits.address"),
          registry.GetCounter("service.query.hits.building"),
          registry.GetCounter("service.query.hits.geocode"),
          registry.GetHistogram("service.query.latency_seconds"),
          registry.GetHistogram("service.query.batch_latency_seconds"),
          registry.GetHistogram("service.query.batch_size"),
          registry.GetCounter("service.tier.failures.address"),
          registry.GetCounter("service.tier.failures.building"),
          registry.GetCounter("service.tier.retries"),
          registry.GetCounter("service.query.fallbacks"),
          registry.GetCounter("service.query.degraded")};
    }();
    return metrics;
  }
};

/// Static identity of one KV tier: its fault points and failure counter.
/// The geocode tier is a pure computation on the query itself, so it has no
/// failure mode and never appears here.
struct TierFaults {
  const char* fail_point;
  const char* latency_point;
  obs::Counter* ServiceMetrics::* failures;
};

constexpr TierFaults kAddressTier = {"service.tier.address.fail",
                                     "service.tier.address.latency",
                                     &ServiceMetrics::address_failures};
constexpr TierFaults kBuildingTier = {"service.tier.building.fail",
                                      "service.tier.building.latency",
                                      &ServiceMetrics::building_failures};

/// One tier's availability decision under the armed fault plan: deadline +
/// bounded retry with doubling backoff (the degradation contract in the
/// class comment). Returns true when the tier may be consulted, false when
/// it is exhausted and the query must fall back.
bool AttemptTier(const TierFaults& tier,
                 const DeliveryLocationService::DegradePolicy& policy) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  double backoff_ms = policy.backoff_ms;
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0) {
      metrics.retries->Add(1);
      obs::TraceInstant("tier.retry");
      fault::SleepForMs(backoff_ms);
      backoff_ms *= 2.0;
    }
    Stopwatch watch;
    if (const auto fire = fault::Hit(tier.latency_point)) {
      fault::SleepForMs(fire->latency_ms);
    }
    const bool failed = fault::Hit(tier.fail_point).has_value();
    const bool deadline_exceeded =
        watch.ElapsedSeconds() * 1e3 > policy.tier_deadline_ms;
    if (!failed && !deadline_exceeded) return true;
    (metrics.*(tier.failures))->Add(1);
  }
  return false;
}

void CountTierHit(DeliveryLocationService::Source source) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  switch (source) {
    case DeliveryLocationService::Source::kAddress:
      metrics.address_hits->Add(1);
      break;
    case DeliveryLocationService::Source::kBuilding:
      metrics.building_hits->Add(1);
      break;
    case DeliveryLocationService::Source::kGeocode:
      metrics.geocode_hits->Add(1);
      break;
  }
}

}  // namespace

DeliveryLocationService DeliveryLocationService::Build(
    const sim::World& world,
    const std::unordered_map<int64_t, Point>& inferred) {
  DeliveryLocationService service(&world);
  service.address_kv_ = inferred;

  // Building tier: the most frequently inferred location among the
  // building's addresses, merging locations within 10 m.
  std::unordered_map<int64_t, std::vector<Point>> by_building;
  for (const auto& [address_id, location] : inferred) {
    by_building[world.address(address_id).building_id].push_back(location);
  }
  for (const auto& [building_id, locations] : by_building) {
    int best_count = 0;
    Point best = locations.front();
    for (const Point& candidate : locations) {
      int count = 0;
      for (const Point& other : locations) {
        if (Distance(candidate, other) <= 10.0) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = candidate;
      }
    }
    service.building_kv_[building_id] = best;
  }
  return service;
}

DeliveryLocationService DeliveryLocationService::BuildFromInferrer(
    const sim::World& world, const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples,
    dlinfma::Inferrer* method) {
  CHECK(method != nullptr);
  const std::vector<Point> locations = method->InferAll(data, samples);
  CHECK_EQ(locations.size(), samples.size());
  std::unordered_map<int64_t, Point> inferred;
  inferred.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    inferred[samples[i].address_id] = locations[i];
  }
  return Build(world, inferred);
}

DeliveryLocationService::Answer DeliveryLocationService::Query(
    int64_t address_id) const {
  // Every query is its own trace: the scope draws the sampling decision and
  // correlates nested spans / instants / log lines under one trace id.
  obs::TraceScope trace;
  obs::TraceSpan span("service.query");
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  const Answer answer = Lookup(address_id);
  CountTierHit(answer.source);
  if (timed) ServiceMetrics::Get().query_seconds->Observe(
      watch.ElapsedSeconds());
  return answer;
}

std::vector<DeliveryLocationService::Answer>
DeliveryLocationService::QueryBatch(const std::vector<int64_t>& address_ids,
                                    ThreadPool* pool) const {
  // One trace per batch (per-item scopes would swamp the ring at large
  // batch sizes); pool workers run outside the scope's thread and record
  // as always-sampled events on their own timelines.
  obs::TraceScope trace;
  obs::TraceSpan span("service.query_batch");
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  std::vector<Answer> answers(address_ids.size());
  auto answer_one = [&](int64_t i) { answers[i] = Lookup(address_ids[i]); };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(address_ids.size()), answer_one);
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(address_ids.size()); ++i) {
      answer_one(i);
    }
  }

  // One counter update per tier per batch (not per query) keeps the hot
  // path free of shared-cacheline traffic at large batch sizes.
  int64_t hits[3] = {0, 0, 0};
  for (const Answer& answer : answers) {
    ++hits[static_cast<int>(answer.source)];
  }
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  if (hits[0] > 0) metrics.address_hits->Add(hits[0]);
  if (hits[1] > 0) metrics.building_hits->Add(hits[1]);
  if (hits[2] > 0) metrics.geocode_hits->Add(hits[2]);
  if (timed) {
    metrics.batch_seconds->Observe(watch.ElapsedSeconds());
    metrics.batch_size->Observe(static_cast<double>(address_ids.size()));
  }
  return answers;
}

DeliveryLocationService::Answer DeliveryLocationService::Lookup(
    int64_t address_id) const {
  if (fault::Armed()) return DegradableLookup(address_id);
  auto it = address_kv_.find(address_id);
  if (it != address_kv_.end()) {
    return Answer{it->second, Source::kAddress};
  }
  const sim::Address& addr = world_->address(address_id);
  return LookupBuilding(addr.building_id, addr.geocoded_location);
}

DeliveryLocationService::Answer DeliveryLocationService::QueryByBuilding(
    int64_t building_id, const Point& geocode) const {
  obs::TraceScope trace;
  obs::TraceSpan span("service.query_by_building");
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  const Answer answer = LookupBuilding(building_id, geocode);
  CountTierHit(answer.source);
  if (timed) ServiceMetrics::Get().query_seconds->Observe(
      watch.ElapsedSeconds());
  return answer;
}

DeliveryLocationService::Answer DeliveryLocationService::LookupBuilding(
    int64_t building_id, const Point& geocode, bool already_degraded) const {
  if (fault::Armed()) {
    return DegradableLookupBuilding(building_id, geocode, already_degraded);
  }
  auto it = building_kv_.find(building_id);
  if (it != building_kv_.end()) {
    return Answer{it->second, Source::kBuilding};
  }
  return Answer{geocode, Source::kGeocode};
}

DeliveryLocationService::Answer DeliveryLocationService::DegradableLookup(
    int64_t address_id) const {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  bool degraded = false;
  if (AttemptTier(kAddressTier, degrade_policy_)) {
    auto it = address_kv_.find(address_id);
    if (it != address_kv_.end()) {
      return Answer{it->second, Source::kAddress, /*degraded=*/false};
    }
    // A healthy tier without an entry is a normal miss, not degradation.
  } else {
    metrics.fallbacks->Add(1);
    obs::TraceInstant("tier.fallback.address");
    obs::LogLine(obs::LogSeverity::kWarn, "query.fallback")
        .Str("tier", "address")
        .Int("address_id", address_id);
    degraded = true;
  }
  const sim::Address& addr = world_->address(address_id);
  return DegradableLookupBuilding(addr.building_id, addr.geocoded_location,
                                  degraded);
}

DeliveryLocationService::Answer
DeliveryLocationService::DegradableLookupBuilding(int64_t building_id,
                                                  const Point& geocode,
                                                  bool already_degraded) const {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  bool degraded = already_degraded;
  if (AttemptTier(kBuildingTier, degrade_policy_)) {
    auto it = building_kv_.find(building_id);
    if (it != building_kv_.end()) {
      // Answered by the intended tier: an earlier tier's failure still
      // marks the answer degraded (the address entry may have existed).
      if (degraded) metrics.degraded->Add(1);
      return Answer{it->second, Source::kBuilding, degraded};
    }
  } else {
    metrics.fallbacks->Add(1);
    obs::TraceInstant("tier.fallback.building");
    obs::LogLine(obs::LogSeverity::kWarn, "query.fallback")
        .Str("tier", "building")
        .Int("building_id", building_id);
    degraded = true;
  }
  // Terminal tier: geocode is computed from the query itself and cannot
  // fail, so every query is answered.
  if (degraded) metrics.degraded->Add(1);
  return Answer{geocode, Source::kGeocode, degraded};
}

}  // namespace apps
}  // namespace dlinf
