#include "apps/location_service.h"

#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace dlinf {
namespace apps {

namespace {

/// Per-tier hit counters + query latency (DESIGN.md §5). Pointers are
/// stable for the process lifetime, so cache them once.
struct ServiceMetrics {
  obs::Counter* address_hits;
  obs::Counter* building_hits;
  obs::Counter* geocode_hits;
  obs::Histogram* query_seconds;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return ServiceMetrics{
          registry.GetCounter("service.query.hits.address"),
          registry.GetCounter("service.query.hits.building"),
          registry.GetCounter("service.query.hits.geocode"),
          registry.GetHistogram("service.query.latency_seconds")};
    }();
    return metrics;
  }
};

void CountTierHit(DeliveryLocationService::Source source) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  switch (source) {
    case DeliveryLocationService::Source::kAddress:
      metrics.address_hits->Add(1);
      break;
    case DeliveryLocationService::Source::kBuilding:
      metrics.building_hits->Add(1);
      break;
    case DeliveryLocationService::Source::kGeocode:
      metrics.geocode_hits->Add(1);
      break;
  }
}

}  // namespace

DeliveryLocationService DeliveryLocationService::Build(
    const sim::World& world,
    const std::unordered_map<int64_t, Point>& inferred) {
  DeliveryLocationService service(&world);
  service.address_kv_ = inferred;

  // Building tier: the most frequently inferred location among the
  // building's addresses, merging locations within 10 m.
  std::unordered_map<int64_t, std::vector<Point>> by_building;
  for (const auto& [address_id, location] : inferred) {
    by_building[world.address(address_id).building_id].push_back(location);
  }
  for (const auto& [building_id, locations] : by_building) {
    int best_count = 0;
    Point best = locations.front();
    for (const Point& candidate : locations) {
      int count = 0;
      for (const Point& other : locations) {
        if (Distance(candidate, other) <= 10.0) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = candidate;
      }
    }
    service.building_kv_[building_id] = best;
  }
  return service;
}

DeliveryLocationService::Answer DeliveryLocationService::Query(
    int64_t address_id) const {
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  Answer answer;
  auto it = address_kv_.find(address_id);
  if (it != address_kv_.end()) {
    answer = Answer{it->second, Source::kAddress};
  } else {
    const sim::Address& addr = world_->address(address_id);
    answer = LookupBuilding(addr.building_id, addr.geocoded_location);
  }
  CountTierHit(answer.source);
  if (timed) ServiceMetrics::Get().query_seconds->Observe(
      watch.ElapsedSeconds());
  return answer;
}

DeliveryLocationService::Answer DeliveryLocationService::QueryByBuilding(
    int64_t building_id, const Point& geocode) const {
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  const Answer answer = LookupBuilding(building_id, geocode);
  CountTierHit(answer.source);
  if (timed) ServiceMetrics::Get().query_seconds->Observe(
      watch.ElapsedSeconds());
  return answer;
}

DeliveryLocationService::Answer DeliveryLocationService::LookupBuilding(
    int64_t building_id, const Point& geocode) const {
  auto it = building_kv_.find(building_id);
  if (it != building_kv_.end()) {
    return Answer{it->second, Source::kBuilding};
  }
  return Answer{geocode, Source::kGeocode};
}

}  // namespace apps
}  // namespace dlinf
