#include "apps/location_service.h"

#include <vector>

#include "common/check.h"

namespace dlinf {
namespace apps {

DeliveryLocationService DeliveryLocationService::Build(
    const sim::World& world,
    const std::unordered_map<int64_t, Point>& inferred) {
  DeliveryLocationService service(&world);
  service.address_kv_ = inferred;

  // Building tier: the most frequently inferred location among the
  // building's addresses, merging locations within 10 m.
  std::unordered_map<int64_t, std::vector<Point>> by_building;
  for (const auto& [address_id, location] : inferred) {
    by_building[world.address(address_id).building_id].push_back(location);
  }
  for (const auto& [building_id, locations] : by_building) {
    int best_count = 0;
    Point best = locations.front();
    for (const Point& candidate : locations) {
      int count = 0;
      for (const Point& other : locations) {
        if (Distance(candidate, other) <= 10.0) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = candidate;
      }
    }
    service.building_kv_[building_id] = best;
  }
  return service;
}

DeliveryLocationService::Answer DeliveryLocationService::Query(
    int64_t address_id) const {
  auto it = address_kv_.find(address_id);
  if (it != address_kv_.end()) {
    return Answer{it->second, Source::kAddress};
  }
  const sim::Address& addr = world_->address(address_id);
  return QueryByBuilding(addr.building_id, addr.geocoded_location);
}

DeliveryLocationService::Answer DeliveryLocationService::QueryByBuilding(
    int64_t building_id, const Point& geocode) const {
  auto it = building_kv_.find(building_id);
  if (it != building_kv_.end()) {
    return Answer{it->second, Source::kBuilding};
  }
  return Answer{geocode, Source::kGeocode};
}

}  // namespace apps
}  // namespace dlinf
