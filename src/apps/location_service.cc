#include "apps/location_service.h"

#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace dlinf {
namespace apps {

namespace {

/// Per-tier hit counters + query latency (DESIGN.md §5). Pointers are
/// stable for the process lifetime, so cache them once.
struct ServiceMetrics {
  obs::Counter* address_hits;
  obs::Counter* building_hits;
  obs::Counter* geocode_hits;
  obs::Histogram* query_seconds;
  obs::Histogram* batch_seconds;
  obs::Histogram* batch_size;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return ServiceMetrics{
          registry.GetCounter("service.query.hits.address"),
          registry.GetCounter("service.query.hits.building"),
          registry.GetCounter("service.query.hits.geocode"),
          registry.GetHistogram("service.query.latency_seconds"),
          registry.GetHistogram("service.query.batch_latency_seconds"),
          registry.GetHistogram("service.query.batch_size")};
    }();
    return metrics;
  }
};

void CountTierHit(DeliveryLocationService::Source source) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  switch (source) {
    case DeliveryLocationService::Source::kAddress:
      metrics.address_hits->Add(1);
      break;
    case DeliveryLocationService::Source::kBuilding:
      metrics.building_hits->Add(1);
      break;
    case DeliveryLocationService::Source::kGeocode:
      metrics.geocode_hits->Add(1);
      break;
  }
}

}  // namespace

DeliveryLocationService DeliveryLocationService::Build(
    const sim::World& world,
    const std::unordered_map<int64_t, Point>& inferred) {
  DeliveryLocationService service(&world);
  service.address_kv_ = inferred;

  // Building tier: the most frequently inferred location among the
  // building's addresses, merging locations within 10 m.
  std::unordered_map<int64_t, std::vector<Point>> by_building;
  for (const auto& [address_id, location] : inferred) {
    by_building[world.address(address_id).building_id].push_back(location);
  }
  for (const auto& [building_id, locations] : by_building) {
    int best_count = 0;
    Point best = locations.front();
    for (const Point& candidate : locations) {
      int count = 0;
      for (const Point& other : locations) {
        if (Distance(candidate, other) <= 10.0) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = candidate;
      }
    }
    service.building_kv_[building_id] = best;
  }
  return service;
}

DeliveryLocationService DeliveryLocationService::BuildFromInferrer(
    const sim::World& world, const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples,
    dlinfma::Inferrer* method) {
  CHECK(method != nullptr);
  const std::vector<Point> locations = method->InferAll(data, samples);
  CHECK_EQ(locations.size(), samples.size());
  std::unordered_map<int64_t, Point> inferred;
  inferred.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    inferred[samples[i].address_id] = locations[i];
  }
  return Build(world, inferred);
}

DeliveryLocationService::Answer DeliveryLocationService::Query(
    int64_t address_id) const {
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  const Answer answer = Lookup(address_id);
  CountTierHit(answer.source);
  if (timed) ServiceMetrics::Get().query_seconds->Observe(
      watch.ElapsedSeconds());
  return answer;
}

std::vector<DeliveryLocationService::Answer>
DeliveryLocationService::QueryBatch(const std::vector<int64_t>& address_ids,
                                    ThreadPool* pool) const {
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  std::vector<Answer> answers(address_ids.size());
  auto answer_one = [&](int64_t i) { answers[i] = Lookup(address_ids[i]); };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(address_ids.size()), answer_one);
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(address_ids.size()); ++i) {
      answer_one(i);
    }
  }

  // One counter update per tier per batch (not per query) keeps the hot
  // path free of shared-cacheline traffic at large batch sizes.
  int64_t hits[3] = {0, 0, 0};
  for (const Answer& answer : answers) {
    ++hits[static_cast<int>(answer.source)];
  }
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  if (hits[0] > 0) metrics.address_hits->Add(hits[0]);
  if (hits[1] > 0) metrics.building_hits->Add(hits[1]);
  if (hits[2] > 0) metrics.geocode_hits->Add(hits[2]);
  if (timed) {
    metrics.batch_seconds->Observe(watch.ElapsedSeconds());
    metrics.batch_size->Observe(static_cast<double>(address_ids.size()));
  }
  return answers;
}

DeliveryLocationService::Answer DeliveryLocationService::Lookup(
    int64_t address_id) const {
  auto it = address_kv_.find(address_id);
  if (it != address_kv_.end()) {
    return Answer{it->second, Source::kAddress};
  }
  const sim::Address& addr = world_->address(address_id);
  return LookupBuilding(addr.building_id, addr.geocoded_location);
}

DeliveryLocationService::Answer DeliveryLocationService::QueryByBuilding(
    int64_t building_id, const Point& geocode) const {
  const bool timed = obs::MetricsEnabled();
  Stopwatch watch;
  const Answer answer = LookupBuilding(building_id, geocode);
  CountTierHit(answer.source);
  if (timed) ServiceMetrics::Get().query_seconds->Observe(
      watch.ElapsedSeconds());
  return answer;
}

DeliveryLocationService::Answer DeliveryLocationService::LookupBuilding(
    int64_t building_id, const Point& geocode) const {
  auto it = building_kv_.find(building_id);
  if (it != building_kv_.end()) {
    return Answer{it->second, Source::kBuilding};
  }
  return Answer{geocode, Source::kGeocode};
}

}  // namespace apps
}  // namespace dlinf
