#ifndef DLINF_APPS_LOCATION_SERVICE_H_
#define DLINF_APPS_LOCATION_SERVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "dlinfma/inferrer.h"
#include "geo/point.h"
#include "sim/world.h"

namespace dlinf {
namespace apps {

/// The deployed delivery-location query service (Section VI-A).
///
/// Inference results are stored in an address-level key-value map; a
/// building-level map holds each building's most-used delivery location
/// (covering addresses that never appeared in history); Geocoding is the
/// final fallback. Queries walk that 3-tier chain, exactly as the paper's
/// online API does.
///
/// Every query feeds the global metrics `service.query.hits.{address,
/// building,geocode}` (one hit on the answering tier per query) and the
/// `service.query.latency_seconds` histogram (see DESIGN.md §5).
class DeliveryLocationService {
 public:
  /// Where a query answer came from (the tier that matched).
  enum class Source { kAddress, kBuilding, kGeocode };

  struct Answer {
    Point location;
    Source source = Source::kGeocode;
  };

  /// Builds the two KV tiers from per-address inference results.
  /// `inferred` maps address id -> inferred delivery location; the building
  /// tier aggregates these by building (modal location, 10 m tolerance).
  static DeliveryLocationService Build(
      const sim::World& world,
      const std::unordered_map<int64_t, Point>& inferred);

  /// Warm-start path: builds the service directly from a preloaded (trained
  /// or artifact-restored) inference method by scoring `samples` — the
  /// delivered-address inventory — and feeding the results through Build.
  /// This is what `dlinf_cli serve` runs after loading a bundle; no
  /// retraining or re-mining happens here.
  static DeliveryLocationService BuildFromInferrer(
      const sim::World& world, const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples,
      dlinfma::Inferrer* method);

  /// Answers a query for a known address id.
  Answer Query(int64_t address_id) const;

  /// Answers N waybill queries in one call — the online API's batched
  /// entry point. Answers are positionally aligned with `address_ids` and
  /// exactly equal to N sequential Query calls; with a pool the lookups are
  /// parallelized in contiguous blocks. Each batch records one observation
  /// in `service.query.batch_latency_seconds` and `service.query.batch_size`
  /// and counts every per-answer tier hit (DESIGN.md §5).
  std::vector<Answer> QueryBatch(const std::vector<int64_t>& address_ids,
                                 ThreadPool* pool = nullptr) const;

  /// Answers a query for a *new* address known only by building (the
  /// real-time case of Section VI-A where the address never appeared).
  Answer QueryByBuilding(int64_t building_id, const Point& geocode) const;

  size_t address_entries() const { return address_kv_.size(); }
  size_t building_entries() const { return building_kv_.size(); }

 private:
  explicit DeliveryLocationService(const sim::World* world) : world_(world) {}

  /// The full 3-tier chain without metric counting (shared by Query and
  /// QueryBatch so batched and sequential answers are identical by
  /// construction).
  Answer Lookup(int64_t address_id) const;

  /// Tiers 2-3 without metric counting (shared by both public queries, each
  /// of which counts exactly one tier hit).
  Answer LookupBuilding(int64_t building_id, const Point& geocode) const;

  const sim::World* world_;
  std::unordered_map<int64_t, Point> address_kv_;
  std::unordered_map<int64_t, Point> building_kv_;
};

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_LOCATION_SERVICE_H_
