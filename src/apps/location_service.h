#ifndef DLINF_APPS_LOCATION_SERVICE_H_
#define DLINF_APPS_LOCATION_SERVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "dlinfma/inferrer.h"
#include "geo/point.h"
#include "sim/world.h"

namespace dlinf {
namespace apps {

/// The deployed delivery-location query service (Section VI-A).
///
/// Inference results are stored in an address-level key-value map; a
/// building-level map holds each building's most-used delivery location
/// (covering addresses that never appeared in history); Geocoding is the
/// final fallback. Queries walk that 3-tier chain, exactly as the paper's
/// online API does.
///
/// Every query feeds the global metrics `service.query.hits.{address,
/// building,geocode}` (one hit on the answering tier per query) and the
/// `service.query.latency_seconds` histogram (see DESIGN.md §5).
///
/// **Degradation contract** (DESIGN.md §8): a tier *attempt* fails when the
/// fault point `service.tier.<tier>.fail` fires or the attempt (including
/// any `service.tier.<tier>.latency` injection) exceeds the per-tier
/// deadline. A failed attempt is retried up to `DegradePolicy::max_retries`
/// times with doubling backoff; when a tier is exhausted the query falls
/// back to the next tier and the final answer carries `degraded = true`.
/// The geocode tier is terminal and infallible, so **every query is always
/// answered**. Tier failures, retries, fallbacks, and degraded answers feed
/// the counters `service.tier.failures.{address,building}`,
/// `service.tier.retries`, `service.query.fallbacks`, and
/// `service.query.degraded`. With no fault plan armed the whole machinery
/// is bypassed (one atomic load) and answers are identical to the
/// pre-degradation fast path.
class DeliveryLocationService {
 public:
  /// Where a query answer came from (the tier that matched).
  enum class Source { kAddress, kBuilding, kGeocode };

  struct Answer {
    Point location;
    Source source = Source::kGeocode;
    /// True when a tier failure forced this answer onto a lower tier than
    /// the one that would have answered on the healthy path.
    bool degraded = false;
  };

  /// Bounds on the per-tier retry/fallback behaviour above.
  struct DegradePolicy {
    double tier_deadline_ms = 50.0;  ///< Per-attempt deadline.
    int max_retries = 1;             ///< Retries after the first failure.
    double backoff_ms = 1.0;         ///< First retry backoff; doubles.
  };

  /// Builds the two KV tiers from per-address inference results.
  /// `inferred` maps address id -> inferred delivery location; the building
  /// tier aggregates these by building (modal location, 10 m tolerance).
  static DeliveryLocationService Build(
      const sim::World& world,
      const std::unordered_map<int64_t, Point>& inferred);

  /// Warm-start path: builds the service directly from a preloaded (trained
  /// or artifact-restored) inference method by scoring `samples` — the
  /// delivered-address inventory — and feeding the results through Build.
  /// This is what `dlinf_cli serve` runs after loading a bundle; no
  /// retraining or re-mining happens here.
  static DeliveryLocationService BuildFromInferrer(
      const sim::World& world, const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples,
      dlinfma::Inferrer* method);

  /// Answers a query for a known address id.
  Answer Query(int64_t address_id) const;

  /// Answers N waybill queries in one call — the online API's batched
  /// entry point. Answers are positionally aligned with `address_ids` and
  /// exactly equal to N sequential Query calls; with a pool the lookups are
  /// parallelized in contiguous blocks. Each batch records one observation
  /// in `service.query.batch_latency_seconds` and `service.query.batch_size`
  /// and counts every per-answer tier hit (DESIGN.md §5).
  std::vector<Answer> QueryBatch(const std::vector<int64_t>& address_ids,
                                 ThreadPool* pool = nullptr) const;

  /// Answers a query for a *new* address known only by building (the
  /// real-time case of Section VI-A where the address never appeared).
  Answer QueryByBuilding(int64_t building_id, const Point& geocode) const;

  size_t address_entries() const { return address_kv_.size(); }
  size_t building_entries() const { return building_kv_.size(); }

  const DegradePolicy& degrade_policy() const { return degrade_policy_; }
  void set_degrade_policy(const DegradePolicy& policy) {
    degrade_policy_ = policy;
  }

 private:
  explicit DeliveryLocationService(const sim::World* world) : world_(world) {}

  /// The full 3-tier chain without metric counting (shared by Query and
  /// QueryBatch so batched and sequential answers are identical by
  /// construction). Dispatches to the degradation-aware path only while a
  /// fault plan is armed.
  Answer Lookup(int64_t address_id) const;

  /// Tiers 2-3 without metric counting (shared by both public queries, each
  /// of which counts exactly one tier hit). `already_degraded` carries a
  /// tier-1 failure into the final answer.
  Answer LookupBuilding(int64_t building_id, const Point& geocode,
                        bool already_degraded = false) const;

  /// Lookup/LookupBuilding under an armed fault plan: per-tier deadline,
  /// bounded retry with backoff, fallback on exhaustion.
  Answer DegradableLookup(int64_t address_id) const;
  Answer DegradableLookupBuilding(int64_t building_id, const Point& geocode,
                                  bool already_degraded) const;

  const sim::World* world_;
  std::unordered_map<int64_t, Point> address_kv_;
  std::unordered_map<int64_t, Point> building_kv_;
  DegradePolicy degrade_policy_;
};

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_LOCATION_SERVICE_H_
