#include "apps/query_engine.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "apps/telemetry_server.h"
#include "fault/fault.h"
#include "obs/profiler.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace apps {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// %.17g — enough digits that a double round-trips exactly, so the engine's
/// JSON and a test's locally-formatted expectation are bit-identical.
std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

const char* SourceName(DeliveryLocationService::Source source) {
  switch (source) {
    case DeliveryLocationService::Source::kAddress: return "address";
    case DeliveryLocationService::Source::kBuilding: return "building";
    case DeliveryLocationService::Source::kGeocode: return "geocode";
  }
  return "geocode";
}

struct EngineMetrics {
  obs::Counter* hits_total;
  obs::Counter* shed_total;
  obs::Counter* batch_requests;
  obs::Counter* rejected;
  obs::Histogram* latency;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return EngineMetrics{
          registry.GetCounter("service.shard.hits"),
          registry.GetCounter("service.shard.shed"),
          registry.GetCounter("service.shard.batch_requests"),
          registry.GetCounter("service.shard.rejected"),
          registry.GetHistogram("service.engine.latency_seconds")};
    }();
    return metrics;
  }
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Maps an inbound X-Request-Id to a trace id: numeric ids (decimal or
/// 0x-hex) are adopted so an upstream's id survives verbatim; any other
/// string hashes deterministically. Never returns 0 ("no trace context").
uint64_t RequestIdToTraceId(const std::string& id) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(id.c_str(), &end, 0);
  if (end == id.c_str() + id.size() && value != 0) return value;
  uint64_t hash = 0x2545f4914f6cdd1dull;
  for (const char c : id) {
    hash = SplitMix64(hash ^ static_cast<unsigned char>(c));
  }
  return hash != 0 ? hash : 1;
}

/// The generated id when a request arrives without one: 16 hex digits of a
/// splitmix64-whitened fresh trace id.
std::string GenerateRequestId(uint64_t* trace_id) {
  *trace_id = SplitMix64(obs::NextTraceId());
  if (*trace_id == 0) *trace_id = 1;
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(*trace_id));
  return buffer;
}

/// The echoed request id and its trace id: adopted from the X-Request-Id
/// header when present, generated otherwise.
std::string ExtractRequestId(const HttpRequest& request,
                             uint64_t* trace_id) {
  const std::string* header = request.FindHeader("x-request-id");
  if (header != nullptr && !header->empty()) {
    *trace_id = RequestIdToTraceId(*header);
    return *header;
  }
  return GenerateRequestId(trace_id);
}

/// Minimal strict parse of {"address_ids":[1,2,3]}. False on anything that
/// is not a flat array of base-10 integers under that key.
bool ParseBatchBody(const std::string& body, std::vector<int64_t>* ids) {
  const size_t key = body.find("\"address_ids\"");
  if (key == std::string::npos) return false;
  const size_t open = body.find('[', key);
  if (open == std::string::npos) return false;
  const size_t close = body.find(']', open);
  if (close == std::string::npos) return false;
  size_t pos = open + 1;
  while (pos < close) {
    while (pos < close &&
           (body[pos] == ' ' || body[pos] == ',' || body[pos] == '\n' ||
            body[pos] == '\t' || body[pos] == '\r')) {
      ++pos;
    }
    if (pos >= close) break;
    char* end = nullptr;
    const long long value = std::strtoll(body.c_str() + pos, &end, 10);
    if (end == body.c_str() + pos) return false;  // Not a number.
    ids->push_back(value);
    pos = static_cast<size_t>(end - body.c_str());
    while (pos < close && (body[pos] == ' ' || body[pos] == '\n' ||
                           body[pos] == '\t' || body[pos] == '\r')) {
      ++pos;
    }
    if (pos < close && body[pos] != ',') return false;
  }
  return true;
}

}  // namespace

/// Shared aggregation state of one /query_batch across its shard slices.
/// `parts` slots are disjoint per shard, so only `remaining` synchronizes.
struct QueryEngine::BatchState {
  std::vector<int64_t> ids;
  std::vector<std::string> parts;
  std::atomic<int> remaining{0};
  HttpServer::ResponseHandle handle;
  double start_s = 0.0;
  uint64_t trace_id = 0;
  std::string request_id;

  void FinishIfLast() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    std::string body = "{\"answers\":[";
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) body += ',';
      body += parts[i];
    }
    body += "]}";
    EngineMetrics::Get().latency->Observe(NowSeconds() - start_s);
    handle.RespondWithHeaders(200, "application/json", body,
                              {{"X-Request-Id", request_id}});
  }
};

std::string QueryEngine::FormatAnswerJson(
    int64_t address_id, const DeliveryLocationService::Answer& answer,
    int shard, bool shed) {
  std::string out = "{\"address_id\":" + std::to_string(address_id);
  out += ",\"x\":" + FormatDouble(answer.location.x);
  out += ",\"y\":" + FormatDouble(answer.location.y);
  out += ",\"source\":\"";
  out += SourceName(answer.source);
  out += "\",\"degraded\":";
  out += answer.degraded ? "true" : "false";
  out += ",\"shed\":";
  out += shed ? "true" : "false";
  out += ",\"shard\":" + std::to_string(shard);
  out += "}";
  return out;
}

std::unique_ptr<QueryEngine> QueryEngine::Create(const Options& options,
                                                 std::string* error) {
  auto engine = std::unique_ptr<QueryEngine>(new QueryEngine());
  engine->options_ = options;
  engine->router_ = ShardRouter(options.num_shards);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  for (int i = 0; i < options.num_shards; ++i) {
    BundleManager::Config config = options.bundle;
    config.dir = options.bundle_dir;
    auto shard = std::make_unique<Shard>();
    shard->manager = BundleManager::Create(config, error);
    if (shard->manager == nullptr) return nullptr;
    const std::string label = "#shard=" + std::to_string(i);
    shard->hits = registry.GetCounter("service.shard.hits" + label);
    shard->shed = registry.GetCounter("service.shard.shed" + label);
    engine->shards_.push_back(std::move(shard));
  }
  engine->address_count_.store(
      static_cast<int64_t>(engine->shards_[0]
                               ->manager->state()
                               ->bundle.world->addresses.size()),
      std::memory_order_release);

  HttpServer::Options server_options;
  server_options.port = options.port;
  server_options.idle_timeout_s = options.idle_timeout_s;
  server_options.thread_name = "qe.loop";
  QueryEngine* raw = engine.get();
  if (!engine->server_.Start(
          server_options,
          [raw](const HttpRequest& request,
                HttpServer::ResponseHandle handle) {
            raw->Handle(request, std::move(handle));
          },
          error)) {
    return nullptr;
  }
  for (int i = 0; i < options.num_shards; ++i) {
    Shard* shard = engine->shards_[static_cast<size_t>(i)].get();
    shard->worker =
        std::thread(&QueryEngine::WorkerLoop, raw, shard, i);
  }
  return engine;
}

QueryEngine::~QueryEngine() { Stop(); }

void QueryEngine::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // An in-flight /profilez capture answers through this engine's event
  // loop; reel it in while the loop is still alive.
  obs::prof::CaptureManager::Global().CancelAndJoin();
  // Drain the workers first: they finish every queued job (each completion
  // posts through the still-open event loop), then the loop itself stops.
  // The reverse order would let a worker complete into a closed eventfd.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  server_.Stop();
}

QueryEngine::ReloadSummary QueryEngine::PollShards(std::string* error) {
  ReloadSummary summary;
  for (auto& shard : shards_) {
    switch (shard->manager->Poll(error)) {
      case BundleManager::ReloadOutcome::kSwapped: ++summary.swapped; break;
      case BundleManager::ReloadOutcome::kRolledBack:
        ++summary.rolled_back;
        break;
      case BundleManager::ReloadOutcome::kUnchanged:
        ++summary.unchanged;
        break;
    }
  }
  address_count_.store(
      static_cast<int64_t>(
          shards_[0]->manager->state()->bundle.world->addresses.size()),
      std::memory_order_release);
  return summary;
}

QueryEngine::ReloadSummary QueryEngine::ReloadShardsNow(std::string* error) {
  ReloadSummary summary;
  for (auto& shard : shards_) {
    switch (shard->manager->ReloadNow(error)) {
      case BundleManager::ReloadOutcome::kSwapped: ++summary.swapped; break;
      case BundleManager::ReloadOutcome::kRolledBack:
        ++summary.rolled_back;
        break;
      case BundleManager::ReloadOutcome::kUnchanged:
        ++summary.unchanged;
        break;
    }
  }
  address_count_.store(
      static_cast<int64_t>(
          shards_[0]->manager->state()->bundle.world->addresses.size()),
      std::memory_order_release);
  return summary;
}

bool QueryEngine::AnyShardDegraded() const {
  for (const auto& shard : shards_) {
    if (shard->manager->reload_degraded()) return true;
  }
  return false;
}

std::string QueryEngine::HealthzJson() const {
  const bool degraded = AnyShardDegraded();
  std::string body = "{\"ok\":";
  body += degraded ? "false" : "true";
  body += ",\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    const BundleManager* manager = shards_[i]->manager.get();
    if (i > 0) body += ',';
    body += "{\"shard\":" + std::to_string(i);
    body += ",\"generation\":" + std::to_string(manager->generation());
    body += ",\"degraded\":";
    body += manager->reload_degraded() ? "true" : "false";
    body += "}";
  }
  body += "],\"detail\":\"";
  body += degraded ? "shard(s) rolled back, serving previous generation"
                   : "serving";
  body += "\"}";
  return body;
}

DeliveryLocationService::Answer QueryEngine::ShedAnswer(
    const Shard& shard, int64_t address_id) const {
  // The geocode tier is the terminal, infallible tier of DegradePolicy's
  // fallback chain — shedding answers from it directly without touching the
  // shard's queue or the service's tier counters.
  const std::shared_ptr<const BundleManager::ServingState> state =
      shard.manager->state();
  DeliveryLocationService::Answer answer;
  answer.location = state->bundle.world->address(address_id).geocoded_location;
  answer.source = DeliveryLocationService::Source::kGeocode;
  answer.degraded = true;
  return answer;
}

bool QueryEngine::AdmitOrShed(int shard_index, Job job) {
  Shard* shard = shards_[static_cast<size_t>(shard_index)].get();
  bool overloaded = false;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    overloaded = static_cast<int>(shard->queue.size()) >=
                 options_.max_queue_per_shard;
  }
  if (fault::Hit("service.shard.overload")) overloaded = true;
  if (overloaded) {
    const int count =
        job.batch ? static_cast<int>(job.indices.size()) : 1;
    EngineMetrics::Get().shed_total->Add(count);
    shard->shed->Add(count);
    if (job.batch) {
      for (const size_t index : job.indices) {
        const int64_t id = job.batch->ids[index];
        job.batch->parts[index] =
            FormatAnswerJson(id, ShedAnswer(*shard, id), shard_index,
                             /*shed=*/true);
      }
      job.batch->FinishIfLast();
    } else {
      job.handle.RespondWithHeaders(
          200, "application/json",
          FormatAnswerJson(job.address_id,
                           ShedAnswer(*shard, job.address_id), shard_index,
                           /*shed=*/true),
          {{"X-Request-Id", job.request_id}});
      EngineMetrics::Get().latency->Observe(NowSeconds() - job.enqueue_s);
    }
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->queue.push_back(std::move(job));
  }
  shard->cv.notify_one();
  return false;
}

void QueryEngine::WorkerLoop(Shard* shard, int shard_index) {
  obs::prof::RegisterCurrentThread("qe.shard." + std::to_string(shard_index));
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock,
                     [shard] { return shard->stop || !shard->queue.empty(); });
      if (shard->queue.empty()) {
        if (shard->stop) return;
        continue;
      }
      job = std::move(shard->queue.front());
      shard->queue.pop_front();
    }
    if (const auto fire = fault::Hit("service.shard.latency")) {
      fault::SleepForMs(fire->latency_ms);
    }
    // Pin this shard's serving state once per job: a concurrent swap cannot
    // invalidate it, and every answer in a batch slice comes from one
    // generation.
    const std::shared_ptr<const BundleManager::ServingState> state =
        shard->manager->state();
    // The request's trace context lives for the whole shard-side handling:
    // spans recorded below and any structured log line carry the id from
    // the request's X-Request-Id header.
    const obs::TraceScope trace_scope(
        job.batch ? job.batch->trace_id : job.trace_id);
    if (job.batch) {
      EngineMetrics::Get().hits_total->Add(
          static_cast<int64_t>(job.indices.size()));
      shard->hits->Add(static_cast<int64_t>(job.indices.size()));
      for (const size_t index : job.indices) {
        const int64_t id = job.batch->ids[index];
        job.batch->parts[index] = FormatAnswerJson(
            id, state->service->Query(id), shard_index, /*shed=*/false);
      }
      job.batch->FinishIfLast();
    } else {
      EngineMetrics::Get().hits_total->Add(1);
      shard->hits->Add(1);
      const std::string body = FormatAnswerJson(
          job.address_id, state->service->Query(job.address_id), shard_index,
          /*shed=*/false);
      EngineMetrics::Get().latency->Observe(NowSeconds() - job.enqueue_s);
      job.handle.RespondWithHeaders(200, "application/json", body,
                                    {{"X-Request-Id", job.request_id}});
    }
  }
}

void QueryEngine::HandleQuery(const HttpRequest& request,
                              HttpServer::ResponseHandle handle) {
  std::string raw;
  if (!request.QueryParam("address_id", &raw) || raw.empty()) {
    handle.Respond(400, "text/plain", "missing address_id parameter\n");
    return;
  }
  char* end = nullptr;
  const int64_t id = std::strtoll(raw.c_str(), &end, 10);
  if (end != raw.c_str() + raw.size()) {
    handle.Respond(400, "text/plain", "malformed address_id\n");
    return;
  }
  if (id < 0 || id >= address_count_.load(std::memory_order_acquire)) {
    EngineMetrics::Get().rejected->Add(1);
    handle.Respond(404, "application/json",
                   "{\"error\":\"unknown address_id\"}");
    return;
  }
  Job job;
  job.address_id = id;
  job.handle = handle;
  job.enqueue_s = NowSeconds();
  job.request_id = ExtractRequestId(request, &job.trace_id);
  AdmitOrShed(router_.ShardOf(id), std::move(job));
}

void QueryEngine::HandleQueryBatch(const HttpRequest& request,
                                   HttpServer::ResponseHandle handle) {
  if (request.method != "POST") {
    handle.Respond(405, "text/plain", "POST required\n");
    return;
  }
  std::vector<int64_t> ids;
  if (!ParseBatchBody(request.body, &ids)) {
    handle.Respond(400, "text/plain",
                   "body must be {\"address_ids\":[...]}\n");
    return;
  }
  const int64_t count = address_count_.load(std::memory_order_acquire);
  for (const int64_t id : ids) {
    if (id < 0 || id >= count) {
      EngineMetrics::Get().rejected->Add(1);
      handle.Respond(404, "application/json",
                     "{\"error\":\"unknown address_id\"}");
      return;
    }
  }
  EngineMetrics::Get().batch_requests->Add(1);
  if (ids.empty()) {
    handle.Respond(200, "application/json", "{\"answers\":[]}");
    return;
  }
  auto batch = std::make_shared<BatchState>();
  batch->ids = std::move(ids);
  batch->parts.resize(batch->ids.size());
  batch->handle = handle;
  batch->start_s = NowSeconds();
  batch->request_id = ExtractRequestId(request, &batch->trace_id);

  // Slice by shard; `remaining` must be final before any slice can finish.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < batch->ids.size(); ++i) {
    by_shard[static_cast<size_t>(router_.ShardOf(batch->ids[i]))].push_back(
        i);
  }
  int slices = 0;
  for (const auto& indices : by_shard) {
    if (!indices.empty()) ++slices;
  }
  batch->remaining.store(slices, std::memory_order_release);
  for (size_t shard = 0; shard < by_shard.size(); ++shard) {
    if (by_shard[shard].empty()) continue;
    Job job;
    job.batch = batch;
    job.indices = std::move(by_shard[shard]);
    job.enqueue_s = batch->start_s;
    AdmitOrShed(static_cast<int>(shard), std::move(job));
  }
}

void QueryEngine::Handle(const HttpRequest& request,
                         HttpServer::ResponseHandle handle) {
  if (request.path == "/query") {
    HandleQuery(request, std::move(handle));
  } else if (request.path == "/query_batch") {
    HandleQueryBatch(request, std::move(handle));
  } else if (request.path == "/metrics") {
    handle.Respond(200, "text/plain; version=0.0.4",
                   obs::MetricsRegistry::Global().SnapshotPrometheus());
  } else if (request.path == "/healthz") {
    const std::string body = HealthzJson();
    handle.Respond(AnyShardDegraded() ? 503 : 200, "application/json",
                   body);
  } else if (request.path == "/varz") {
    handle.Respond(200, "text/plain",
                   obs::MetricsRegistry::Global().SnapshotText());
  } else if (request.path == "/profilez") {
    HandleProfilezRequest(request, std::move(handle));
  } else if (request.path == "/inventory") {
    handle.Respond(
        200, "application/json",
        "{\"count\":" +
            std::to_string(
                address_count_.load(std::memory_order_acquire)) +
            ",\"shards\":" + std::to_string(num_shards()) + "}");
  } else {
    handle.Respond(404, "text/plain", "not found\n");
  }
}

}  // namespace apps
}  // namespace dlinf
