#ifndef DLINF_APPS_QUERY_ENGINE_H_
#define DLINF_APPS_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/bundle_manager.h"
#include "apps/http_conn.h"
#include "apps/location_service.h"
#include "apps/shard_router.h"
#include "obs/metrics.h"

/// \file
/// The sharded high-QPS query front end (DESIGN.md §11).
///
/// One epoll event loop (`HttpServer`) accepts keep-alive/pipelined HTTP and
/// routes `/query` + `/query_batch` by consistent hash (`ShardRouter`) to N
/// shard worker threads. Each shard owns its own `BundleManager` over the
/// same bundle directory, so hot-reload (stage → validate → swap/rollback)
/// happens per shard without ever blocking another shard's queries.
///
/// **Request correlation**: `/query` and `/query_batch` accept an
/// `X-Request-Id` header (any string; numeric values are adopted as the
/// trace id directly, other strings are hashed, and a fresh splitmix64 id
/// is generated when the header is absent). The id is echoed back in the
/// response's `X-Request-Id` header and installed as the worker's
/// `TraceScope`, so a slow request joins across /tracez spans, structured
/// log `trace_id` fields and a captured CPU profile.
///
/// **Shedding contract**: admission control runs on the loop thread. When a
/// shard's queue is at capacity (or the `service.shard.overload` fault point
/// fires), the request is *not* dropped and the connection is *not* closed —
/// the loop thread answers inline with the geocode-tier degraded answer, the
/// same lowest tier `DegradePolicy` falls back to when upper tiers fail.
/// Every query is always answered; shedding only changes which tier answers
/// and is visible in `"shed": true` and the `service.shard.shed` counters.
///
/// Telemetry endpoints (/metrics, /healthz, /varz) are served from the same
/// event loop, so a stalled or slow client can never delay a health scrape
/// (the slow-loris fix; see tests/query_engine_test.cc).

namespace dlinf {
namespace apps {

/// Sharded query engine: event loop + N shard workers + per-shard reload.
class QueryEngine {
 public:
  struct Options {
    std::string bundle_dir;
    int num_shards = 4;
    int port = 0;  ///< 0 picks an ephemeral port.
    /// Admission bound: queries queued per shard beyond which new arrivals
    /// are shed to the inline degraded tier.
    int max_queue_per_shard = 512;
    double idle_timeout_s = 30.0;
    /// Per-shard BundleManager tuning (`dir` is overridden by bundle_dir).
    BundleManager::Config bundle;
  };

  /// Aggregate outcome of one reload pass across every shard.
  struct ReloadSummary {
    int swapped = 0;
    int rolled_back = 0;
    int unchanged = 0;
  };

  /// Boots one BundleManager per shard from `options.bundle_dir`, builds
  /// the shard ring, binds the port and starts serving. nullptr (reason in
  /// `error`) when the bundle fails to load or the socket setup fails.
  static std::unique_ptr<QueryEngine> Create(const Options& options,
                                             std::string* error = nullptr);

  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Stops accepting, drains the shard queues, joins every thread.
  void Stop();

  int port() const { return server_.port(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardRouter& router() const { return router_; }

  /// Runs BundleManager::Poll on every shard (control thread only).
  ReloadSummary PollShards(std::string* error = nullptr);

  /// Runs BundleManager::ReloadNow on every shard (control thread only).
  ReloadSummary ReloadShardsNow(std::string* error = nullptr);

  /// True while any shard serves an older generation than the last push
  /// (i.e. at least one shard rolled back and hasn't recovered).
  bool AnyShardDegraded() const;

  /// Shard `i`'s reload manager (tests and the serve loop).
  BundleManager* shard_manager(int shard) {
    return shards_[static_cast<size_t>(shard)]->manager.get();
  }

  /// The exact JSON body `/query` serves for `address_id` answered by
  /// `shard`. Exposed so tests can derive the expected bytes from a direct
  /// `DeliveryLocationService::Query` answer and assert bit-identical
  /// engine output (doubles are %.17g — lossless round-trip).
  static std::string FormatAnswerJson(
      int64_t address_id, const DeliveryLocationService::Answer& answer,
      int shard, bool shed);

 private:
  /// One enqueued unit of work: either a single /query or one shard's slice
  /// of a /query_batch.
  struct BatchState;
  struct Job {
    int64_t address_id = -1;
    HttpServer::ResponseHandle handle;  ///< Single-query only.
    double enqueue_s = 0.0;
    uint64_t trace_id = 0;       ///< From X-Request-Id (or generated).
    std::string request_id;      ///< Echoed back verbatim in X-Request-Id.
    std::shared_ptr<BatchState> batch;  ///< Batch slice only.
    std::vector<size_t> indices;        ///< Batch positions for this shard.
  };

  struct Shard {
    std::unique_ptr<BundleManager> manager;
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
    bool stop = false;
    obs::Counter* hits = nullptr;  ///< service.shard.hits#shard=i
    obs::Counter* shed = nullptr;  ///< service.shard.shed#shard=i
  };

  QueryEngine() = default;

  void Handle(const HttpRequest& request, HttpServer::ResponseHandle handle);
  void HandleQuery(const HttpRequest& request,
                   HttpServer::ResponseHandle handle);
  void HandleQueryBatch(const HttpRequest& request,
                        HttpServer::ResponseHandle handle);
  void WorkerLoop(Shard* shard, int shard_index);

  /// The inline geocode-tier degraded answer used when shedding.
  DeliveryLocationService::Answer ShedAnswer(const Shard& shard,
                                             int64_t address_id) const;

  /// True when the request was shed (handled inline); false when enqueued.
  bool AdmitOrShed(int shard_index, Job job);

  std::string HealthzJson() const;

  Options options_;
  ShardRouter router_{1};
  std::vector<std::unique_ptr<Shard>> shards_;
  HttpServer server_;
  std::atomic<int64_t> address_count_{0};  ///< Bounds check on admission.
  std::atomic<bool> stopped_{false};
};

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_QUERY_ENGINE_H_
