#include "apps/route_planner.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dlinf {
namespace apps {

std::vector<int> NearestNeighborRoute(const Point& start,
                                      const std::vector<Point>& stops) {
  std::vector<int> order;
  std::vector<bool> used(stops.size(), false);
  Point cur = start;
  for (size_t step = 0; step < stops.size(); ++step) {
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < stops.size(); ++i) {
      if (used[i]) continue;
      const double d = Distance(cur, stops[i]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    used[best] = true;
    order.push_back(best);
    cur = stops[best];
  }
  return order;
}

double RouteLength(const Point& start, const std::vector<Point>& stops,
                   const std::vector<int>& order) {
  CHECK_EQ(order.size(), stops.size());
  double length = 0.0;
  Point cur = start;
  for (int index : order) {
    length += Distance(cur, stops[index]);
    cur = stops[index];
  }
  return length;
}

std::vector<int> TwoOptImprove(const Point& start,
                               const std::vector<Point>& stops,
                               std::vector<int> order, int max_rounds) {
  if (order.size() < 3) return order;
  auto at = [&](int pos) -> const Point& {
    return pos < 0 ? start : stops[order[pos]];
  };
  const int n = static_cast<int>(order.size());
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < n - 1; ++i) {
      for (int j = i + 1; j < n; ++j) {
        // Reversing order[i..j] replaces edges (i-1,i) and (j,j+1).
        const double before = Distance(at(i - 1), at(i)) +
                              (j + 1 < n ? Distance(at(j), at(j + 1)) : 0.0);
        const double after = Distance(at(i - 1), at(j)) +
                             (j + 1 < n ? Distance(at(i), at(j + 1)) : 0.0);
        if (after + 1e-9 < before) {
          std::reverse(order.begin() + i, order.begin() + j + 1);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return order;
}

std::vector<int> PlanRoute(const Point& start,
                           const std::vector<Point>& stops) {
  return TwoOptImprove(start, stops, NearestNeighborRoute(start, stops));
}

double ActualRouteCost(const Point& start,
                       const std::vector<Point>& believed_stops,
                       const std::vector<Point>& true_stops) {
  CHECK_EQ(believed_stops.size(), true_stops.size());
  const std::vector<int> order = PlanRoute(start, believed_stops);
  return RouteLength(start, true_stops, order);
}

}  // namespace apps
}  // namespace dlinf
