#ifndef DLINF_APPS_ROUTE_PLANNER_H_
#define DLINF_APPS_ROUTE_PLANNER_H_

#include <vector>

#include "geo/point.h"

namespace dlinf {
namespace apps {

/// Route planning for couriers (Section VI-B): TSP [1] over the believed
/// delivery locations, previously run on Geocoded locations and, after
/// DLInfMA's deployment, on inferred delivery locations.

/// Greedy nearest-neighbour visiting order of `stops`, starting from `start`
/// (the order does not include the start itself).
std::vector<int> NearestNeighborRoute(const Point& start,
                                      const std::vector<Point>& stops);

/// 2-opt improvement of a visiting order (tour is open: start -> stops in
/// order, no return leg). Returns the improved order.
std::vector<int> TwoOptImprove(const Point& start,
                               const std::vector<Point>& stops,
                               std::vector<int> order,
                               int max_rounds = 20);

/// Plans a route with nearest-neighbour + 2-opt.
std::vector<int> PlanRoute(const Point& start, const std::vector<Point>& stops);

/// Length of the open tour start -> stops[order[0]] -> ... -> last.
double RouteLength(const Point& start, const std::vector<Point>& stops,
                   const std::vector<int>& order);

/// The deployment's quality measure: a route is planned on *believed*
/// locations, but the courier physically walks to the *true* ones; returns
/// the actual walking distance of the planned order over the true stops.
double ActualRouteCost(const Point& start,
                       const std::vector<Point>& believed_stops,
                       const std::vector<Point>& true_stops);

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_ROUTE_PLANNER_H_
