#include "apps/shard_router.h"

#include <algorithm>

#include "common/check.h"

namespace dlinf {
namespace apps {

uint64_t ShardRouter::Mix(uint64_t x) {
  // splitmix64 finalizer — full-avalanche, stateless, endian-free.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ShardRouter::ShardRouter(int num_shards, int vnodes_per_shard)
    : num_shards_(num_shards) {
  CHECK(num_shards >= 1);
  CHECK(vnodes_per_shard >= 1);
  ring_.reserve(static_cast<size_t>(num_shards) * vnodes_per_shard);
  for (int shard = 0; shard < num_shards; ++shard) {
    for (int vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      // Each virtual node's ring position derives from (shard, vnode) only,
      // so shard s occupies identical positions whether the ring holds N or
      // N+1 shards — the consistency property.
      const uint64_t id = (static_cast<uint64_t>(shard) << 32) |
                          static_cast<uint64_t>(vnode);
      ring_.push_back({Mix(id), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardRouter::ShardOf(int64_t key) const {
  const uint64_t position = Mix(static_cast<uint64_t>(key));
  // First ring point at or after the key's position, wrapping past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), Point{position, -1});
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

}  // namespace apps
}  // namespace dlinf
