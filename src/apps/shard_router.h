#ifndef DLINF_APPS_SHARD_ROUTER_H_
#define DLINF_APPS_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

/// \file
/// Consistent-hash sharding of the address keyspace (DESIGN.md §11).
///
/// The query engine partitions addresses across N shard workers. The map
/// must be (a) a pure function of (key, num_shards) — the same address hits
/// the same shard across process restarts, so per-shard caches and reload
/// generations stay meaningful — and (b) stable under resharding: growing
/// from N to N+1 shards moves only ~1/(N+1) of the keyspace, not all of it.
/// A hash ring with virtual nodes gives both; plain `hash % N` gives
/// neither (b) nor balanced load under adversarial key sets.

namespace dlinf {
namespace apps {

/// Immutable consistent-hash ring. Cheap to build (num_shards × vnodes
/// points, sorted once), O(log points) per lookup, no allocation on the
/// query path.
class ShardRouter {
 public:
  /// `vnodes_per_shard` smooths the ring: with 64 virtual nodes per shard
  /// the max/min shard-load ratio on a uniform keyspace stays within a few
  /// percent.
  explicit ShardRouter(int num_shards, int vnodes_per_shard = 64);

  /// Shard index in [0, num_shards) owning `key`. Deterministic: depends
  /// only on (key, num_shards, vnodes_per_shard).
  int ShardOf(int64_t key) const;

  int num_shards() const { return num_shards_; }

  /// The stateless 64-bit mixer the ring and key placement share
  /// (splitmix64). Exposed so tests can recompute placements independently.
  static uint64_t Mix(uint64_t x);

 private:
  struct Point {
    uint64_t position;
    int shard;
    bool operator<(const Point& other) const {
      return position < other.position ||
             (position == other.position && shard < other.shard);
    }
  };

  int num_shards_;
  std::vector<Point> ring_;  ///< Sorted by position.
};

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_SHARD_ROUTER_H_
