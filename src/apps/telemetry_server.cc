#include "apps/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/bundle_manager.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace apps {

namespace {

/// Caps a request read: a telemetry GET line fits in far less, and bounding
/// the read keeps a garbage client from holding the accept thread.
constexpr size_t kMaxRequestBytes = 4096;

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, int status, const std::string& content_type,
                   const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 503 ? "Service Unavailable"
                                       : "Error";
  char header[256];
  const int n = std::snprintf(
      header, sizeof(header),
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status, reason, content_type.c_str(), body.size());
  if (!SendAll(fd, header, static_cast<size_t>(n))) return;
  SendAll(fd, body.data(), body.size());
}

/// First line of "GET <path> HTTP/1.x" -> path ("" on anything malformed).
std::string ParseRequestPath(const std::string& request) {
  if (request.compare(0, 4, "GET ") != 0) return "";
  const size_t end = request.find(' ', 4);
  if (end == std::string::npos) return "";
  std::string path = request.substr(4, end - 4);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('?');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

TelemetryServer::~TelemetryServer() { Stop(); }

bool TelemetryServer::Start(const Options& options, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "telemetry server already running";
    return false;
  }
  options_ = options;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + strerror(errno);
    }
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&TelemetryServer::Serve, this);
  return true;
}

void TelemetryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept() in the serve thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TelemetryServer::Serve() {
  obs::Counter* requests =
      obs::MetricsRegistry::Global().GetCounter("telemetry.http.requests");
  while (running()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (Stop) or unrecoverable.
    }
    // A stalled client may not hold the endpoint hostage.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    std::string request;
    char buffer[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n") == std::string::npos) {
      const ssize_t n = ::recv(client, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      request.append(buffer, static_cast<size_t>(n));
    }

    const std::string path = ParseRequestPath(request);
    requests->Add(1);
    if (path == "/metrics") {
      WriteResponse(client, 200, "text/plain; version=0.0.4",
                    obs::MetricsRegistry::Global().SnapshotPrometheus());
    } else if (path == "/healthz") {
      HealthStatus health;
      if (options_.health) health = options_.health();
      std::string body = "{\"status\":\"";
      body += health.ok ? "ok" : "degraded";
      body += "\",\"generation\":" + std::to_string(health.generation);
      if (!health.detail.empty()) {
        body += ",\"detail\":\"" + JsonEscape(health.detail) + "\"";
      }
      body += "}\n";
      WriteResponse(client, health.ok ? 200 : 503, "application/json", body);
    } else if (path == "/varz") {
      WriteResponse(client, 200, "application/json",
                    obs::MetricsRegistry::Global().SnapshotJson());
    } else if (path == "/tracez") {
      WriteResponse(client, 200, "application/json",
                    obs::TraceLog::Global().ExportChromeJson());
    } else {
      WriteResponse(client, 404, "text/plain", "not found\n");
    }
    ::close(client);
  }
}

std::function<HealthStatus()> BundleManagerHealth(
    const BundleManager* manager) {
  return [manager] {
    HealthStatus health;
    health.generation = manager->generation();
    if (manager->reload_degraded()) {
      health.ok = false;
      health.detail = "last bundle push rolled back; serving generation " +
                      std::to_string(health.generation);
    }
    return health;
  };
}

bool HttpGet(int port, const std::string& path, int* status,
             std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 <status> ..." then headers, blank line, body.
  if (response.compare(0, 5, "HTTP/") != 0) return false;
  const size_t space = response.find(' ');
  if (space == std::string::npos || space + 4 > response.size()) return false;
  if (status != nullptr) {
    *status = std::atoi(response.c_str() + space + 1);
  }
  if (body != nullptr) {
    const size_t blank = response.find("\r\n\r\n");
    *body = blank == std::string::npos ? "" : response.substr(blank + 4);
  }
  return true;
}

}  // namespace apps
}  // namespace dlinf
