#include "apps/telemetry_server.h"

#include <utility>

#include <cstdlib>

#include "apps/bundle_manager.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace apps {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('?');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void HandleProfilezRequest(const HttpRequest& request,
                           HttpServer::ResponseHandle handle) {
  double seconds = 2.0;
  int hz = 99;
  bool chrome = false;
  std::string value;
  if (request.QueryParam("seconds", &value) && !value.empty()) {
    seconds = std::strtod(value.c_str(), nullptr);
  }
  if (request.QueryParam("hz", &value) && !value.empty()) {
    hz = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
  }
  if (request.QueryParam("format", &value)) chrome = value == "chrome";
  // The capture runs on its own thread and answers through the handle when
  // it finishes — the event loop keeps serving /metrics etc. meanwhile.
  const bool started = obs::prof::CaptureManager::Global().Begin(
      seconds, hz, chrome,
      [handle](int status, const std::string& content_type,
               const std::string& body) {
        handle.Respond(status, content_type, body);
      });
  if (!started) {
    handle.Respond(409, "text/plain",
                   "a profile capture is already running\n");
  }
}

TelemetryServer::~TelemetryServer() { Stop(); }

bool TelemetryServer::Start(const Options& options, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "telemetry server already running";
    return false;
  }
  options_ = options;

  HttpServer::Options server_options;
  server_options.port = options.port;
  server_options.idle_timeout_s = options.idle_timeout_s;
  server_options.thread_name = "telemetry.loop";
  obs::Counter* requests =
      obs::MetricsRegistry::Global().GetCounter("telemetry.http.requests");
  // The handler runs on the loop thread; every endpoint is a fast snapshot
  // call, so it answers inline.
  auto handler = [this, requests](const HttpRequest& request,
                                  HttpServer::ResponseHandle handle) {
    requests->Add(1);
    if (request.path == "/metrics") {
      handle.Respond(200, "text/plain; version=0.0.4",
                     obs::MetricsRegistry::Global().SnapshotPrometheus());
    } else if (request.path == "/healthz") {
      HealthStatus health;
      if (options_.health) health = options_.health();
      std::string body = "{\"status\":\"";
      body += health.ok ? "ok" : "degraded";
      body += "\",\"generation\":" + std::to_string(health.generation);
      if (!health.detail.empty()) {
        body += ",\"detail\":\"" + JsonEscape(health.detail) + "\"";
      }
      body += "}\n";
      handle.Respond(health.ok ? 200 : 503, "application/json", body);
    } else if (request.path == "/varz") {
      handle.Respond(200, "application/json",
                     obs::MetricsRegistry::Global().SnapshotJson());
    } else if (request.path == "/tracez") {
      handle.Respond(200, "application/json",
                     obs::TraceLog::Global().ExportChromeJson());
    } else if (request.path == "/profilez") {
      HandleProfilezRequest(request, std::move(handle));
    } else {
      handle.Respond(404, "text/plain", "not found\n");
    }
  };
  return server_.Start(server_options, std::move(handler), error);
}

void TelemetryServer::Stop() {
  // Any in-flight /profilez capture answers through this server's event
  // loop; reel it in before the loop goes away.
  if (running()) obs::prof::CaptureManager::Global().CancelAndJoin();
  server_.Stop();
}

std::function<HealthStatus()> BundleManagerHealth(
    const BundleManager* manager) {
  return [manager] {
    HealthStatus health;
    health.generation = manager->generation();
    if (manager->reload_degraded()) {
      health.ok = false;
      health.detail = "last bundle push rolled back; serving generation " +
                      std::to_string(health.generation);
    }
    return health;
  };
}

bool HttpGet(int port, const std::string& path, int* status,
             std::string* body) {
  return HttpGetOnce(port, path, status, body);
}

}  // namespace apps
}  // namespace dlinf
