#ifndef DLINF_APPS_TELEMETRY_SERVER_H_
#define DLINF_APPS_TELEMETRY_SERVER_H_

#include <functional>
#include <string>

#include "apps/http_conn.h"

/// \file
/// Embedded telemetry endpoint (DESIGN.md §10).
///
/// A thin endpoint set over the shared non-blocking `HttpServer` event loop
/// (http_conn.h), started by `dlinf_cli serve --telemetry-port`. Endpoints:
///
///   GET /metrics  Prometheus text exposition (format 0.0.4) of the global
///                 MetricsRegistry: counters, gauges, histograms with
///                 cumulative `_bucket{le=...}` series plus `_sum`/`_count`,
///                 and span aggregates as labeled series.
///   GET /healthz  200 {"status":"ok",...} while serving healthily;
///                 503 {"status":"degraded",...} while the health provider
///                 reports degradation (e.g. BundleManager after a rollback,
///                 until the next clean swap). Body carries the live bundle
///                 generation for both.
///   GET /varz     MetricsRegistry::SnapshotJson() (the same JSON the
///                 --metrics flag dumps).
///   GET /tracez   TraceLog::ExportChromeJson() — recent sampled trace
///                 events, loadable in Perfetto / chrome://tracing.
///   GET /profilez On-demand CPU-profile capture (DESIGN.md §15):
///                 `?seconds=N&hz=H` arms the sampling profiler, captures
///                 for N seconds (default 2, 99 Hz) on a dedicated thread —
///                 the event loop keeps answering other scrapes meanwhile —
///                 and returns collapsed-stack text ready for
///                 flamegraph.pl. `&format=chrome` returns the samples
///                 merged with the TraceLog spans as one Chrome-trace
///                 timeline. 409 while another capture is running.
///
/// Anything else is 404. Historically this was a sequential-accept loop,
/// which let one slow client delay every other scrape — a stalled reader
/// holding the socket blocked /healthz until its receive timeout. The
/// endpoints now run on the epoll event loop: a half-sent request or an
/// unread response parks on its own connection while other scrapes are
/// answered immediately, and the loop's idle sweep evicts slow-loris
/// connections (see the regression test in telemetry_server_test.cc).
///
/// All handlers read telemetry state through the same thread-safe snapshot
/// calls tests use; the server adds no mutable state of its own beyond the
/// `telemetry.http.requests` counter.

namespace dlinf {
namespace apps {

class BundleManager;

/// Health snapshot rendered by /healthz.
struct HealthStatus {
  bool ok = true;
  uint64_t generation = 0;
  std::string detail;  ///< Short human-readable reason when !ok.
};

class TelemetryServer {
 public:
  struct Options {
    /// TCP port to listen on (loopback only). 0 picks an ephemeral port —
    /// the bound port is available from `port()` after Start.
    int port = 0;

    /// Called per /healthz request. Default: always ok, generation 0.
    std::function<HealthStatus()> health;

    /// Connections with no progress for this long are evicted (the
    /// slow-loris guard of the underlying event loop).
    double idle_timeout_s = 10.0;
  };

  TelemetryServer() = default;
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`options.port`, starts the event loop. False (with
  /// the reason in `error`) when the bind/listen fails, e.g. port in use.
  bool Start(const Options& options, std::string* error = nullptr);

  /// Stops the event loop and joins it. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start).
  int port() const { return server_.port(); }

  bool running() const { return server_.running(); }

 private:
  Options options_;
  HttpServer server_;
};

/// Shared /profilez endpoint logic (used by the telemetry server and the
/// query engine): parses `seconds`/`hz`/`format` query parameters, starts
/// an asynchronous capture through obs::prof::CaptureManager and answers
/// via `handle` when it completes (409 inline when a capture is already
/// running).
void HandleProfilezRequest(const HttpRequest& request,
                           HttpServer::ResponseHandle handle);

/// Health provider wired to a BundleManager: not-ok while
/// `reload_degraded()` (a push was rolled back and the service runs on the
/// previous generation). `manager` must outlive the server.
std::function<HealthStatus()> BundleManagerHealth(const BundleManager* manager);

/// Minimal blocking one-shot GET against 127.0.0.1:`port` (test/tool
/// helper; also used by the chaos healthz scenario). Returns false on
/// connect/transport failure; otherwise fills `*status` and `*body`.
bool HttpGet(int port, const std::string& path, int* status,
             std::string* body);

}  // namespace apps
}  // namespace dlinf

#endif  // DLINF_APPS_TELEMETRY_SERVER_H_
