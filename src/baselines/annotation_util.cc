#include "baselines/annotation_util.h"

namespace dlinf {
namespace baselines {

std::unordered_map<int64_t, std::vector<Point>> ComputeAnnotatedLocations(
    const sim::World& world) {
  std::unordered_map<int64_t, std::vector<Point>> annotations;
  for (const sim::DeliveryTrip& trip : world.trips) {
    if (trip.trajectory.empty()) continue;
    for (const sim::Waybill& waybill : trip.waybills) {
      annotations[waybill.address_id].push_back(
          trip.trajectory.PositionAt(waybill.recorded_delivery_time));
    }
  }
  return annotations;
}

}  // namespace baselines
}  // namespace dlinf
