#ifndef DLINF_BASELINES_ANNOTATION_UTIL_H_
#define DLINF_BASELINES_ANNOTATION_UTIL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.h"
#include "sim/world.h"

namespace dlinf {
namespace baselines {

/// Annotated locations of every delivered address: the courier's position at
/// each waybill's *recorded* delivery time, read off the trip trajectory.
///
/// This is exactly the signal the annotation-based prior work ([5], [6],
/// [19], [20]) consumes; when confirmations are delayed, these annotations
/// drift away from the true delivery location — the failure mode DLInfMA is
/// designed around. The paper notes these can "be easily generated based on
/// the trajectory data" (Section V-B).
std::unordered_map<int64_t, std::vector<Point>> ComputeAnnotatedLocations(
    const sim::World& world);

}  // namespace baselines
}  // namespace dlinf

#endif  // DLINF_BASELINES_ANNOTATION_UTIL_H_
