#include "baselines/evaluation.h"

#include <cstdio>

#include "common/check.h"
#include "common/stopwatch.h"

namespace dlinf {
namespace baselines {

MethodResult RunMethod(dlinfma::Inferrer* method, const dlinfma::Dataset& data,
                       const dlinfma::SampleSet& samples) {
  CHECK(method != nullptr);
  MethodResult result;
  result.method = method->name();

  Stopwatch fit_watch;
  method->Fit(data, samples);
  result.fit_seconds = fit_watch.ElapsedSeconds();

  Stopwatch infer_watch;
  const std::vector<Point> predictions = method->InferAll(data, samples.test);
  result.infer_seconds = infer_watch.ElapsedSeconds();

  const std::vector<Point> truth = GroundTruthOf(*data.world, samples.test);
  result.metrics = dlinfma::ComputeMetrics(predictions, truth);
  return result;
}

void PrintResultsTable(const std::string& title,
                       const std::vector<MethodResult>& results) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-18s %10s %10s %10s %9s %9s\n", "method", "MAE(m)", "P95(m)",
              "beta50(%)", "fit(s)", "infer(s)");
  for (const MethodResult& r : results) {
    std::printf("%-18s %10.1f %10.1f %10.1f %9.2f %9.3f\n", r.method.c_str(),
                r.metrics.mae_m, r.metrics.p95_m, r.metrics.beta50_pct,
                r.fit_seconds, r.infer_seconds);
  }
  std::fflush(stdout);
}

}  // namespace baselines
}  // namespace dlinf
