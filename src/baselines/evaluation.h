#ifndef DLINF_BASELINES_EVALUATION_H_
#define DLINF_BASELINES_EVALUATION_H_

#include <string>
#include <vector>

#include "dlinfma/inferrer.h"
#include "dlinfma/metrics.h"

namespace dlinf {
namespace baselines {

/// One method's evaluation outcome: the paper's three metrics plus timings
/// (used by the Table II / III rows and the Section V-F discussion).
struct MethodResult {
  std::string method;
  dlinfma::EvalMetrics metrics;
  double fit_seconds = 0.0;
  double infer_seconds = 0.0;
};

/// Fits a method on the train/val samples and evaluates on the test samples
/// against ground truth.
MethodResult RunMethod(dlinfma::Inferrer* method, const dlinfma::Dataset& data,
                       const dlinfma::SampleSet& samples);

/// Prints an aligned metrics table to stdout (bench output format).
void PrintResultsTable(const std::string& title,
                       const std::vector<MethodResult>& results);

}  // namespace baselines
}  // namespace dlinf

#endif  // DLINF_BASELINES_EVALUATION_H_
