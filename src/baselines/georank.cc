#include "baselines/georank.h"

#include <cmath>
#include <limits>

#include "baselines/annotation_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "ml/pairwise.h"

namespace dlinf {
namespace baselines {

GeoRankBaseline::GeoRankBaseline() : GeoRankBaseline(Options()) {}

GeoRankBaseline::GeoRankBaseline(const Options& options) : options_(options) {}

ml::FeatureRow GeoRankBaseline::AnnotationFeatures(
    const std::vector<Point>& group, int index, const Point& geocode) {
  const Point& self = group[index];
  double sum_dist = 0.0;
  int near = 0;
  for (size_t j = 0; j < group.size(); ++j) {
    if (static_cast<int>(j) == index) continue;
    const double d = Distance(self, group[j]);
    sum_dist += d;
    if (d <= 30.0) ++near;
  }
  const double siblings = static_cast<double>(group.size()) - 1.0;
  return ml::FeatureRow{
      Distance(self, geocode) / 100.0,
      siblings > 0 ? sum_dist / siblings / 100.0 : 0.0,
      siblings > 0 ? static_cast<double>(near) / siblings : 0.0,
      std::log1p(static_cast<double>(group.size()))};
}

void GeoRankBaseline::Fit(const dlinfma::Dataset& data,
                          const dlinfma::SampleSet& samples) {
  Stopwatch watch;
  annotations_ = ComputeAnnotatedLocations(*data.world);

  // One ranking group per training address: annotated locations as rows,
  // the annotation nearest the ground truth as the positive.
  std::vector<ml::RankingGroup> groups;
  for (const dlinfma::AddressSample& sample : samples.train) {
    auto it = annotations_.find(sample.address_id);
    if (it == annotations_.end() || it->second.size() < 2) continue;
    const sim::Address& addr = data.world->address(sample.address_id);
    ml::RankingGroup group;
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < it->second.size(); ++i) {
      group.rows.push_back(AnnotationFeatures(it->second, static_cast<int>(i),
                                              addr.geocoded_location));
      const double d = Distance(it->second[i], addr.true_delivery_location);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    group.positive_index = best;
    groups.push_back(std::move(group));
  }
  CHECK(!groups.empty()) << "GeoRank found no trainable addresses";

  Rng rng(options_.seed);
  std::vector<ml::FeatureRow> x;
  std::vector<double> y;
  ml::MakePairwiseTrainingSet(groups, options_.max_pairs_per_group, &rng, &x,
                              &y);

  ml::DecisionTree::Options tree_options;
  tree_options.task = ml::DecisionTree::Task::kClassification;
  tree_options.max_depth = options_.max_depth;
  tree_options.max_leaves = options_.max_leaves;
  ranker_.Fit(x, y, /*w=*/{}, tree_options);
  fit_seconds_ = watch.ElapsedSeconds();
}

std::vector<Point> GeoRankBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  CHECK(ranker_.trained()) << "Fit must run before InferAll";
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    auto it = annotations_.find(sample.address_id);
    const sim::Address& addr = data.world->address(sample.address_id);
    if (it == annotations_.end() || it->second.empty()) {
      out.push_back(addr.geocoded_location);
      continue;
    }
    const std::vector<Point>& group = it->second;
    if (group.size() == 1) {
      out.push_back(group[0]);
      continue;
    }
    std::vector<ml::FeatureRow> rows;
    for (size_t i = 0; i < group.size(); ++i) {
      rows.push_back(AnnotationFeatures(group, static_cast<int>(i),
                                        addr.geocoded_location));
    }
    const int winner = ml::PairwiseVoteSelect(
        rows, [this](const ml::FeatureRow& diff) {
          return ranker_.Predict(diff);
        });
    out.push_back(group[winner]);
  }
  return out;
}

}  // namespace baselines
}  // namespace dlinf
