#ifndef DLINF_BASELINES_GEORANK_H_
#define DLINF_BASELINES_GEORANK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "dlinfma/inferrer.h"
#include "ml/decision_tree.h"

namespace dlinf {
namespace baselines {

/// GeoRank [6]: annotation-based supervised ranking.
///
/// Every annotated location of an address is a delivery-location candidate;
/// a pairwise ranking model with a decision-tree base learner (1024 leaves
/// max, per the paper's training details) is trained on feature differences
/// of (positive, negative) candidate pairs; at inference the candidate that
/// wins the most pairwise comparisons is selected.
class GeoRankBaseline : public dlinfma::Inferrer {
 public:
  struct Options {
    int max_leaves = 1024;
    int max_depth = 16;
    /// Caps pairs per address to bound the quadratic pair blowup.
    int max_pairs_per_group = 30;
    uint64_t seed = 11;
  };

  GeoRankBaseline();
  explicit GeoRankBaseline(const Options& options);

  std::string name() const override { return "GeoRank"; }

  void Fit(const dlinfma::Dataset& data,
           const dlinfma::SampleSet& samples) override;

  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;

  double fit_seconds() const { return fit_seconds_; }

 private:
  /// Feature row of one annotated location within its address group:
  /// [dist to geocode / 100 m, mean dist to sibling annotations / 100 m,
  ///  fraction of sibling annotations within 30 m, log(1 + #annotations)].
  static ml::FeatureRow AnnotationFeatures(const std::vector<Point>& group,
                                           int index, const Point& geocode);

  Options options_;
  ml::DecisionTree ranker_;
  std::unordered_map<int64_t, std::vector<Point>> annotations_;
  double fit_seconds_ = 0.0;
};

}  // namespace baselines
}  // namespace dlinf

#endif  // DLINF_BASELINES_GEORANK_H_
