#include "baselines/simple_baselines.h"

#include <limits>

#include "baselines/annotation_util.h"
#include "common/check.h"

namespace dlinf {
namespace baselines {
namespace {

/// Falls back to the geocoded location when an address has no annotations
/// (mirrors the deployed system's fallback chain).
Point AnnotationFallback(const dlinfma::Dataset& data, int64_t address_id) {
  return data.world->address(address_id).geocoded_location;
}

}  // namespace

std::vector<Point> GeocodingBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    out.push_back(data.world->address(sample.address_id).geocoded_location);
  }
  return out;
}

void AnnotationBaseline::Fit(const dlinfma::Dataset& data,
                             const dlinfma::SampleSet& samples) {
  (void)samples;
  annotations_ = ComputeAnnotatedLocations(*data.world);
}

std::vector<Point> AnnotationBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    auto it = annotations_.find(sample.address_id);
    if (it == annotations_.end() || it->second.empty()) {
      out.push_back(AnnotationFallback(data, sample.address_id));
    } else {
      out.push_back(Centroid(it->second));
    }
  }
  return out;
}

void GeoCloudBaseline::Fit(const dlinfma::Dataset& data,
                           const dlinfma::SampleSet& samples) {
  (void)samples;
  annotations_ = ComputeAnnotatedLocations(*data.world);
}

std::vector<Point> GeoCloudBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    auto it = annotations_.find(sample.address_id);
    if (it == annotations_.end() || it->second.empty()) {
      out.push_back(AnnotationFallback(data, sample.address_id));
      continue;
    }
    const DbscanResult clustering = Dbscan(it->second, options_);
    const std::vector<int> biggest = clustering.LargestCluster();
    if (biggest.empty()) {
      out.push_back(Centroid(it->second));
      continue;
    }
    std::vector<Point> members;
    members.reserve(biggest.size());
    for (int index : biggest) members.push_back(it->second[index]);
    out.push_back(Centroid(members));
  }
  return out;
}

std::vector<Point> MinDistBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    const Point geocode =
        data.world->address(sample.address_id).geocoded_location;
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < sample.candidate_ids.size(); ++i) {
      const double d = Distance(
          data.gen->candidate(sample.candidate_ids[i]).location, geocode);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    out.push_back(data.gen->candidate(sample.candidate_ids[best]).location);
  }
  return out;
}

std::vector<Point> MaxTcBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    int best = 0;
    for (size_t i = 1; i < sample.features.size(); ++i) {
      if (sample.features[i].trip_coverage >
          sample.features[best].trip_coverage) {
        best = static_cast<int>(i);
      }
    }
    out.push_back(data.gen->candidate(sample.candidate_ids[best]).location);
  }
  return out;
}

std::vector<Point> MaxTcIlcBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    int best = 0;
    double best_score = -1.0;
    double best_tc = -1.0;
    for (size_t i = 0; i < sample.features.size(); ++i) {
      const double tc = sample.features[i].trip_coverage;
      const double lc = sample.features[i].location_commonality;
      // Eq. 5 with additive smoothing so that LC = 0 does not let a
      // barely-covered candidate outrank a fully covered one (the same
      // reason IDF is smoothed in practice).
      const double score = tc / (lc + 0.05);
      if (score > best_score ||
          (score == best_score && tc > best_tc)) {
        best_score = score;
        best_tc = tc;
        best = static_cast<int>(i);
      }
    }
    out.push_back(data.gen->candidate(sample.candidate_ids[best]).location);
  }
  return out;
}

}  // namespace baselines
}  // namespace dlinf
