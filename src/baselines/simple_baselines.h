#ifndef DLINF_BASELINES_SIMPLE_BASELINES_H_
#define DLINF_BASELINES_SIMPLE_BASELINES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/dbscan.h"
#include "dlinfma/inferrer.h"

namespace dlinf {
namespace baselines {

/// Geocoding: returns the address's geocoded location as-is (the industry
/// default the paper argues against).
class GeocodingBaseline : public dlinfma::Inferrer {
 public:
  std::string name() const override { return "Geocoding"; }
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;
};

/// Annotation [5]: the spatial centroid of the address's annotated
/// (confirmation-time) locations.
class AnnotationBaseline : public dlinfma::Inferrer {
 public:
  std::string name() const override { return "Annotation"; }
  void Fit(const dlinfma::Dataset& data,
           const dlinfma::SampleSet& samples) override;
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;

 private:
  std::unordered_map<int64_t, std::vector<Point>> annotations_;
};

/// GeoCloud [19]: DBSCAN over the annotated locations (min_points = 1 per the
/// paper's setup) and the centroid of the biggest cluster.
class GeoCloudBaseline : public dlinfma::Inferrer {
 public:
  explicit GeoCloudBaseline(const DbscanOptions& options = {30.0, 1})
      : options_(options) {}
  std::string name() const override { return "GeoCloud"; }
  void Fit(const dlinfma::Dataset& data,
           const dlinfma::SampleSet& samples) override;
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;

 private:
  DbscanOptions options_;
  std::unordered_map<int64_t, std::vector<Point>> annotations_;
};

/// MinDist: the location candidate nearest the geocoded waybill location.
class MinDistBaseline : public dlinfma::Inferrer {
 public:
  std::string name() const override { return "MinDist"; }
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;
};

/// MaxTC: the candidate with maximal trip coverage. Ties (common: the
/// station and community gates are passed by every trip, so TC = 1 is not
/// unique) resolve to the lowest candidate id, which makes the heuristic
/// fail exactly the way the paper describes ("common locations that a
/// courier would pass by frequently in many trips").
class MaxTcBaseline : public dlinfma::Inferrer {
 public:
  std::string name() const override { return "MaxTC"; }
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;
};

/// MaxTC-ILC: the candidate maximizing TC * (1 / LC) (Eq. 5, the TF-IDF
/// analogy). LC = 0 is treated as an arbitrarily strong inverse weight with
/// TC as tie-break.
class MaxTcIlcBaseline : public dlinfma::Inferrer {
 public:
  std::string name() const override { return "MaxTC-ILC"; }
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;
};

}  // namespace baselines
}  // namespace dlinf

#endif  // DLINF_BASELINES_SIMPLE_BASELINES_H_
