#include "baselines/unet_baseline.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/annotation_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "geo/geohash.h"
#include "nn/conv.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace dlinf {
namespace baselines {

/// Conv2d weights + bias as a registered module.
class SmallUnet::Conv2dLayer : public nn::Module {
 public:
  Conv2dLayer(int in_c, int out_c, int k, Rng* rng) : pad_(k / 2) {
    const float limit =
        std::sqrt(6.0f / static_cast<float>(in_c * k * k + out_c * k * k));
    weight_ = AddParameter(nn::Tensor::RandomUniform(
        {out_c, in_c, k, k}, -limit, limit, rng, /*requires_grad=*/true));
    bias_ =
        AddParameter(nn::Tensor::Zeros({out_c}, /*requires_grad=*/true));
  }

  nn::Tensor Forward(const nn::Tensor& x) const {
    return nn::Conv2d(x, weight_, bias_, pad_);
  }

 private:
  int pad_;
  nn::Tensor weight_;
  nn::Tensor bias_;
};

SmallUnet::~SmallUnet() = default;

SmallUnet::SmallUnet(Rng* rng) {
  enc1_ = std::make_unique<Conv2dLayer>(1, 8, 3, rng);
  enc2_ = std::make_unique<Conv2dLayer>(8, 8, 3, rng);
  bottleneck_ = std::make_unique<Conv2dLayer>(8, 16, 3, rng);
  dec1_ = std::make_unique<Conv2dLayer>(24, 8, 3, rng);
  head_ = std::make_unique<Conv2dLayer>(8, 1, 1, rng);
  AddChild(enc1_.get());
  AddChild(enc2_.get());
  AddChild(bottleneck_.get());
  AddChild(dec1_.get());
  AddChild(head_.get());
}

nn::Tensor SmallUnet::Forward(const nn::Tensor& x,
                              const nn::FwdCtx& ctx) const {
  (void)ctx;
  CHECK_EQ(x.rank(), 4);
  const int batch = x.dim(0);
  const int h = x.dim(2);
  const int w = x.dim(3);
  nn::Tensor e = nn::Relu(enc2_->Forward(nn::Relu(enc1_->Forward(x))));
  nn::Tensor down = nn::MaxPool2x2(e);
  nn::Tensor mid = nn::Relu(bottleneck_->Forward(down));
  nn::Tensor up = nn::UpsampleNearest(mid, h, w);
  nn::Tensor merged = nn::Concat({up, e}, /*axis=*/1);  // Skip connection.
  nn::Tensor out = head_->Forward(nn::Relu(dec1_->Forward(merged)));
  return nn::Reshape(out, {batch, h * w});
}

UnetBaseline::UnetBaseline() : UnetBaseline(Options()) {}

UnetBaseline::UnetBaseline(const Options& options)
    : options_(options), projection_(options.anchor) {}

bool UnetBaseline::BuildImage(int64_t address_id, bool with_label,
                              const sim::World& world, Image* image) const {
  auto it = annotations_.find(address_id);
  if (it == annotations_.end() || it->second.empty()) return false;

  // Center cell: the GeoHash cell holding the most annotated points.
  std::unordered_map<std::string, int> counts;
  for (const Point& p : it->second) {
    counts[GeohashEncode(projection_.Backward(p),
                         options_.geohash_precision)]++;
  }
  int best_count = 0;
  for (const auto& [hash, count] : counts) {
    if (count > best_count) {
      best_count = count;
      image->center_hash = hash;
    }
  }

  // Pixel values: annotation counts per cell, normalized by the max.
  const int side = 2 * options_.grid_half + 1;
  image->pixels.assign(static_cast<size_t>(side) * side, 0.0f);
  float max_count = 0.0f;
  for (int dy = -options_.grid_half; dy <= options_.grid_half; ++dy) {
    for (int dx = -options_.grid_half; dx <= options_.grid_half; ++dx) {
      const std::string hash = GeohashNeighbor(image->center_hash, dx, dy);
      auto cit = counts.find(hash);
      if (cit == counts.end()) continue;
      const int row = options_.grid_half - dy;  // North on top.
      const int col = dx + options_.grid_half;
      const float value = static_cast<float>(cit->second);
      image->pixels[static_cast<size_t>(row) * side + col] = value;
      max_count = std::max(max_count, value);
    }
  }
  if (max_count > 0) {
    for (float& v : image->pixels) v /= max_count;
  }

  image->label = -1;
  if (with_label) {
    const std::string truth_hash = GeohashEncode(
        projection_.Backward(world.address(address_id).true_delivery_location),
        options_.geohash_precision);
    for (int dy = -options_.grid_half; dy <= options_.grid_half; ++dy) {
      for (int dx = -options_.grid_half; dx <= options_.grid_half; ++dx) {
        if (GeohashNeighbor(image->center_hash, dx, dy) == truth_hash) {
          image->label = (options_.grid_half - dy) * side +
                         (dx + options_.grid_half);
        }
      }
    }
    // Off-image ground truth: the model "has no chance to make a correct
    // prediction" (Section V-C); such samples are skipped in training.
  }
  return true;
}

Point UnetBaseline::CellCenter(const std::string& center_hash,
                               int index) const {
  const int side = 2 * options_.grid_half + 1;
  const int row = index / side;
  const int col = index % side;
  const int dy = options_.grid_half - row;
  const int dx = col - options_.grid_half;
  const GeohashBox box = GeohashDecode(GeohashNeighbor(center_hash, dx, dy));
  return projection_.Forward(box.Center());
}

void UnetBaseline::Fit(const dlinfma::Dataset& data,
                       const dlinfma::SampleSet& samples) {
  Stopwatch watch;
  annotations_ = ComputeAnnotatedLocations(*data.world);
  const int side = 2 * options_.grid_half + 1;

  auto build_set = [&](const std::vector<dlinfma::AddressSample>& addrs) {
    std::vector<Image> images;
    for (const dlinfma::AddressSample& sample : addrs) {
      Image image;
      if (BuildImage(sample.address_id, /*with_label=*/true, *data.world,
                     &image) &&
          image.label >= 0) {
        images.push_back(std::move(image));
      }
    }
    return images;
  };
  std::vector<Image> train = build_set(samples.train);
  std::vector<Image> val = build_set(samples.val);
  CHECK(!train.empty()) << "UNet baseline found no trainable addresses";
  if (val.empty()) val = train;  // Degenerate split fallback.

  Rng rng(options_.seed);
  model_ = std::make_unique<SmallUnet>(&rng);
  nn::Adam adam(model_->Parameters(), options_.learning_rate);

  auto run_batch = [&](const std::vector<Image>& set, size_t begin,
                       size_t end, bool training) {
    const int b = static_cast<int>(end - begin);
    std::vector<float> pixels;
    pixels.reserve(static_cast<size_t>(b) * side * side);
    std::vector<int> labels;
    std::vector<int> valid(b, side * side);
    for (size_t i = begin; i < end; ++i) {
      pixels.insert(pixels.end(), set[i].pixels.begin(), set[i].pixels.end());
      labels.push_back(set[i].label);
    }
    nn::Tensor x =
        nn::Tensor::FromVector({b, 1, side, side}, std::move(pixels));
    nn::FwdCtx ctx{training, &rng};
    nn::Tensor logits = model_->Forward(x, ctx);
    return nn::MaskedCrossEntropy(logits, valid, labels);
  };
  auto eval_loss = [&](const std::vector<Image>& set) {
    double total = 0.0;
    for (size_t begin = 0; begin < set.size();
         begin += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          set.size(), begin + static_cast<size_t>(options_.batch_size));
      total += run_batch(set, begin, end, /*training=*/false).item() *
               static_cast<double>(end - begin);
    }
    return total / static_cast<double>(set.size());
  };

  std::vector<int> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  double best_val = 1e30;
  int stall = 0;
  std::vector<nn::Tensor> params = model_->Parameters();
  std::vector<std::vector<float>> best_params;
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    rng.Shuffle(&order);
    std::vector<Image> shuffled;
    shuffled.reserve(train.size());
    for (int i : order) shuffled.push_back(train[i]);
    for (size_t begin = 0; begin < shuffled.size();
         begin += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          shuffled.size(), begin + static_cast<size_t>(options_.batch_size));
      adam.ZeroGrad();
      nn::Tensor loss = run_batch(shuffled, begin, end, /*training=*/true);
      loss.Backward();
      adam.Step();
    }
    const double val_loss = eval_loss(val);
    if (val_loss < best_val - 1e-5) {
      best_val = val_loss;
      stall = 0;
      best_params.clear();
      for (const nn::Tensor& p : params) best_params.push_back(p.data());
    } else if (++stall >= options_.early_stop_patience) {
      break;
    }
  }
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) params[i].data() = best_params[i];
  }
  fit_seconds_ = watch.ElapsedSeconds();
}

std::vector<Point> UnetBaseline::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  CHECK(model_ != nullptr) << "Fit must run before InferAll";
  const int side = 2 * options_.grid_half + 1;
  std::vector<Point> out;
  out.reserve(samples.size());
  nn::FwdCtx eval_ctx;
  for (const dlinfma::AddressSample& sample : samples) {
    Image image;
    if (!BuildImage(sample.address_id, /*with_label=*/false, *data.world,
                    &image)) {
      out.push_back(data.world->address(sample.address_id).geocoded_location);
      continue;
    }
    nn::Tensor x = nn::Tensor::FromVector({1, 1, side, side},
                                          std::vector<float>(image.pixels));
    nn::Tensor logits = model_->Forward(x, eval_ctx);
    int best = 0;
    for (int j = 1; j < side * side; ++j) {
      if (logits.data()[j] > logits.data()[best]) best = j;
    }
    // The predicted grid cell's spatial center is the inferred location —
    // the source of UNet's residual quantization error the paper discusses.
    out.push_back(CellCenter(image.center_hash, best));
  }
  return out;
}

}  // namespace baselines
}  // namespace dlinf
