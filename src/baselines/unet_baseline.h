#ifndef DLINF_BASELINES_UNET_BASELINE_H_
#define DLINF_BASELINES_UNET_BASELINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dlinfma/inferrer.h"
#include "geo/latlng.h"
#include "nn/module.h"

namespace dlinf {
namespace baselines {

/// The small encoder-decoder segmentation network of the UNet-based
/// baseline: two 3x3 conv blocks, a 2x2 max-pool bottleneck, nearest
/// upsampling back to 9x9, a skip connection, and a 1x1 head producing
/// per-cell logits.
class SmallUnet : public nn::Module {
 public:
  explicit SmallUnet(Rng* rng);
  ~SmallUnet() override;  // Defined in the .cc where Conv2dLayer is complete.

  /// `x` is [B, 1, 9, 9]; returns per-cell logits [B, 81].
  nn::Tensor Forward(const nn::Tensor& x, const nn::FwdCtx& ctx) const;

 private:
  class Conv2dLayer;
  std::unique_ptr<Conv2dLayer> enc1_, enc2_, bottleneck_, dec1_, head_;
};

/// UNet-based [20] baseline, adapted as in the paper's comparison (customer
/// locations removed): for each address, a 9x9 image over GeoHash-8 cells
/// (~38 m x 19 m) centered at the cell with the most annotated locations;
/// pixel values are normalized annotation counts; UNet [21] segments the
/// delivery-location cell; the predicted cell's center is the inference.
class UnetBaseline : public dlinfma::Inferrer {
 public:
  struct Options {
    int geohash_precision = 8;
    int grid_half = 4;  ///< 9x9 image.
    float learning_rate = 1e-3f;
    int batch_size = 16;
    int max_epochs = 40;
    int early_stop_patience = 5;
    uint64_t seed = 13;
    /// Anchor for the local-meters <-> geodetic conversion (Beijing).
    LatLng anchor{39.9042, 116.4074};
  };

  UnetBaseline();
  explicit UnetBaseline(const Options& options);

  std::string name() const override { return "UNet-based"; }

  void Fit(const dlinfma::Dataset& data,
           const dlinfma::SampleSet& samples) override;

  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;

  double fit_seconds() const { return fit_seconds_; }

 private:
  struct Image {
    std::vector<float> pixels;  ///< 81 normalized counts, row-major (dy, dx).
    std::string center_hash;
    int label = -1;  ///< Ground-truth cell index or -1 when off-image.
  };

  /// Builds the address's spatial density image from its annotations.
  /// Returns false when the address has no annotations.
  bool BuildImage(int64_t address_id, bool with_label,
                  const sim::World& world, Image* image) const;

  /// Center of grid cell `index` in local meters.
  Point CellCenter(const std::string& center_hash, int index) const;

  Options options_;
  LocalProjection projection_;
  std::unordered_map<int64_t, std::vector<Point>> annotations_;
  std::unique_ptr<SmallUnet> model_;
  double fit_seconds_ = 0.0;
};

}  // namespace baselines
}  // namespace dlinf

#endif  // DLINF_BASELINES_UNET_BASELINE_H_
