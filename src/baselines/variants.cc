#include "baselines/variants.h"

#include <algorithm>

#include "common/check.h"
#include "ml/pairwise.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace dlinf {
namespace baselines {
namespace {

/// Flattens every (address, candidate) pair of a split into rows/labels.
void FlattenSplit(const std::vector<dlinfma::AddressSample>& samples,
                  std::vector<ml::FeatureRow>* x, std::vector<double>* y) {
  for (const dlinfma::AddressSample& sample : samples) {
    CHECK_GE(sample.label, 0);
    for (size_t i = 0; i < sample.candidate_ids.size(); ++i) {
      x->push_back(dlinfma::FlattenFeatures(sample, static_cast<int>(i)));
      y->push_back(static_cast<int>(i) == sample.label ? 1.0 : 0.0);
    }
  }
}

/// Pairwise ranking groups from candidate features.
std::vector<ml::RankingGroup> MakeGroups(
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<ml::RankingGroup> groups;
  for (const dlinfma::AddressSample& sample : samples) {
    if (sample.candidate_ids.size() < 2) continue;
    CHECK_GE(sample.label, 0);
    ml::RankingGroup group;
    for (size_t i = 0; i < sample.candidate_ids.size(); ++i) {
      group.rows.push_back(
          dlinfma::FlattenFeatures(sample, static_cast<int>(i)));
    }
    group.positive_index = sample.label;
    groups.push_back(std::move(group));
  }
  return groups;
}

nn::Tensor RowsToTensor(const std::vector<ml::FeatureRow>& rows) {
  CHECK(!rows.empty());
  const int width = static_cast<int>(rows[0].size());
  std::vector<float> flat;
  flat.reserve(rows.size() * width);
  for (const ml::FeatureRow& row : rows) {
    for (double v : row) flat.push_back(static_cast<float>(v));
  }
  return nn::Tensor::FromVector({static_cast<int>(rows.size()), width},
                                std::move(flat));
}

}  // namespace

ClassificationVariant::ClassificationVariant(Model model, std::string name)
    : ClassificationVariant(model, std::move(name), Options()) {}

ClassificationVariant::ClassificationVariant(Model model, std::string name,
                                             const Options& options)
    : model_(model), name_(std::move(name)), options_(options) {}

RankDtVariant::RankDtVariant() : RankDtVariant(Options()) {}

RankDtVariant::RankDtVariant(const Options& options) : options_(options) {}

RankNetVariant::RankNetVariant() : RankNetVariant(Options()) {}

RankNetVariant::RankNetVariant(const Options& options) : options_(options) {}

void ClassificationVariant::Fit(const dlinfma::Dataset& data,
                                const dlinfma::SampleSet& samples) {
  (void)data;
  std::vector<ml::FeatureRow> x;
  std::vector<double> y;
  FlattenSplit(samples.train, &x, &y);
  std::vector<double> w(y.size(), 1.0);
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.5) w[i] = options_.positive_weight;
  }
  Rng rng(options_.seed);

  switch (model_) {
    case Model::kGbdt: {
      ml::GradientBoosting::Options gbdt_options;
      gbdt_options.num_stages = options_.gbdt_stages;
      gbdt_.Fit(x, y, w, gbdt_options);
      break;
    }
    case Model::kRandomForest: {
      ml::RandomForest::Options rf_options;
      rf_options.num_trees = options_.rf_trees;
      rf_options.max_depth = options_.rf_depth;
      rf_options.feature_subsample = options_.rf_feature_subsample;
      forest_.Fit(x, y, w, rf_options, &rng);
      break;
    }
    case Model::kMlp: {
      mlp_ = std::make_unique<nn::Mlp>(
          std::vector<int>{dlinfma::kFlatFeatureWidth, options_.mlp_hidden, 1},
          &rng);
      nn::Adam adam(mlp_->Parameters(), options_.mlp_learning_rate);

      std::vector<ml::FeatureRow> val_x;
      std::vector<double> val_y;
      FlattenSplit(samples.val, &val_x, &val_y);
      const nn::Tensor val_tensor = RowsToTensor(val_x);
      const std::vector<float> val_targets(val_y.begin(), val_y.end());

      std::vector<int> order(x.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
      double best_val = 1e30;
      int stall = 0;
      std::vector<nn::Tensor> params = mlp_->Parameters();
      std::vector<std::vector<float>> best_params;
      for (int epoch = 0; epoch < options_.mlp_epochs; ++epoch) {
        rng.Shuffle(&order);
        for (size_t begin = 0; begin < order.size();
             begin += static_cast<size_t>(options_.mlp_batch)) {
          const size_t end = std::min(
              order.size(), begin + static_cast<size_t>(options_.mlp_batch));
          std::vector<ml::FeatureRow> batch_rows;
          std::vector<float> batch_targets;
          for (size_t i = begin; i < end; ++i) {
            batch_rows.push_back(x[order[i]]);
            batch_targets.push_back(static_cast<float>(y[order[i]]));
          }
          adam.ZeroGrad();
          nn::Tensor logits = nn::Reshape(
              mlp_->Forward(RowsToTensor(batch_rows)),
              {static_cast<int>(batch_rows.size())});
          nn::Tensor loss = nn::BceWithLogits(
              logits, batch_targets,
              static_cast<float>(options_.positive_weight));
          loss.Backward();
          adam.Step();
        }
        nn::Tensor val_logits =
            nn::Reshape(mlp_->Forward(val_tensor),
                        {static_cast<int>(val_targets.size())});
        const double val_loss =
            nn::BceWithLogits(val_logits, val_targets,
                              static_cast<float>(options_.positive_weight))
                .item();
        if (val_loss < best_val - 1e-5) {
          best_val = val_loss;
          stall = 0;
          best_params.clear();
          for (const nn::Tensor& p : params) best_params.push_back(p.data());
        } else if (++stall >= options_.mlp_patience) {
          break;
        }
      }
      if (!best_params.empty()) {
        for (size_t i = 0; i < params.size(); ++i) {
          params[i].data() = best_params[i];
        }
      }
      break;
    }
  }
}

double ClassificationVariant::Score(const ml::FeatureRow& row) const {
  switch (model_) {
    case Model::kGbdt:
      return gbdt_.PredictProba(row);
    case Model::kRandomForest:
      return forest_.PredictProba(row);
    case Model::kMlp: {
      CHECK(mlp_ != nullptr);
      nn::Tensor logits = mlp_->Forward(RowsToTensor({row}));
      return 1.0 / (1.0 + std::exp(-static_cast<double>(logits.data()[0])));
    }
  }
  return 0.0;
}

std::vector<Point> ClassificationVariant::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    int best = 0;
    double best_score = -1.0;
    for (size_t i = 0; i < sample.candidate_ids.size(); ++i) {
      const double score =
          Score(dlinfma::FlattenFeatures(sample, static_cast<int>(i)));
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    out.push_back(data.gen->candidate(sample.candidate_ids[best]).location);
  }
  return out;
}

void RankDtVariant::Fit(const dlinfma::Dataset& data,
                        const dlinfma::SampleSet& samples) {
  (void)data;
  const std::vector<ml::RankingGroup> groups = MakeGroups(samples.train);
  CHECK(!groups.empty());
  Rng rng(options_.seed);
  std::vector<ml::FeatureRow> x;
  std::vector<double> y;
  ml::MakePairwiseTrainingSet(groups, options_.max_pairs_per_group, &rng, &x,
                              &y);
  ml::DecisionTree::Options tree_options;
  tree_options.task = ml::DecisionTree::Task::kClassification;
  tree_options.max_depth = options_.max_depth;
  tree_options.max_leaves = options_.max_leaves;
  ranker_.Fit(x, y, {}, tree_options);
}

std::vector<Point> RankDtVariant::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  CHECK(ranker_.trained());
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    std::vector<ml::FeatureRow> rows;
    for (size_t i = 0; i < sample.candidate_ids.size(); ++i) {
      rows.push_back(dlinfma::FlattenFeatures(sample, static_cast<int>(i)));
    }
    const int winner = ml::PairwiseVoteSelect(
        rows,
        [this](const ml::FeatureRow& diff) { return ranker_.Predict(diff); });
    out.push_back(data.gen->candidate(sample.candidate_ids[winner]).location);
  }
  return out;
}

void RankNetVariant::Fit(const dlinfma::Dataset& data,
                         const dlinfma::SampleSet& samples) {
  (void)data;
  const std::vector<ml::RankingGroup> groups = MakeGroups(samples.train);
  CHECK(!groups.empty());
  Rng rng(options_.seed);
  scorer_ = std::make_unique<nn::Mlp>(
      std::vector<int>{dlinfma::kFlatFeatureWidth, options_.hidden, 1}, &rng);
  nn::Adam adam(scorer_->Parameters(), options_.learning_rate);

  // Pair lists: (positive row, negative row).
  std::vector<std::pair<const ml::FeatureRow*, const ml::FeatureRow*>> pairs;
  for (const ml::RankingGroup& group : groups) {
    std::vector<int> negatives;
    for (int i = 0; i < static_cast<int>(group.rows.size()); ++i) {
      if (i != group.positive_index) negatives.push_back(i);
    }
    if (options_.max_pairs_per_group > 0 &&
        static_cast<int>(negatives.size()) > options_.max_pairs_per_group) {
      rng.Shuffle(&negatives);
      negatives.resize(options_.max_pairs_per_group);
    }
    for (int neg : negatives) {
      pairs.emplace_back(&group.rows[group.positive_index], &group.rows[neg]);
    }
  }

  std::vector<int> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(options_.batch)) {
      const size_t end =
          std::min(order.size(), begin + static_cast<size_t>(options_.batch));
      std::vector<ml::FeatureRow> pos_rows, neg_rows;
      for (size_t i = begin; i < end; ++i) {
        pos_rows.push_back(*pairs[order[i]].first);
        neg_rows.push_back(*pairs[order[i]].second);
      }
      const int b = static_cast<int>(pos_rows.size());
      adam.ZeroGrad();
      nn::Tensor s_pos =
          nn::Reshape(scorer_->Forward(RowsToTensor(pos_rows)), {b});
      nn::Tensor s_neg =
          nn::Reshape(scorer_->Forward(RowsToTensor(neg_rows)), {b});
      // RankNet: P(pos > neg) = sigmoid(s_pos - s_neg), target 1.
      nn::Tensor loss = nn::BceWithLogits(nn::Sub(s_pos, s_neg),
                                          std::vector<float>(b, 1.0f));
      loss.Backward();
      adam.Step();
    }
  }
}

std::vector<Point> RankNetVariant::InferAll(
    const dlinfma::Dataset& data,
    const std::vector<dlinfma::AddressSample>& samples) {
  CHECK(scorer_ != nullptr);
  std::vector<Point> out;
  out.reserve(samples.size());
  for (const dlinfma::AddressSample& sample : samples) {
    std::vector<ml::FeatureRow> rows;
    for (size_t i = 0; i < sample.candidate_ids.size(); ++i) {
      rows.push_back(dlinfma::FlattenFeatures(sample, static_cast<int>(i)));
    }
    nn::Tensor scores = nn::Reshape(scorer_->Forward(RowsToTensor(rows)),
                                    {static_cast<int>(rows.size())});
    int best = 0;
    for (size_t i = 1; i < rows.size(); ++i) {
      if (scores.data()[i] > scores.data()[best]) best = static_cast<int>(i);
    }
    out.push_back(data.gen->candidate(sample.candidate_ids[best]).location);
  }
  return out;
}

}  // namespace baselines
}  // namespace dlinf
