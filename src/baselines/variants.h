#ifndef DLINF_BASELINES_VARIANTS_H_
#define DLINF_BASELINES_VARIANTS_H_

#include <memory>
#include <string>
#include <vector>

#include "dlinfma/inferrer.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "nn/module.h"

namespace dlinf {
namespace baselines {

/// DLInfMA-GBDT / -RF / -MLP: same candidate generation and features as
/// DLInfMA, but each candidate is classified *independently* as
/// delivery-location-or-not (Figure 7(a)); the candidate with the highest
/// probability wins. The paper's class weight 8:2 (positives upweighted 4x)
/// is applied.
class ClassificationVariant : public dlinfma::Inferrer {
 public:
  enum class Model { kGbdt, kRandomForest, kMlp };

  struct Options {
    double positive_weight = 4.0;  ///< 8:2 class weighting.
    // GBDT (paper: 150 stages).
    int gbdt_stages = 150;
    // Random forest (paper: 400 trees, depth 10).
    int rf_trees = 400;
    int rf_depth = 10;
    int rf_feature_subsample = 8;
    // MLP (paper: 1 hidden layer, 16 neurons).
    int mlp_hidden = 16;
    float mlp_learning_rate = 1e-3f;
    int mlp_epochs = 40;
    int mlp_batch = 256;
    int mlp_patience = 5;
    uint64_t seed = 17;
  };

  ClassificationVariant(Model model, std::string name);
  ClassificationVariant(Model model, std::string name,
                        const Options& options);

  std::string name() const override { return name_; }
  void Fit(const dlinfma::Dataset& data,
           const dlinfma::SampleSet& samples) override;
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;

 private:
  double Score(const ml::FeatureRow& row) const;

  Model model_;
  std::string name_;
  Options options_;
  ml::GradientBoosting gbdt_;
  ml::RandomForest forest_;
  std::unique_ptr<nn::Mlp> mlp_;
};

/// DLInfMA-RkDT: pairwise ranking over the DLInfMA candidate features with a
/// decision-tree base learner (1024 leaves max) and win-count selection
/// (Figure 7(b)).
class RankDtVariant : public dlinfma::Inferrer {
 public:
  struct Options {
    int max_leaves = 1024;
    int max_depth = 16;
    int max_pairs_per_group = 30;
    uint64_t seed = 19;
  };

  RankDtVariant();
  explicit RankDtVariant(const Options& options);

  std::string name() const override { return "DLInfMA-RkDT"; }
  void Fit(const dlinfma::Dataset& data,
           const dlinfma::SampleSet& samples) override;
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;

 private:
  Options options_;
  ml::DecisionTree ranker_;
};

/// DLInfMA-RkNet: RankNet [26] over the DLInfMA candidate features — a
/// shared scoring MLP (one 16-unit hidden layer) trained on pairs with
/// P(i > j) = sigmoid(s_i - s_j); inference scores candidates directly.
class RankNetVariant : public dlinfma::Inferrer {
 public:
  struct Options {
    int hidden = 16;
    float learning_rate = 1e-3f;
    int epochs = 40;
    int batch = 128;
    int patience = 5;
    int max_pairs_per_group = 30;
    uint64_t seed = 23;
  };

  RankNetVariant();
  explicit RankNetVariant(const Options& options);

  std::string name() const override { return "DLInfMA-RkNet"; }
  void Fit(const dlinfma::Dataset& data,
           const dlinfma::SampleSet& samples) override;
  std::vector<Point> InferAll(
      const dlinfma::Dataset& data,
      const std::vector<dlinfma::AddressSample>& samples) override;

 private:
  Options options_;
  std::unique_ptr<nn::Mlp> scorer_;
};

}  // namespace baselines
}  // namespace dlinf

#endif  // DLINF_BASELINES_VARIANTS_H_
