#include "cluster/dbscan.h"

#include <deque>

#include "common/check.h"
#include "geo/grid_index.h"

namespace dlinf {

std::vector<int> DbscanResult::LargestCluster() const {
  std::vector<int> sizes(num_clusters, 0);
  for (int label : labels) {
    if (label >= 0) ++sizes[label];
  }
  int best = -1;
  int best_size = 0;
  for (int c = 0; c < num_clusters; ++c) {
    if (sizes[c] > best_size) {
      best_size = sizes[c];
      best = c;
    }
  }
  std::vector<int> members;
  if (best < 0) return members;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == best) members.push_back(static_cast<int>(i));
  }
  return members;
}

DbscanResult Dbscan(const std::vector<Point>& points,
                    const DbscanOptions& options) {
  CHECK_GT(options.eps, 0.0);
  CHECK_GE(options.min_points, 1);
  const int n = static_cast<int>(points.size());
  DbscanResult result;
  result.labels.assign(n, -2);  // -2 = unvisited, -1 = noise.

  GridIndex index(options.eps);
  for (int i = 0; i < n; ++i) index.Insert(i, points[i]);

  int next_cluster = 0;
  for (int i = 0; i < n; ++i) {
    if (result.labels[i] != -2) continue;
    std::vector<int64_t> neighbors = index.RadiusQuery(points[i], options.eps);
    if (static_cast<int>(neighbors.size()) < options.min_points) {
      result.labels[i] = -1;
      continue;
    }
    const int cluster = next_cluster++;
    result.labels[i] = cluster;
    std::deque<int64_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const int j = static_cast<int>(frontier.front());
      frontier.pop_front();
      if (result.labels[j] == -1) result.labels[j] = cluster;  // Border point.
      if (result.labels[j] != -2) continue;
      result.labels[j] = cluster;
      std::vector<int64_t> j_neighbors =
          index.RadiusQuery(points[j], options.eps);
      if (static_cast<int>(j_neighbors.size()) >= options.min_points) {
        for (int64_t nb : j_neighbors) frontier.push_back(nb);
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace dlinf
