#ifndef DLINF_CLUSTER_DBSCAN_H_
#define DLINF_CLUSTER_DBSCAN_H_

#include <vector>

#include "geo/point.h"

namespace dlinf {

/// DBSCAN parameters. The GeoCloud baseline [19] runs DBSCAN over annotated
/// locations with min_points = 1 so that even sparsely delivered addresses
/// produce a cluster (Section V-B, training details).
struct DbscanOptions {
  double eps = 30.0;   ///< Neighbourhood radius, meters.
  int min_points = 1;  ///< Minimum neighbourhood size for a core point.
};

/// Result of a DBSCAN run: per-point cluster labels (-1 = noise) and the
/// number of clusters found. Labels are dense in [0, num_clusters).
struct DbscanResult {
  std::vector<int> labels;
  int num_clusters = 0;

  /// Indexes of the points in the most populous cluster; empty when
  /// everything is noise. GeoCloud centroids this set.
  std::vector<int> LargestCluster() const;
};

/// Standard density-based clustering (Ester et al. [10]), grid-accelerated.
DbscanResult Dbscan(const std::vector<Point>& points,
                    const DbscanOptions& options = {});

}  // namespace dlinf

#endif  // DLINF_CLUSTER_DBSCAN_H_
