#include "cluster/grid_merge.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace dlinf {

std::vector<PointCluster> GridMergeCluster(const std::vector<Point>& points,
                                           double cell_size) {
  CHECK_GT(cell_size, 0.0);
  std::unordered_map<int64_t, PointCluster> cells;
  for (size_t i = 0; i < points.size(); ++i) {
    const int64_t cx = static_cast<int64_t>(std::floor(points[i].x / cell_size));
    const int64_t cy = static_cast<int64_t>(std::floor(points[i].y / cell_size));
    const int64_t key = (cx << 32) ^ (cy & 0xffffffffll);
    PointCluster& cell = cells[key];
    // Incrementally maintain the centroid.
    const double w = cell.members.empty() ? 0.0 : cell.weight;
    cell.centroid = Point{(cell.centroid.x * w + points[i].x) / (w + 1.0),
                          (cell.centroid.y * w + points[i].y) / (w + 1.0)};
    cell.weight = w + 1.0;
    cell.members.push_back(static_cast<int64_t>(i));
  }
  std::vector<PointCluster> clusters;
  clusters.reserve(cells.size());
  for (auto& [key, cell] : cells) clusters.push_back(std::move(cell));
  return clusters;
}

}  // namespace dlinf
