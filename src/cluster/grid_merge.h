#ifndef DLINF_CLUSTER_GRID_MERGE_H_
#define DLINF_CLUSTER_GRID_MERGE_H_

#include <vector>

#include "cluster/hierarchical.h"
#include "geo/point.h"

namespace dlinf {

/// Grid-merging clustering [12], used by the DLInfMA-Grid variant: the plane
/// is discretized into `cell_size` x `cell_size` cells and each non-empty
/// cell becomes one cluster (centroid of the points in the cell).
///
/// As the paper observes (Table II discussion), this produces more locations
/// than hierarchical clustering because two nearby points on opposite sides
/// of a cell boundary are never merged.
std::vector<PointCluster> GridMergeCluster(const std::vector<Point>& points,
                                           double cell_size);

}  // namespace dlinf

#endif  // DLINF_CLUSTER_GRID_MERGE_H_
