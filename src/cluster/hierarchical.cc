#include "cluster/hierarchical.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/check.h"
#include "geo/grid_index.h"

namespace dlinf {
namespace {

/// Candidate merge between two live clusters, ordered by distance.
struct MergePair {
  double distance;
  int64_t a;
  int64_t b;

  bool operator>(const MergePair& other) const {
    return distance > other.distance;
  }
};

}  // namespace

std::vector<PointCluster> MakeSingletonClusters(
    const std::vector<Point>& points, int64_t id_offset) {
  std::vector<PointCluster> clusters;
  clusters.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    PointCluster c;
    c.centroid = points[i];
    c.weight = 1.0;
    c.members = {id_offset + static_cast<int64_t>(i)};
    clusters.push_back(std::move(c));
  }
  return clusters;
}

std::vector<PointCluster> AgglomerateByDistance(
    std::vector<PointCluster> clusters, double distance_threshold) {
  CHECK_GT(distance_threshold, 0.0);
  const double d2_threshold = distance_threshold * distance_threshold;

  // Clusters are append-only; merged inputs are tombstoned. Ids index `pool`.
  std::vector<PointCluster> pool = std::move(clusters);
  std::vector<bool> alive(pool.size(), true);
  GridIndex index(distance_threshold);
  for (size_t i = 0; i < pool.size(); ++i) {
    index.Insert(static_cast<int64_t>(i), pool[i].centroid);
  }

  std::priority_queue<MergePair, std::vector<MergePair>, std::greater<>> heap;
  auto push_neighbors = [&](int64_t id) {
    const std::vector<int64_t> neighbors =
        index.RadiusQuery(pool[id].centroid, distance_threshold);
    for (int64_t other : neighbors) {
      if (other == id) continue;
      const double d2 =
          SquaredDistance(pool[id].centroid, pool[other].centroid);
      if (d2 <= d2_threshold) {
        heap.push(MergePair{std::sqrt(d2), std::min(id, other),
                            std::max(id, other)});
      }
    }
  };
  for (size_t i = 0; i < pool.size(); ++i) {
    push_neighbors(static_cast<int64_t>(i));
  }

  while (!heap.empty()) {
    const MergePair top = heap.top();
    heap.pop();
    if (!alive[top.a] || !alive[top.b]) continue;
    // Centroids never move after creation, so a popped pair of live clusters
    // is exactly the current closest pair; merge it.
    PointCluster merged;
    const PointCluster& ca = pool[top.a];
    const PointCluster& cb = pool[top.b];
    const double w = ca.weight + cb.weight;
    merged.centroid =
        Point{(ca.centroid.x * ca.weight + cb.centroid.x * cb.weight) / w,
              (ca.centroid.y * ca.weight + cb.centroid.y * cb.weight) / w};
    merged.weight = w;
    merged.members.reserve(ca.members.size() + cb.members.size());
    merged.members.insert(merged.members.end(), ca.members.begin(),
                          ca.members.end());
    merged.members.insert(merged.members.end(), cb.members.begin(),
                          cb.members.end());

    alive[top.a] = false;
    alive[top.b] = false;
    index.Remove(top.a, ca.centroid);
    index.Remove(top.b, cb.centroid);

    const int64_t new_id = static_cast<int64_t>(pool.size());
    pool.push_back(std::move(merged));
    alive.push_back(true);
    index.Insert(new_id, pool[new_id].centroid);
    push_neighbors(new_id);
  }

  std::vector<PointCluster> result;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (alive[i]) result.push_back(std::move(pool[i]));
  }
  return result;
}

std::vector<PointCluster> AgglomerateByDistance(
    const std::vector<Point>& points, double distance_threshold) {
  return AgglomerateByDistance(MakeSingletonClusters(points),
                               distance_threshold);
}

}  // namespace dlinf
