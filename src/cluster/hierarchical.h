#ifndef DLINF_CLUSTER_HIERARCHICAL_H_
#define DLINF_CLUSTER_HIERARCHICAL_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace dlinf {

/// A cluster of spatial points, tracked by centroid and membership.
///
/// `weight` is the number of original points the cluster absorbed, so that
/// merging two clusters yields the exact centroid of their union; `members`
/// are the caller's ids of those original points (stay-point indexes in the
/// candidate-pool pipeline).
struct PointCluster {
  Point centroid;
  double weight = 1.0;
  std::vector<int64_t> members;
};

/// Wraps each point as a singleton cluster with member id = its index
/// (offset by `id_offset` to support batched input).
std::vector<PointCluster> MakeSingletonClusters(
    const std::vector<Point>& points, int64_t id_offset = 0);

/// Centroid-linkage agglomerative clustering with a distance threshold
/// (Section III-B): repeatedly merges the two clusters whose centroids are
/// closest, until no two centroids are within `distance_threshold`.
///
/// Accepts pre-existing clusters as input, which is exactly what the paper's
/// bi-weekly incremental pool construction needs: cluster each two-week batch
/// of stay points, then feed the accumulated clusters back through the same
/// procedure. The closest-pair search is grid-accelerated: only pairs at most
/// `distance_threshold` apart are ever materialized, so the run time is
/// near-linear for the dispersed point sets stay points form in practice.
std::vector<PointCluster> AgglomerateByDistance(
    std::vector<PointCluster> clusters, double distance_threshold);

/// Convenience overload: singleton-wraps `points` and agglomerates.
std::vector<PointCluster> AgglomerateByDistance(
    const std::vector<Point>& points, double distance_threshold);

}  // namespace dlinf

#endif  // DLINF_CLUSTER_HIERARCHICAL_H_
