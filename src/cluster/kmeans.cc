#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dlinf {
namespace {

int NearestCentroid(const Point& p, const std::vector<Point>& centroids,
                    double* out_d2) {
  int best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double d2 = SquaredDistance(p, centroids[c]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(c);
    }
  }
  if (out_d2 != nullptr) *out_d2 = best_d2;
  return best;
}

}  // namespace

KMeansResult KMeans(const std::vector<Point>& points, int k, Rng* rng,
                    int max_iterations) {
  CHECK(!points.empty());
  CHECK_GE(k, 1);
  CHECK(rng != nullptr);
  k = std::min<int>(k, static_cast<int>(points.size()));

  // k-means++ seeding: first centroid uniform, then proportional to squared
  // distance from the nearest chosen centroid.
  KMeansResult result;
  result.centroids.push_back(
      points[static_cast<size_t>(rng->UniformInt(0, points.size() - 1))]);
  std::vector<double> d2(points.size());
  while (static_cast<int>(result.centroids.size()) < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      NearestCentroid(points[i], result.centroids, &d2[i]);
    }
    result.centroids.push_back(points[rng->WeightedIndex(d2)]);
  }

  result.assignments.assign(points.size(), -1);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = NearestCentroid(points[i], result.centroids, nullptr);
      if (c != result.assignments[i]) {
        result.assignments[i] = c;
        changed = true;
      }
    }
    if (!changed) break;
    std::vector<double> sx(k, 0.0), sy(k, 0.0);
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = result.assignments[i];
      sx[c] += points[i].x;
      sy[c] += points[i].y;
      ++counts[c];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = Point{sx[c] / counts[c], sy[c] / counts[c]};
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.inertia +=
        SquaredDistance(points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace dlinf
