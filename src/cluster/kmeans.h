#ifndef DLINF_CLUSTER_KMEANS_H_
#define DLINF_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geo/point.h"

namespace dlinf {

/// Lloyd's k-means with k-means++ seeding. Included as the reference
/// clustering method the paper contrasts hierarchical clustering against
/// (Section III-B discusses why a distance threshold is easier to set than k).
struct KMeansResult {
  std::vector<Point> centroids;     ///< k centroids.
  std::vector<int> assignments;     ///< Per-point centroid index.
  double inertia = 0.0;             ///< Sum of squared point-centroid dists.
};

/// Runs k-means; k is capped at points.size(). Aborts if k < 1 or the input
/// is empty.
KMeansResult KMeans(const std::vector<Point>& points, int k, Rng* rng,
                    int max_iterations = 100);

}  // namespace dlinf

#endif  // DLINF_CLUSTER_KMEANS_H_
