#include "cluster/optics.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "geo/grid_index.h"

namespace dlinf {
namespace {

/// Seed-list entry ordered by smallest reachability first.
struct Seed {
  double reachability;
  int index;

  bool operator>(const Seed& other) const {
    return reachability > other.reachability;
  }
};

/// Core distance: distance to the min_points-th neighbour (including the
/// point itself), or -1 when there are fewer neighbours within max_eps.
double CoreDistance(const std::vector<Point>& points,
                    const std::vector<int64_t>& neighbors, int center,
                    int min_points) {
  if (static_cast<int>(neighbors.size()) < min_points) return -1.0;
  std::vector<double> dists;
  dists.reserve(neighbors.size());
  for (int64_t n : neighbors) {
    dists.push_back(Distance(points[center], points[n]));
  }
  std::nth_element(dists.begin(), dists.begin() + (min_points - 1),
                   dists.end());
  return dists[min_points - 1];
}

}  // namespace

OpticsResult Optics(const std::vector<Point>& points,
                    const OpticsOptions& options) {
  CHECK_GT(options.max_eps, 0.0);
  CHECK_GE(options.min_points, 1);
  const int n = static_cast<int>(points.size());
  OpticsResult result;
  result.reachability.assign(n, OpticsResult::kUndefinedReachability);
  result.ordering.reserve(n);

  GridIndex index(options.max_eps);
  for (int i = 0; i < n; ++i) index.Insert(i, points[i]);

  std::vector<bool> processed(n, false);
  for (int start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = true;
    result.ordering.push_back(start);

    std::vector<int64_t> neighbors =
        index.RadiusQuery(points[start], options.max_eps);
    double core = CoreDistance(points, neighbors, start, options.min_points);
    if (core < 0) continue;  // Not a core point: stays noise-ordered.

    // Expand from the start point with a seed priority queue. Stale entries
    // are skipped lazily (reachability only ever decreases).
    std::priority_queue<Seed, std::vector<Seed>, std::greater<>> seeds;
    auto update_seeds = [&](int center, double core_distance,
                            const std::vector<int64_t>& nbrs) {
      for (int64_t nb64 : nbrs) {
        const int nb = static_cast<int>(nb64);
        if (processed[nb]) continue;
        const double reach =
            std::max(core_distance, Distance(points[center], points[nb]));
        if (result.reachability[nb] ==
                OpticsResult::kUndefinedReachability ||
            reach < result.reachability[nb]) {
          result.reachability[nb] = reach;
          seeds.push(Seed{reach, nb});
        }
      }
    };
    update_seeds(start, core, neighbors);

    while (!seeds.empty()) {
      const Seed seed = seeds.top();
      seeds.pop();
      if (processed[seed.index]) continue;  // Stale entry.
      processed[seed.index] = true;
      result.ordering.push_back(seed.index);
      const std::vector<int64_t> seed_neighbors =
          index.RadiusQuery(points[seed.index], options.max_eps);
      const double seed_core = CoreDistance(points, seed_neighbors,
                                            seed.index, options.min_points);
      if (seed_core >= 0) {
        update_seeds(seed.index, seed_core, seed_neighbors);
      }
    }
  }
  CHECK_EQ(result.ordering.size(), points.size());
  return result;
}

std::vector<int> OpticsResult::ExtractDbscanClusters(double eps_prime) const {
  const int n = static_cast<int>(reachability.size());
  std::vector<int> labels(n, -1);
  int cluster = -1;
  for (int position = 0; position < n; ++position) {
    const int point = ordering[position];
    const double reach = reachability[point];
    if (reach == kUndefinedReachability || reach > eps_prime) {
      // Not density-reachable from the previous points at eps': either
      // noise or the start of a new cluster (decided by the next points).
      ++cluster;
      labels[point] = cluster;
    } else {
      labels[point] = cluster;
    }
  }
  // Clusters of size 1 whose point was never density-reachable are noise.
  std::vector<int> sizes(cluster + 1, 0);
  for (int point = 0; point < n; ++point) {
    if (labels[point] >= 0) ++sizes[labels[point]];
  }
  std::vector<int> remap(cluster + 1, -1);
  int next = 0;
  for (int c = 0; c <= cluster; ++c) {
    if (sizes[c] > 1) remap[c] = next++;
  }
  for (int point = 0; point < n; ++point) {
    labels[point] = labels[point] >= 0 ? remap[labels[point]] : -1;
  }
  return labels;
}

}  // namespace dlinf
