#ifndef DLINF_CLUSTER_OPTICS_H_
#define DLINF_CLUSTER_OPTICS_H_

#include <vector>

#include "geo/point.h"

namespace dlinf {

/// OPTICS (Ankerst et al. [11]), one of the clustering methods the paper
/// surveys for generating locations from stay points (Section III-B).
///
/// Produces the classic reachability ordering; ExtractDbscanClusters then
/// yields a DBSCAN-equivalent flat clustering for any eps' <= eps without
/// re-running the scan, which is the usual way OPTICS is applied.
struct OpticsOptions {
  double max_eps = 80.0;  ///< Upper bound on the neighbourhood radius.
  int min_points = 3;
};

struct OpticsResult {
  /// Visit order: indexes into the input point vector.
  std::vector<int> ordering;
  /// reachability[i] is the reachability distance of input point i
  /// (kUndefinedReachability when never reachable within max_eps).
  std::vector<double> reachability;

  static constexpr double kUndefinedReachability = -1.0;

  /// DBSCAN-equivalent flat labels at threshold eps' (-1 = noise).
  /// Requires eps' <= the max_eps used to build the result.
  std::vector<int> ExtractDbscanClusters(double eps_prime) const;
};

OpticsResult Optics(const std::vector<Point>& points,
                    const OpticsOptions& options = {});

}  // namespace dlinf

#endif  // DLINF_CLUSTER_OPTICS_H_
