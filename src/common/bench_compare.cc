#include "common/bench_compare.h"

#include <cstdio>

namespace dlinf {

namespace {
constexpr char kCalibrationKey[] = "_calibration";
}  // namespace

BenchComparison CompareBenchResults(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& pr,
    const BenchCompareOptions& options) {
  BenchComparison comparison;

  const auto base_cal = baseline.find(kCalibrationKey);
  const auto pr_cal = pr.find(kCalibrationKey);
  if (base_cal != baseline.end() && pr_cal != pr.end() &&
      base_cal->second > 0.0 && pr_cal->second > 0.0) {
    comparison.scale = base_cal->second / pr_cal->second;
    comparison.calibrated = true;
  }

  for (const auto& [name, base_seconds] : baseline) {
    if (name == kCalibrationKey) continue;
    const auto it = pr.find(name);
    if (it == pr.end()) {
      comparison.missing.push_back(name);
      continue;
    }
    BenchCompareRow row;
    row.name = name;
    row.base_seconds = base_seconds;
    row.pr_seconds = it->second * comparison.scale;
    row.ratio = base_seconds > 0.0 ? row.pr_seconds / base_seconds : 1.0;
    row.gated = base_seconds >= options.min_seconds;
    row.regressed = row.gated && row.ratio > 1.0 + options.threshold;
    if (row.regressed) ++comparison.regressions;
    comparison.rows.push_back(std::move(row));
  }
  for (const auto& [name, pr_seconds] : pr) {
    if (name != kCalibrationKey && baseline.count(name) == 0) {
      comparison.new_entries.emplace_back(name,
                                          pr_seconds * comparison.scale);
    }
  }
  return comparison;
}

std::string BenchComparisonMarkdown(const BenchComparison& comparison,
                                    const BenchCompareOptions& options) {
  std::string out = "### Benchmark comparison\n\n";
  char buffer[256];

  if (!comparison.ok()) {
    std::snprintf(buffer, sizeof(buffer),
                  "**FAIL**: %d regression(s) beyond +%.0f%%, %d missing "
                  "benchmark(s)\n\n",
                  comparison.regressions, options.threshold * 100.0,
                  static_cast<int>(comparison.missing.size()));
    out += buffer;
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "All benchmarks within +%.0f%% of baseline.\n\n",
                  options.threshold * 100.0);
    out += buffer;
  }

  for (const std::string& name : comparison.missing) {
    out += "- :red_circle: `" + name + "` **missing from PR results**\n";
  }
  for (const BenchCompareRow& row : comparison.rows) {
    if (!row.regressed) continue;
    std::snprintf(buffer, sizeof(buffer),
                  "- :red_circle: `%s` **%.0f%% slower** (%.4fs -> %.4fs)\n",
                  row.name.c_str(), (row.ratio - 1.0) * 100.0,
                  row.base_seconds, row.pr_seconds);
    out += buffer;
  }
  for (const BenchCompareRow& row : comparison.rows) {
    if (row.gated && !row.regressed &&
        row.ratio < 1.0 - options.threshold) {
      std::snprintf(buffer, sizeof(buffer),
                    "- :zap: `%s` **%.0f%% faster** (%.4fs -> %.4fs)\n",
                    row.name.c_str(), (1.0 - row.ratio) * 100.0,
                    row.base_seconds, row.pr_seconds);
      out += buffer;
    }
  }
  for (const auto& [name, seconds] : comparison.new_entries) {
    std::snprintf(buffer, sizeof(buffer),
                  "- :new: `%s` %.4fs (no baseline yet; gates once the "
                  "committed baseline includes it)\n",
                  name.c_str(), seconds);
    out += buffer;
  }

  out += "\n| benchmark | baseline(s) | pr(s) | ratio |\n";
  out += "|---|---:|---:|---:|\n";
  for (const BenchCompareRow& row : comparison.rows) {
    std::snprintf(buffer, sizeof(buffer), "| `%s` | %.4f | %.4f | %.3f%s |\n",
                  row.name.c_str(), row.base_seconds, row.pr_seconds,
                  row.ratio, row.gated ? "" : " (not gated)");
    out += buffer;
  }
  for (const auto& [name, seconds] : comparison.new_entries) {
    std::snprintf(buffer, sizeof(buffer), "| `%s` | - | %.4f | new |\n",
                  name.c_str(), seconds);
    out += buffer;
  }
  return out;
}

}  // namespace dlinf
