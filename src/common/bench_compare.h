#ifndef DLINF_COMMON_BENCH_COMPARE_H_
#define DLINF_COMMON_BENCH_COMPARE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

/// \file
/// The benchmark-regression comparison (the logic behind
/// tools/bench_compare, extracted so it is unit-testable).
///
/// Both inputs are flat {"name": seconds} maps produced by the bench
/// binaries' --json flag. Policy:
///  - Every baseline benchmark must exist in the candidate ("PR") results;
///    a missing one is a hard failure (a benchmark silently disappearing is
///    exactly the regression the gate exists to catch).
///  - A gated benchmark (baseline >= min_seconds) must not be more than
///    `threshold` slower after calibration normalization.
///  - A benchmark present only in the candidate is **new**: reported
///    informationally, never a failure. New code can add `profiler.*` keys
///    without a lockstep baseline regeneration; they start gating once the
///    committed baseline picks them up.
///  - `_calibration` entries are machine-speed metadata, not benchmarks:
///    when both sides have one, candidate times are scaled by
///    baseline_calibration / pr_calibration before comparison.

namespace dlinf {

struct BenchCompareOptions {
  double threshold = 0.25;    ///< Allowed slowdown ratio above 1.0.
  double min_seconds = 0.001; ///< Baselines below this are not ratio-gated.
};

/// One benchmark present on both sides.
struct BenchCompareRow {
  std::string name;
  double base_seconds = 0.0;
  double pr_seconds = 0.0;  ///< Calibration-normalized.
  double ratio = 1.0;
  bool gated = false;       ///< Above the min-seconds floor.
  bool regressed = false;
};

/// The full comparison outcome.
struct BenchComparison {
  double scale = 1.0;       ///< Applied to candidate seconds.
  bool calibrated = false;  ///< Both sides carried `_calibration`.
  std::vector<BenchCompareRow> rows;
  /// Candidate-only benchmarks (name, normalized seconds): informational.
  std::vector<std::pair<std::string, double>> new_entries;
  /// Baseline benchmarks absent from the candidate: hard failures.
  std::vector<std::string> missing;
  int regressions = 0;

  bool ok() const { return regressions == 0 && missing.empty(); }
};

/// Compares candidate results against the committed baseline under the
/// policy above. Pure function of its inputs.
BenchComparison CompareBenchResults(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& pr,
    const BenchCompareOptions& options = BenchCompareOptions());

/// The GitHub-flavored-markdown digest CI appends to $GITHUB_STEP_SUMMARY:
/// verdict, regression/improvement highlights, new-benchmark notes, full
/// table.
std::string BenchComparisonMarkdown(const BenchComparison& comparison,
                                    const BenchCompareOptions& options);

}  // namespace dlinf

#endif  // DLINF_COMMON_BENCH_COMPARE_H_
