#ifndef DLINF_COMMON_CHECK_H_
#define DLINF_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file
/// Lightweight CHECK/LOG macros for invariant enforcement.
///
/// Library code in this project does not use exceptions (Google style).
/// Programmer errors and violated invariants abort with a message; recoverable
/// conditions are reported through return values (std::optional / bool).

namespace dlinf {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
/// Used by the CHECK family of macros below; not for direct use.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dlinf

/// Aborts with a message if `condition` is false. Additional context may be
/// streamed in: `CHECK(n > 0) << "n was" << n;`
#define CHECK(condition)                                                     \
  if (!(condition))                                                          \
  ::dlinf::internal::CheckFailureStream("CHECK", __FILE__, __LINE__,         \
                                        #condition)

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#ifdef NDEBUG
#define DCHECK(condition) \
  if (false) CHECK(condition)
#else
#define DCHECK(condition) CHECK(condition)
#endif

#endif  // DLINF_COMMON_CHECK_H_
