#include "common/csv.h"

#include <fstream>

#include "common/string_util.h"

namespace dlinf {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::optional<CsvTable> ReadCsv(const std::string& path, char sep) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, sep);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) return std::nullopt;
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return std::nullopt;  // Empty file: not a valid table.
  return table;
}

bool WriteCsv(const std::string& path, const CsvTable& table, char sep) {
  std::ofstream out(path);
  if (!out) return false;
  const std::string sep_str(1, sep);
  out << Join(table.header, sep_str) << "\n";
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) return false;
    out << Join(row, sep_str) << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace dlinf
