#ifndef DLINF_COMMON_CSV_H_
#define DLINF_COMMON_CSV_H_

#include <optional>
#include <string>
#include <vector>

namespace dlinf {

/// A parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Reads a simple (unquoted) CSV file. Returns nullopt if the file cannot be
/// opened or rows have inconsistent widths.
std::optional<CsvTable> ReadCsv(const std::string& path, char sep = ',');

/// Writes a CSV file; returns false on I/O failure.
bool WriteCsv(const std::string& path, const CsvTable& table, char sep = ',');

}  // namespace dlinf

#endif  // DLINF_COMMON_CSV_H_
