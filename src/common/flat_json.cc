#include "common/flat_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace dlinf {

namespace {

void SkipSpace(std::string_view text, size_t* pos) {
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
}

/// Parses a JSON string at `*pos` (must point at the opening quote). Only
/// the escapes `\"` and `\\` are understood — enough for metric names.
bool ParseKey(std::string_view text, size_t* pos, std::string* out) {
  if (*pos >= text.size() || text[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < text.size()) {
    const char c = text[(*pos)++];
    if (c == '"') return true;
    if (c == '\\') {
      if (*pos >= text.size()) return false;
      const char escaped = text[(*pos)++];
      if (escaped != '"' && escaped != '\\') return false;
      out->push_back(escaped);
    } else {
      out->push_back(c);
    }
  }
  return false;
}

bool ParseNumber(std::string_view text, size_t* pos, double* out) {
  // strtod needs a NUL-terminated buffer; numbers are short, so copy the
  // next few characters.
  const std::string buffer(text.substr(*pos, 64));
  char* end = nullptr;
  *out = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str()) return false;
  *pos += static_cast<size_t>(end - buffer.c_str());
  return true;
}

}  // namespace

std::string FlatJsonSerialize(const std::map<std::string, double>& values) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : values) {
    CHECK(key.find('"') == std::string::npos &&
          key.find('\\') == std::string::npos);
    out += first ? "\n" : ",\n";
    first = false;
    out += StrPrintf("  \"%s\": %.17g", key.c_str(), value);
  }
  out += "\n}\n";
  return out;
}

std::optional<std::map<std::string, double>> FlatJsonParse(
    std::string_view text) {
  std::map<std::string, double> values;
  size_t pos = 0;
  SkipSpace(text, &pos);
  if (pos >= text.size() || text[pos] != '{') return std::nullopt;
  ++pos;
  SkipSpace(text, &pos);
  if (pos < text.size() && text[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      std::string key;
      double value = 0.0;
      SkipSpace(text, &pos);
      if (!ParseKey(text, &pos, &key)) return std::nullopt;
      SkipSpace(text, &pos);
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
      SkipSpace(text, &pos);
      if (!ParseNumber(text, &pos, &value)) return std::nullopt;
      values[key] = value;
      SkipSpace(text, &pos);
      if (pos >= text.size()) return std::nullopt;
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        break;
      }
      return std::nullopt;
    }
  }
  SkipSpace(text, &pos);
  if (pos != text.size()) return std::nullopt;
  return values;
}

std::optional<std::map<std::string, double>> FlatJsonLoad(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FlatJsonParse(buffer.str());
}

bool FlatJsonSave(const std::string& path,
                  const std::map<std::string, double>& values) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << FlatJsonSerialize(values);
  return static_cast<bool>(out.flush());
}

}  // namespace dlinf
