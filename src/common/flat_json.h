#ifndef DLINF_COMMON_FLAT_JSON_H_
#define DLINF_COMMON_FLAT_JSON_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

/// \file
/// Flat string->number JSON documents — the interchange format of the bench
/// regression gate (`bench/baselines/BENCH_baseline.json`, `BENCH_pr.json`;
/// see DESIGN.md §7). Only the single shape `{"key": 1.25, ...}` is
/// supported: no nesting, no arrays, no non-numeric values. Serialization is
/// deterministic (keys sorted, shortest round-trip numbers) so committed
/// baselines diff cleanly.

namespace dlinf {

/// Serializes `values` as a flat JSON object, keys sorted, one entry per
/// line. Keys must not contain `"` or `\` (CHECK).
std::string FlatJsonSerialize(const std::map<std::string, double>& values);

/// Parses a flat JSON object. Returns nullopt on any syntax error, nesting,
/// or non-numeric value.
std::optional<std::map<std::string, double>> FlatJsonParse(
    std::string_view text);

/// Reads and parses `path`; nullopt if the file is missing or malformed.
std::optional<std::map<std::string, double>> FlatJsonLoad(
    const std::string& path);

/// Serializes `values` to `path`; false on I/O failure.
bool FlatJsonSave(const std::string& path,
                  const std::map<std::string, double>& values);

}  // namespace dlinf

#endif  // DLINF_COMMON_FLAT_JSON_H_
