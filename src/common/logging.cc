#include "common/logging.h"

#include <atomic>

namespace dlinf {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

}  // namespace

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

}  // namespace dlinf
