#ifndef DLINF_COMMON_LOGGING_H_
#define DLINF_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

/// \file
/// Minimal leveled logging to stderr: `LOG_INFO << "built pool of" << n;`

namespace dlinf {

/// Global log verbosity. Messages below this level are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level that is actually emitted.
LogLevel MinLogLevel();

/// Sets the process-wide minimum emitted level (e.g. silence benches).
void SetMinLogLevel(LogLevel level);

namespace internal {

/// One log statement; flushes its buffer to stderr on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* tag) : level_(level) {
    stream_ << "[" << tag << "]";
  }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  ~LogStream() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dlinf

#define LOG_DEBUG ::dlinf::internal::LogStream(::dlinf::LogLevel::kDebug, "DEBUG")
#define LOG_INFO ::dlinf::internal::LogStream(::dlinf::LogLevel::kInfo, "INFO")
#define LOG_WARNING \
  ::dlinf::internal::LogStream(::dlinf::LogLevel::kWarning, "WARN")
#define LOG_ERROR ::dlinf::internal::LogStream(::dlinf::LogLevel::kError, "ERROR")

#endif  // DLINF_COMMON_LOGGING_H_
