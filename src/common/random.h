#ifndef DLINF_COMMON_RANDOM_H_
#define DLINF_COMMON_RANDOM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace dlinf {

/// Deterministic random number generator used everywhere in the project.
///
/// Wraps std::mt19937_64 behind a small, explicit API so that experiments are
/// reproducible from a single seed and so call sites read as intent
/// ("rng.Bernoulli(p_delay)") rather than distribution plumbing.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    DCHECK(lo <= hi);
    return Canonical() * (hi - lo) + lo;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal: exp(N(log_mean, log_stddev)).
  double LogNormal(double log_mean, double log_stddev) {
    return std::lognormal_distribution<double>(log_mean, log_stddev)(engine_);
  }

  /// Exponential with the given rate (lambda).
  double Exponential(double rate) {
    DCHECK(rate > 0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    DCHECK(p >= 0.0 && p <= 1.0);
    return Canonical() < p;
  }

  /// Poisson with the given mean.
  int Poisson(double mean) {
    DCHECK(mean > 0);
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights) {
    DCHECK(!weights.empty());
    return std::discrete_distribution<size_t>(weights.begin(), weights.end())(
        engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// Picks one element uniformly at random. `items` must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    CHECK(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, items.size() - 1))];
  }

  /// Derives an independent child generator; useful for giving each worker
  /// thread or each simulated entity its own deterministic stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  /// Bit-for-bit what libstdc++'s std::generate_canonical<double, 53> does
  /// for mt19937_64 — one 64-bit draw, double(x)/2^64, clamped below 1.0 —
  /// without the two std::log calls the library version performs on every
  /// invocation (they dominated training profiles: dropout masks draw this
  /// tens of millions of times per run). Uniform() and Bernoulli() built on
  /// it therefore consume the engine identically to their previous
  /// std::uniform_real_distribution / std::bernoulli_distribution forms, so
  /// seeded sequences (and pinned golden metrics) are unchanged.
  double Canonical() {
    double c = static_cast<double>(engine_()) * 0x1p-64;
    if (c >= 1.0) c = std::nextafter(1.0, 0.0);
    return c;
  }

  std::mt19937_64 engine_;
};

}  // namespace dlinf

#endif  // DLINF_COMMON_RANDOM_H_
