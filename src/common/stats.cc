#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dlinf {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

double Percentile(const std::vector<double>& values, double q) {
  CHECK(!values.empty());
  CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t below = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(below);
  if (below + 1 >= sorted.size()) return sorted.back();
  return sorted[below] * (1.0 - frac) + sorted[below + 1] * frac;
}

double Median(const std::vector<double>& values) {
  return Percentile(values, 0.5);
}

Histogram::Histogram(double lo, double width, int num_buckets)
    : lo_(lo), width_(width), counts_(num_buckets, 0) {
  CHECK(width > 0);
  CHECK(num_buckets > 0);
}

void Histogram::Add(double value) {
  int bucket = static_cast<int>(std::floor((value - lo_) / width_));
  bucket = std::clamp(bucket, 0, num_buckets() - 1);
  ++counts_[bucket];
  ++total_;
}

double Histogram::Fraction(int i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(i)) / static_cast<double>(total_);
}

double Histogram::CumulativeFraction(int i) const {
  if (total_ == 0) return 0.0;
  CHECK(i >= 0 && i < num_buckets());
  int64_t cum = 0;
  for (int b = 0; b <= i; ++b) cum += counts_[b];
  return static_cast<double>(cum) / static_cast<double>(total_);
}

int64_t Histogram::count(int i) const {
  CHECK(i >= 0 && i < num_buckets());
  return counts_[i];
}

}  // namespace dlinf
