#ifndef DLINF_COMMON_STATS_H_
#define DLINF_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

namespace dlinf {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, q in [0, 1]. Input need not be sorted.
/// Aborts on empty input.
double Percentile(const std::vector<double>& values, double q);

/// Median shorthand (Percentile with q = 0.5).
double Median(const std::vector<double>& values);

/// Fixed-width histogram used when printing the paper's distribution figures
/// (Fig. 9) as text series.
class Histogram {
 public:
  /// Buckets [lo, lo+width), [lo+width, lo+2*width), ... `num_buckets` total;
  /// values outside the range are clamped into the first / last bucket.
  Histogram(double lo, double width, int num_buckets);

  void Add(double value);

  /// Fraction of all added values that fell into bucket `i`.
  double Fraction(int i) const;

  /// Fraction of values in buckets 0..i (inclusive): an empirical CDF.
  double CumulativeFraction(int i) const;

  /// Inclusive lower edge of bucket `i`.
  double BucketLow(int i) const { return lo_ + width_ * i; }

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t total_count() const { return total_; }
  int64_t count(int i) const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace dlinf

#endif  // DLINF_COMMON_STATS_H_
