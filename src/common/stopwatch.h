#ifndef DLINF_COMMON_STOPWATCH_H_
#define DLINF_COMMON_STOPWATCH_H_

#include <chrono>

namespace dlinf {

/// Wall-clock stopwatch used by the scalability benchmarks.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from zero.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dlinf

#endif  // DLINF_COMMON_STOPWATCH_H_
