#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace dlinf {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  CHECK_GE(needed, 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace dlinf
