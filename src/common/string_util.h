#ifndef DLINF_COMMON_STRING_UTIL_H_
#define DLINF_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace dlinf {

/// Splits on every occurrence of `sep`; adjacent separators yield empty
/// fields (CSV semantics).
std::vector<std::string> Split(const std::string& text, char sep);

/// Joins pieces with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& text);

/// printf-style formatting into a std::string (gcc 12 lacks std::format).
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dlinf

#endif  // DLINF_COMMON_STRING_UTIL_H_
