#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace dlinf {

ThreadPool::ThreadPool(int num_threads) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  tasks_submitted_ = registry.GetCounter("threadpool.tasks_submitted");
  tasks_executed_ = registry.GetCounter("threadpool.tasks_executed");
  queue_depth_ = registry.GetGauge("threadpool.queue_depth");
  task_seconds_ = registry.GetHistogram("threadpool.task_seconds");

  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      obs::prof::RegisterCurrentThread("pool." + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
    queue_depth_->Set(static_cast<double>(tasks_.size()));
  }
  tasks_submitted_->Add(1);
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  CHECK_GE(count, 0) << "ParallelFor over a negative range";
  if (count == 0) return;
  // An exception in any block is captured (first writer wins) and rethrown
  // on the calling thread after the barrier — it must not die in a worker
  // (std::terminate) or be silently swallowed. Later indexes may still run;
  // blocks that start after the capture skip their work.
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<bool> errored{false};
  // Up to 4 blocks per worker for load balancing; never more blocks than
  // items, so count < num_threads degenerates to one index per block.
  const int64_t num_blocks =
      std::min<int64_t>(count, static_cast<int64_t>(workers_.size()) * 4);
  const int64_t block = (count + num_blocks - 1) / num_blocks;
  for (int64_t begin = 0; begin < count; begin += block) {
    const int64_t end = std::min(count, begin + block);
    Submit([begin, end, &fn, &error_mu, &first_error, &errored] {
      if (errored.load(std::memory_order_acquire)) return;
      try {
        for (int64_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        errored.store(true, std::memory_order_release);
      }
    });
  }
  Wait();
  if (errored.load(std::memory_order_acquire)) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // Shutting down with no work left.
      task = std::move(tasks_.front());
      tasks_.pop();
      queue_depth_->Set(static_cast<double>(tasks_.size()));
    }
    if (obs::MetricsEnabled()) {
      Stopwatch watch;
      task();
      task_seconds_->Observe(watch.ElapsedSeconds());
    } else {
      task();
    }
    tasks_executed_->Add(1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dlinf
