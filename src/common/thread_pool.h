#ifndef DLINF_COMMON_THREAD_POOL_H_
#define DLINF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dlinf {

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// Fixed-size worker pool.
///
/// The paper parallelizes stay-point extraction at trajectory level and
/// candidate-pool construction at station level (Section V-F); this pool is
/// the substrate for both. Tasks passed to Submit may not throw (library
/// code is exception-free); ParallelFor additionally guards against
/// throwing lambdas from application code by rethrowing the first exception
/// on the calling thread.
///
/// Instrumentation (see DESIGN.md §5): every pool feeds the global metrics
/// `threadpool.tasks_submitted` / `threadpool.tasks_executed` (counters),
/// `threadpool.queue_depth` (gauge) and `threadpool.task_seconds`
/// (histogram; its sum is total busy time, so utilisation =
/// sum / (wall-clock x num_threads)).
class ThreadPool {
 public:
  /// Starts `num_threads` workers. Zero or negative requests are clamped to
  /// one worker — the pool is always usable.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// Work is distributed in contiguous blocks; when count < num_threads each
  /// index gets its own block, so small ranges still use every worker.
  /// count == 0 is a no-op; a negative count is a programmer error (CHECK).
  /// If fn throws, the first exception is rethrown here (on the calling
  /// thread) after all blocks finish; remaining blocks may be skipped, so
  /// treat the iteration as incomplete. The pool stays usable afterwards.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;

  // Global-registry metrics (shared across pools; pointers are stable).
  obs::Counter* tasks_submitted_;
  obs::Counter* tasks_executed_;
  obs::Gauge* queue_depth_;
  obs::Histogram* task_seconds_;
};

}  // namespace dlinf

#endif  // DLINF_COMMON_THREAD_POOL_H_
