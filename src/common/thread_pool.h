#ifndef DLINF_COMMON_THREAD_POOL_H_
#define DLINF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dlinf {

/// Fixed-size worker pool.
///
/// The paper parallelizes stay-point extraction at trajectory level and
/// candidate-pool construction at station level (Section V-F); this pool is
/// the substrate for both. Tasks may not throw (library code is
/// exception-free).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// Work is distributed in contiguous blocks.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace dlinf

#endif  // DLINF_COMMON_THREAD_POOL_H_
