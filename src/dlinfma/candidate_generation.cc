#include "dlinfma/candidate_generation.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_set>

#include "cluster/grid_merge.h"
#include "cluster/hierarchical.h"
#include "common/check.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "traj/corruption.h"

namespace dlinf {
namespace dlinfma {

const std::vector<AddressTripRecord> CandidateGeneration::kNoTrips = {};
const std::vector<int64_t> CandidateGeneration::kNoTripIds = {};

namespace {

/// Stage 1: noise-filter and stay-point-detect every trip's trajectory.
std::vector<StayPoint> ExtractStayPoints(
    const sim::World& world, const CandidateGeneration::Options& options,
    ThreadPool* pool) {
  std::vector<std::vector<StayPoint>> per_trip(world.trips.size());
  auto process = [&](int64_t i) {
    const sim::DeliveryTrip& trip = world.trips[i];
    // This is where the pipeline ingests the raw GPS stream, so it is where
    // an armed fault plan corrupts it (traj.gps.*; see traj/corruption.h).
    // Disarmed runs skip even the copy.
    const Trajectory* raw = &trip.trajectory;
    Trajectory corrupted;
    if (fault::Armed()) {
      corrupted = traj::ApplyTrajectoryFaults(trip.trajectory);
      raw = &corrupted;
    }
    const Trajectory cleaned = FilterNoise(*raw, options.noise_filter);
    std::vector<StayPoint> stays =
        DetectStayPoints(cleaned, options.stay_point);
    for (StayPoint& sp : stays) sp.trip_id = trip.id;
    per_trip[i] = std::move(stays);
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(world.trips.size()), process);
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(world.trips.size()); ++i) {
      process(i);
    }
  }
  std::vector<StayPoint> all;
  for (std::vector<StayPoint>& stays : per_trip) {
    all.insert(all.end(), stays.begin(), stays.end());
  }
  return all;
}

/// Stage 2: bi-weekly hierarchical clustering + merge (Section III-B), or
/// grid-merging for the DLInfMA-Grid variant. Member ids of the returned
/// clusters index `stay_points`.
std::vector<PointCluster> ClusterStayPoints(
    const std::vector<StayPoint>& stay_points,
    const CandidateGeneration::Options& options) {
  if (options.use_grid_merge) {
    std::vector<Point> points;
    points.reserve(stay_points.size());
    for (const StayPoint& sp : stay_points) points.push_back(sp.location);
    return GridMergeCluster(points, options.cluster_distance_m);
  }

  // Partition stay-point indexes into time batches.
  double t0 = 0.0;
  for (size_t i = 0; i < stay_points.size(); ++i) {
    t0 = i == 0 ? stay_points[i].Time() : std::min(t0, stay_points[i].Time());
  }
  std::unordered_map<int64_t, std::vector<int64_t>> batches;
  for (size_t i = 0; i < stay_points.size(); ++i) {
    const int64_t batch = static_cast<int64_t>(
        (stay_points[i].Time() - t0) / options.batch_window_s);
    batches[batch].push_back(static_cast<int64_t>(i));
  }

  // Cluster each batch independently, then merge the accumulated clusters
  // with the same procedure.
  std::vector<PointCluster> accumulated;
  std::vector<int64_t> batch_keys;
  for (const auto& [key, ids] : batches) batch_keys.push_back(key);
  std::sort(batch_keys.begin(), batch_keys.end());
  for (int64_t key : batch_keys) {
    std::vector<PointCluster> singletons;
    for (int64_t index : batches[key]) {
      PointCluster c;
      c.centroid = stay_points[index].location;
      c.weight = 1.0;
      c.members = {index};
      singletons.push_back(std::move(c));
    }
    std::vector<PointCluster> batch_clusters = AgglomerateByDistance(
        std::move(singletons), options.cluster_distance_m);
    accumulated.insert(accumulated.end(),
                       std::make_move_iterator(batch_clusters.begin()),
                       std::make_move_iterator(batch_clusters.end()));
    accumulated =
        AgglomerateByDistance(std::move(accumulated),
                              options.cluster_distance_m);
  }
  return accumulated;
}

CandidateProfile BuildProfile(const PointCluster& cluster,
                              const std::vector<StayPoint>& stay_points) {
  CandidateProfile profile;
  std::unordered_set<int64_t> couriers;
  double duration_sum = 0.0;
  for (int64_t member : cluster.members) {
    const StayPoint& sp = stay_points[member];
    duration_sum += sp.Duration();
    couriers.insert(sp.courier_id);
    const double seconds_in_day = std::fmod(sp.Time(), 86400.0);
    const int hour = std::clamp(static_cast<int>(seconds_in_day / 3600.0), 0,
                                23);
    profile.time_distribution[hour] += 1.0;
  }
  const double n = static_cast<double>(cluster.members.size());
  profile.avg_duration_s = n > 0 ? duration_sum / n : 0.0;
  profile.num_couriers = static_cast<int>(couriers.size());
  if (n > 0) {
    for (double& bin : profile.time_distribution) bin /= n;
  }
  return profile;
}

}  // namespace

CandidateGeneration CandidateGeneration::Build(const sim::World& world,
                                               const Options& options,
                                               ThreadPool* pool) {
  obs::Span span("candidate_generation");
  CandidateGeneration gen;
  gen.num_trips_ = static_cast<int64_t>(world.trips.size());
  {
    obs::Span stage("stay_point_extraction");
    gen.stay_points_ = ExtractStayPoints(world, options, pool);
  }
  obs::MetricsRegistry::Global()
      .GetCounter("pipeline.stay_points_extracted")
      ->Add(static_cast<int64_t>(gen.stay_points_.size()));

  std::vector<PointCluster> clusters;
  {
    obs::Span stage("clustering");
    clusters = ClusterStayPoints(gen.stay_points_, options);
  }

  obs::Span stage("candidate_index");
  // Candidates + the stay->candidate assignment.
  std::vector<int64_t> candidate_of_stay(gen.stay_points_.size(), -1);
  gen.candidates_.reserve(clusters.size());
  for (const PointCluster& cluster : clusters) {
    LocationCandidate candidate;
    candidate.id = static_cast<int64_t>(gen.candidates_.size());
    candidate.location = cluster.centroid;
    candidate.num_stay_points = static_cast<int>(cluster.members.size());
    candidate.profile = BuildProfile(cluster, gen.stay_points_);
    for (int64_t member : cluster.members) {
      candidate_of_stay[member] = candidate.id;
    }
    gen.candidates_.push_back(std::move(candidate));
  }
  obs::MetricsRegistry::Global()
      .GetCounter("pipeline.candidates_generated")
      ->Add(static_cast<int64_t>(gen.candidates_.size()));

  // Per-trip chronological candidate visits.
  gen.trip_visits_.assign(world.trips.size(), {});
  for (size_t i = 0; i < gen.stay_points_.size(); ++i) {
    const StayPoint& sp = gen.stay_points_[i];
    CHECK_GE(candidate_of_stay[i], 0);
    gen.trip_visits_[sp.trip_id].push_back(
        TripCandidateVisit{candidate_of_stay[i], sp.Time(), sp.Duration()});
  }
  for (auto& visits : gen.trip_visits_) {
    std::sort(visits.begin(), visits.end(),
              [](const TripCandidateVisit& a, const TripCandidateVisit& b) {
                return a.time < b.time;
              });
  }

  // Candidate -> trips passing through (deduplicated).
  for (int64_t trip_id = 0; trip_id < gen.num_trips_; ++trip_id) {
    std::unordered_set<int64_t> seen;
    for (const TripCandidateVisit& visit : gen.trip_visits_[trip_id]) {
      if (seen.insert(visit.candidate_id).second) {
        gen.candidate_trips_[visit.candidate_id].push_back(trip_id);
      }
    }
  }

  // Address -> trips with recorded delivery times; building -> trips.
  for (const sim::DeliveryTrip& trip : world.trips) {
    std::unordered_set<int64_t> trip_buildings;
    for (const sim::Waybill& waybill : trip.waybills) {
      gen.address_trips_[waybill.address_id].push_back(
          AddressTripRecord{trip.id, waybill.recorded_delivery_time});
      trip_buildings.insert(world.address(waybill.address_id).building_id);
    }
    for (int64_t building_id : trip_buildings) {
      gen.building_trips_[building_id].push_back(trip.id);
    }
  }
  return gen;
}

const LocationCandidate& CandidateGeneration::candidate(int64_t id) const {
  CHECK(id >= 0 && id < static_cast<int64_t>(candidates_.size()));
  return candidates_[id];
}

const std::vector<AddressTripRecord>& CandidateGeneration::address_trips(
    int64_t address_id) const {
  auto it = address_trips_.find(address_id);
  return it == address_trips_.end() ? kNoTrips : it->second;
}

std::vector<int64_t> CandidateGeneration::Retrieve(int64_t address_id) const {
  std::unordered_set<int64_t> result;
  for (const AddressTripRecord& record : address_trips(address_id)) {
    for (const TripCandidateVisit& visit : trip_visits_[record.trip_id]) {
      // Temporal upper bound: a stay later than the recorded delivery time
      // cannot be the delivery (Section III-C).
      if (visit.time <= record.recorded_delivery_time) {
        result.insert(visit.candidate_id);
      }
    }
  }
  std::vector<int64_t> sorted(result.begin(), result.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

const std::vector<int64_t>& CandidateGeneration::trips_through(
    int64_t candidate_id) const {
  auto it = candidate_trips_.find(candidate_id);
  return it == candidate_trips_.end() ? kNoTripIds : it->second;
}

const std::vector<int64_t>& CandidateGeneration::trips_of_building(
    int64_t building_id) const {
  auto it = building_trips_.find(building_id);
  return it == building_trips_.end() ? kNoTripIds : it->second;
}

std::vector<int64_t> CandidateGeneration::trip_ids_of_address(
    int64_t address_id) const {
  std::vector<int64_t> ids;
  for (const AddressTripRecord& record : address_trips(address_id)) {
    ids.push_back(record.trip_id);
  }
  return ids;
}

}  // namespace dlinfma
}  // namespace dlinf
