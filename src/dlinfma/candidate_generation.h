#ifndef DLINF_DLINFMA_CANDIDATE_GENERATION_H_
#define DLINF_DLINFMA_CANDIDATE_GENERATION_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "geo/point.h"
#include "sim/world.h"
#include "traj/noise_filter.h"
#include "traj/stay_point.h"

namespace dlinf {

namespace io {
class CandidateGenerationCodec;
}  // namespace io

namespace stream {
class CandidateIndexUpdater;
}  // namespace stream

namespace dlinfma {

/// Aggregate profile of a location candidate, mined from the stay points in
/// its cluster (Section III-B): used later as "profile features".
struct CandidateProfile {
  double avg_duration_s = 0.0;  ///< Mean stay duration at this location.
  int num_couriers = 0;         ///< Distinct couriers who stayed here.
  /// Hour-of-day distribution of visits (normalized to sum 1).
  std::array<double, 24> time_distribution{};
};

/// One delivery-location candidate: a cluster centroid of stay points.
struct LocationCandidate {
  int64_t id = -1;
  Point location;
  int num_stay_points = 0;
  CandidateProfile profile;
};

/// One pass of a trip through a candidate: the stay-point time (midpoint)
/// and duration.
struct TripCandidateVisit {
  int64_t candidate_id = -1;
  double time = 0.0;
  double duration = 0.0;
};

/// A (trip, recorded delivery time) pair for an address.
struct AddressTripRecord {
  int64_t trip_id = -1;
  double recorded_delivery_time = 0.0;
};

/// The Location Candidate Generation component (Section III).
///
/// Build() runs the full mining pass over a dataset's trips:
///  1. Stay-point extraction: GPS noise filtering [8] + stay-point detection
///     [7] per trajectory (parallelized trajectory-level when a thread pool
///     is supplied, as in the paper's deployment).
///  2. Candidate-pool construction: stay points are clustered bi-weekly with
///     threshold-D hierarchical clustering, then batch results are merged by
///     the same procedure; cluster centroids become candidates, and cluster
///     members yield the profiles.
///  3. Retrieval support: per-trip candidate visits and per-address trip
///     records back Retrieve(), which applies the recorded-delivery-time
///     upper bound of Section III-C.
class CandidateGeneration {
 public:
  struct Options {
    NoiseFilterOptions noise_filter;
    StayPointOptions stay_point;  ///< D_max = 20 m, T_min = 30 s defaults.
    double cluster_distance_m = 40.0;       ///< D of Section III-B.
    double batch_window_s = 14.0 * 86400.0; ///< Bi-weekly batching.
    /// DLInfMA-Grid variant: replace hierarchical clustering with
    /// grid-merging over cells of cluster_distance_m.
    bool use_grid_merge = false;
  };

  /// Mines candidates from every trip in `world`.
  static CandidateGeneration Build(const sim::World& world,
                                   const Options& options,
                                   ThreadPool* pool = nullptr);

  /// The candidate pool.
  const std::vector<LocationCandidate>& candidates() const {
    return candidates_;
  }
  const LocationCandidate& candidate(int64_t id) const;

  /// All extracted stay points (tagged with courier and trip).
  const std::vector<StayPoint>& stay_points() const { return stay_points_; }

  /// Candidate visits of each trip, chronological, indexed by trip id.
  const std::vector<std::vector<TripCandidateVisit>>& trip_visits() const {
    return trip_visits_;
  }

  /// Trips involving an address, with the recorded delivery times of its
  /// waybills (TR_j of Section IV-A). Empty for never-delivered addresses.
  const std::vector<AddressTripRecord>& address_trips(int64_t address_id) const;

  /// Section III-C retrieval: the union over the address's trips of
  /// candidates visited no later than the trip's recorded delivery time for
  /// this address. Sorted ascending, deduplicated.
  std::vector<int64_t> Retrieve(int64_t address_id) const;

  /// Ids of trips that pass through the candidate (any time).
  const std::vector<int64_t>& trips_through(int64_t candidate_id) const;

  /// Ids of trips that involve at least one waybill of the building.
  const std::vector<int64_t>& trips_of_building(int64_t building_id) const;

  /// Ids of trips that involve the address itself (for the LC_addr ablation).
  std::vector<int64_t> trip_ids_of_address(int64_t address_id) const;

  int64_t num_trips() const { return num_trips_; }

 private:
  CandidateGeneration() = default;

  /// The artifact serialization layer (src/io) persists and restores the
  /// full mined state — including the retrieval indexes — so warm-started
  /// serving never re-runs the mining pass.
  friend class dlinf::io::CandidateGenerationCodec;

  /// The streaming ingestion layer (src/stream) maintains the same state
  /// incrementally (insert/merge per stay point) and materializes snapshots
  /// without re-running the mining pass.
  friend class dlinf::stream::CandidateIndexUpdater;

  std::vector<StayPoint> stay_points_;
  std::vector<LocationCandidate> candidates_;
  std::vector<std::vector<TripCandidateVisit>> trip_visits_;
  std::unordered_map<int64_t, std::vector<AddressTripRecord>> address_trips_;
  std::unordered_map<int64_t, std::vector<int64_t>> candidate_trips_;
  std::unordered_map<int64_t, std::vector<int64_t>> building_trips_;
  int64_t num_trips_ = 0;

  static const std::vector<AddressTripRecord> kNoTrips;
  static const std::vector<int64_t> kNoTripIds;
};

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_CANDIDATE_GENERATION_H_
