#include "dlinfma/dlinfma_method.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dlinf {
namespace dlinfma {

DlInfMaMethod::DlInfMaMethod(std::string name,
                             const LocMatcherConfig& model_config,
                             const TrainConfig& train_config,
                             int ensemble_size)
    : name_(std::move(name)),
      model_config_(model_config),
      train_config_(train_config),
      ensemble_size_(ensemble_size) {
  CHECK_GE(ensemble_size, 1);
}

void DlInfMaMethod::Fit(const Dataset& data, const SampleSet& samples) {
  (void)data;
  models_.clear();
  for (int k = 0; k < ensemble_size_; ++k) {
    TrainConfig config = train_config_;
    config.seed = train_config_.seed + 1000ull * static_cast<uint64_t>(k);
    if (k > 0) {
      // Checkpoint/resume state describes exactly one training run; the
      // extra ensemble members train from their own seeds and neither write
      // to nor resume from the member-0 checkpoint.
      config.checkpoint_every_epochs = 0;
      config.checkpoint_sink = nullptr;
      config.resume = nullptr;
    }
    Rng rng(config.seed);
    auto model = std::make_unique<LocMatcher>(model_config_, &rng);
    const TrainResult result =
        TrainLocMatcher(model.get(), samples.train, samples.val, config);
    if (k == 0) {
      train_result_ = result;
    } else {
      train_result_.train_seconds += result.train_seconds;
    }
    models_.push_back(std::move(model));
  }
}

bool DlInfMaMethod::SaveModel(const std::string& path) const {
  if (models_.size() != 1) return false;
  return nn::SaveParameters(path, models_.front()->Parameters());
}

bool DlInfMaMethod::LoadModel(const std::string& path) {
  if (ensemble_size_ != 1) return false;
  Rng rng(train_config_.seed);
  auto fresh = std::make_unique<LocMatcher>(model_config_, &rng);
  std::vector<nn::Tensor> params = fresh->Parameters();
  if (!nn::LoadParameters(path, &params)) return false;
  models_.clear();
  models_.push_back(std::move(fresh));
  return true;
}

std::string DlInfMaMethod::ExportParameters() const {
  if (models_.size() != 1) return std::string();
  return nn::EncodeParameters(models_.front()->Parameters());
}

bool DlInfMaMethod::RestoreModel(const std::string& parameter_blob) {
  if (ensemble_size_ != 1) return false;
  Rng rng(train_config_.seed);
  auto fresh = std::make_unique<LocMatcher>(model_config_, &rng);
  std::vector<nn::Tensor> params = fresh->Parameters();
  if (!nn::DecodeParameters(parameter_blob, &params)) return false;
  models_.clear();
  models_.push_back(std::move(fresh));
  return true;
}

std::vector<Point> DlInfMaMethod::InferAll(
    const Dataset& data, const std::vector<AddressSample>& samples) {
  CHECK(!models_.empty()) << "Fit must run before InferAll";
  obs::Span span("locmatcher_scoring");
  obs::MetricsRegistry::Global()
      .GetCounter("locmatcher.samples_scored")
      ->Add(static_cast<int64_t>(samples.size()));

  std::vector<int> indices;
  if (models_.size() == 1) {
    indices = models_.front()->PredictIndices(samples);
  } else {
    // Average per-candidate probabilities over the ensemble.
    std::vector<std::vector<double>> probs(samples.size());
    for (const auto& model : models_) {
      const std::vector<std::vector<float>> logits =
          model->PredictLogits(samples);
      for (size_t i = 0; i < samples.size(); ++i) {
        // Stable softmax over the valid prefix.
        float max_v = logits[i][0];
        for (float v : logits[i]) max_v = std::max(max_v, v);
        double denom = 0.0;
        std::vector<double> p(logits[i].size());
        for (size_t j = 0; j < logits[i].size(); ++j) {
          p[j] = std::exp(static_cast<double>(logits[i][j] - max_v));
          denom += p[j];
        }
        if (probs[i].empty()) probs[i].assign(logits[i].size(), 0.0);
        for (size_t j = 0; j < p.size(); ++j) probs[i][j] += p[j] / denom;
      }
    }
    indices.reserve(samples.size());
    for (const std::vector<double>& p : probs) {
      indices.push_back(static_cast<int>(
          std::max_element(p.begin(), p.end()) - p.begin()));
    }
  }

  std::vector<Point> locations;
  locations.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const int64_t candidate_id = samples[i].candidate_ids[indices[i]];
    locations.push_back(data.gen->candidate(candidate_id).location);
  }
  return locations;
}

}  // namespace dlinfma
}  // namespace dlinf
