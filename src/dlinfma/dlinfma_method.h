#ifndef DLINF_DLINFMA_DLINFMA_METHOD_H_
#define DLINF_DLINFMA_DLINFMA_METHOD_H_

#include <memory>
#include <string>

#include "dlinfma/inferrer.h"
#include "dlinfma/locmatcher.h"
#include "dlinfma/trainer.h"

namespace dlinf {
namespace dlinfma {

/// The full DLInfMA method as an Inferrer: candidate generation + features
/// are supplied through the Dataset/SampleSet, this class owns the
/// LocMatcher model, its training, and candidate selection.
///
/// Variants (DLInfMA-PN, DLInfMA-nA, ...) are expressed through the model
/// config and/or the feature config of the SampleSet used to fit it.
class DlInfMaMethod : public Inferrer {
 public:
  /// `ensemble_size` > 1 trains that many LocMatchers from different seeds
  /// and averages their candidate probabilities at inference — a standard
  /// variance reducer for production deployments (not part of the paper's
  /// evaluation; Table II uses the default single model).
  explicit DlInfMaMethod(std::string name = "DLInfMA",
                         const LocMatcherConfig& model_config = {},
                         const TrainConfig& train_config = {},
                         int ensemble_size = 1);

  std::string name() const override { return name_; }

  /// Trains the model(s). Honors the TrainConfig's crash-safe checkpoint
  /// hooks (checkpoint_every_epochs / checkpoint_sink / resume, see
  /// trainer.h) for the first ensemble member only; extra members always
  /// train from scratch under their own derived seeds.
  void Fit(const Dataset& data, const SampleSet& samples) override;

  std::vector<Point> InferAll(
      const Dataset& data,
      const std::vector<AddressSample>& samples) override;

  const TrainResult& train_result() const { return train_result_; }

  /// The (first) trained model; nullptr before Fit/LoadModel.
  LocMatcher* model() {
    return models_.empty() ? nullptr : models_.front().get();
  }
  int ensemble_size() const { return ensemble_size_; }
  const LocMatcherConfig& model_config() const { return model_config_; }
  const TrainConfig& train_config() const { return train_config_; }

  /// Whether the method can infer right now (Fit ran or a model was loaded).
  bool has_model() const { return !models_.empty(); }

  /// Serializes the trained model's parameters to an in-memory blob (see
  /// nn::EncodeParameters); empty on ensembles or before training. The
  /// artifact layer (src/io) embeds this blob in model artifacts.
  std::string ExportParameters() const;

  /// Warm-start path: replaces the model with a freshly constructed one and
  /// installs `parameter_blob` (an ExportParameters/nn::EncodeParameters
  /// blob). After success the method infers without Fit. Returns false on
  /// ensemble methods or any shape mismatch in the blob.
  bool RestoreModel(const std::string& parameter_blob);

  /// Persists the trained model's parameters (binary, see nn/serialize.h).
  /// Only supported for single-model methods (ensemble_size == 1); returns
  /// false otherwise, if no model is trained, or on I/O failure.
  bool SaveModel(const std::string& path) const;

  /// Restores parameters into a freshly constructed model with this
  /// method's configuration; after a successful load the method can infer
  /// without Fit. Returns false on shape mismatch or I/O failure.
  bool LoadModel(const std::string& path);

 private:
  std::string name_;
  LocMatcherConfig model_config_;
  TrainConfig train_config_;
  int ensemble_size_;
  std::vector<std::unique_ptr<LocMatcher>> models_;
  TrainResult train_result_;
};

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_DLINFMA_METHOD_H_
