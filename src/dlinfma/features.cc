#include "dlinfma/features.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "obs/metrics.h"

namespace dlinf {
namespace dlinfma {

FeatureExtractor::FeatureExtractor(const sim::World* world,
                                   const CandidateGeneration* gen,
                                   const FeatureConfig& config)
    : world_(world), gen_(gen), config_(config) {
  CHECK(world != nullptr);
  CHECK(gen != nullptr);
}

AddressSample FeatureExtractor::Extract(int64_t address_id,
                                        bool with_label) const {
  const sim::Address& addr = world_->address(address_id);
  AddressSample sample;
  sample.address_id = address_id;
  sample.candidate_ids = gen_->Retrieve(address_id);
  CHECK(!sample.candidate_ids.empty())
      << "address" << address_id << "has no location candidates";

  const std::vector<AddressTripRecord>& records =
      gen_->address_trips(address_id);
  const double num_trips_j = static_cast<double>(records.size());

  // Trips "excluded" for the LC denominator: the building's trips by
  // default, or the address's own trips for the LC_addr ablation.
  std::unordered_set<int64_t> excluded_trips;
  if (config_.lc_address_based) {
    for (const AddressTripRecord& r : records) excluded_trips.insert(r.trip_id);
  } else {
    for (int64_t trip_id : gen_->trips_of_building(addr.building_id)) {
      excluded_trips.insert(trip_id);
    }
  }
  const double lc_denominator =
      static_cast<double>(gen_->num_trips()) -
      static_cast<double>(excluded_trips.size());

  std::unordered_set<int64_t> own_trips;
  for (const AddressTripRecord& r : records) own_trips.insert(r.trip_id);

  sample.features.reserve(sample.candidate_ids.size());
  for (int64_t candidate_id : sample.candidate_ids) {
    const LocationCandidate& candidate = gen_->candidate(candidate_id);
    const std::vector<int64_t>& through = gen_->trips_through(candidate_id);

    CandidateFeatureVector f;
    if (config_.use_trip_coverage && num_trips_j > 0) {
      double covered = 0.0;
      for (int64_t trip_id : through) {
        if (own_trips.count(trip_id) > 0) covered += 1.0;
      }
      f.trip_coverage = covered / num_trips_j;
    }
    if (config_.use_location_commonality && lc_denominator > 0) {
      double outside = 0.0;
      for (int64_t trip_id : through) {
        if (excluded_trips.count(trip_id) == 0) outside += 1.0;
      }
      f.location_commonality = outside / lc_denominator;
    }
    if (config_.use_distance) {
      // Log-compressed distance: stabilizes the heavy right tail (wrong
      // geocodes put every candidate hundreds of meters away) for the
      // neural scorer; monotone, so tree-based methods are unaffected.
      f.distance = std::log1p(
          Distance(candidate.location, addr.geocoded_location) / 10.0);
    }
    if (config_.use_profile) {
      f.avg_duration = candidate.profile.avg_duration_s / 60.0;
      f.num_couriers = static_cast<double>(candidate.profile.num_couriers);
      f.time_distribution = candidate.profile.time_distribution;
    }
    sample.features.push_back(f);
  }

  sample.address.log_num_deliveries = std::log1p(num_trips_j);
  sample.address.poi_category = addr.poi_category;

  if (with_label) {
    // Positive label: the candidate nearest the ground-truth location
    // (Section V-A labeling rule).
    int best = 0;
    double best_d = Distance(
        gen_->candidate(sample.candidate_ids[0]).location,
        addr.true_delivery_location);
    for (size_t i = 1; i < sample.candidate_ids.size(); ++i) {
      const double d =
          Distance(gen_->candidate(sample.candidate_ids[i]).location,
                   addr.true_delivery_location);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    sample.label = best;
  }
  return sample;
}

std::vector<AddressSample> FeatureExtractor::ExtractAll(
    const std::vector<int64_t>& ids, bool with_labels) const {
  std::vector<AddressSample> samples;
  samples.reserve(ids.size());
  int64_t skipped = 0;
  for (int64_t id : ids) {
    // A delivered address can end up with zero candidates when its
    // trajectory evidence was lost upstream (GPS dropouts, dropped trips —
    // see fault/fault.h); there is nothing to extract features over, so
    // the address is dropped from the sample set rather than aborting.
    if (gen_->Retrieve(id).empty()) {
      ++skipped;
      continue;
    }
    samples.push_back(Extract(id, with_labels));
  }
  if (skipped > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("pipeline.addresses_without_candidates")
        ->Add(skipped);
  }
  return samples;
}

ml::FeatureRow FlattenFeatures(const AddressSample& sample, int i) {
  CHECK(i >= 0 && i < static_cast<int>(sample.features.size()));
  const CandidateFeatureVector& f = sample.features[i];
  ml::FeatureRow row;
  row.reserve(kFlatFeatureWidth);
  row.push_back(f.trip_coverage);
  row.push_back(f.location_commonality);
  row.push_back(f.distance);
  row.push_back(f.avg_duration);
  row.push_back(f.num_couriers);
  for (double bin : f.time_distribution) row.push_back(bin);
  row.push_back(sample.address.log_num_deliveries);
  row.push_back(static_cast<double>(sample.address.poi_category));
  CHECK_EQ(static_cast<int>(row.size()), kFlatFeatureWidth);
  return row;
}

}  // namespace dlinfma
}  // namespace dlinf
