#ifndef DLINF_DLINFMA_FEATURES_H_
#define DLINF_DLINFMA_FEATURES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "dlinfma/candidate_generation.h"
#include "ml/decision_tree.h"
#include "sim/world.h"

namespace dlinf {
namespace dlinfma {

/// Which features to compute; switching one off implements the corresponding
/// ablation of Table II (DLInfMA-nTC / -nD / -nP / -nLC / -LC_addr).
/// Disabled features are zeroed so that tensor layouts stay fixed.
struct FeatureConfig {
  bool use_trip_coverage = true;
  bool use_distance = true;
  bool use_profile = true;
  bool use_location_commonality = true;
  /// LC computed against the address's own trips instead of the building's
  /// (the paper's LC_addr ablation, expected to be worse).
  bool lc_address_based = false;
};

/// Per-(address, candidate) feature vector (Section IV-A).
/// Scalar features are pre-scaled to O(1) ranges for the neural models:
/// distance in hectometers, duration in minutes.
struct CandidateFeatureVector {
  double trip_coverage = 0.0;         ///< TC, Eq. (1), in [0, 1].
  double location_commonality = 0.0;  ///< LC, Eq. (2), in [0, 1].
  double distance = 0.0;              ///< Geodesic dist to geocode / 100 m.
  double avg_duration = 0.0;          ///< Profile: mean stay minutes.
  double num_couriers = 0.0;          ///< Profile: distinct couriers.
  std::array<double, 24> time_distribution{};  ///< Profile: visit hours.
};

/// Number of scalar candidate features ahead of the time distribution.
inline constexpr int kNumScalarCandidateFeatures = 5;

/// Address-level features (Section IV-A (3)).
struct AddressFeatures {
  double log_num_deliveries = 0.0;  ///< log(1 + |TR_j|).
  int poi_category = 0;             ///< 0..20 from the (simulated) geocoder.
};

/// Everything LocMatcher (or a variant model) needs about one address: its
/// retrieved candidates, their features, the address features, and — when
/// ground truth is available — the label (index of the candidate nearest the
/// true delivery location).
struct AddressSample {
  int64_t address_id = -1;
  std::vector<int64_t> candidate_ids;
  std::vector<CandidateFeatureVector> features;
  AddressFeatures address;
  int label = -1;  ///< Index into candidate_ids; -1 when unlabeled.
};

/// The Feature Extraction step (Section IV-A) on top of a candidate pool.
class FeatureExtractor {
 public:
  /// Both pointees must outlive the extractor.
  FeatureExtractor(const sim::World* world, const CandidateGeneration* gen,
                   const FeatureConfig& config = {});

  /// Features for one address. `with_label` additionally marks the candidate
  /// nearest to the ground-truth delivery location as positive (used for
  /// train/val sets — and for evaluation bookkeeping on test).
  AddressSample Extract(int64_t address_id, bool with_label) const;

  /// Batch extraction. Addresses whose trajectory evidence was entirely
  /// lost upstream (no retrievable candidates — possible under GPS fault
  /// injection, never with clean data) are skipped, not aborted on; each
  /// skip increments the `pipeline.addresses_without_candidates` counter.
  std::vector<AddressSample> ExtractAll(const std::vector<int64_t>& ids,
                                        bool with_labels) const;

  const FeatureConfig& config() const { return config_; }

 private:
  const sim::World* world_;
  const CandidateGeneration* gen_;
  FeatureConfig config_;
};

/// Flattens candidate i of a sample into a dense row for the classical
/// models (classification / pairwise-ranking variants): the 5 scalar
/// candidate features, 24 time bins, then the address features
/// [log_num_deliveries, poi_category]. Width = 31.
ml::FeatureRow FlattenFeatures(const AddressSample& sample, int i);

/// Width of FlattenFeatures rows.
inline constexpr int kFlatFeatureWidth = kNumScalarCandidateFeatures + 24 + 2;

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_FEATURES_H_
