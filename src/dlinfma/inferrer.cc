#include "dlinfma/inferrer.h"

#include <unordered_set>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dlinf {
namespace dlinfma {

Dataset BuildDataset(const sim::World& world,
                     const CandidateGeneration::Options& options,
                     ThreadPool* pool) {
  obs::Span span("build_dataset");
  Dataset data;
  data.world = &world;
  data.gen = std::make_unique<CandidateGeneration>(
      CandidateGeneration::Build(world, options, pool));
  for (int64_t id : world.DeliveredAddressIds()) {
    switch (world.address(id).split) {
      case sim::Split::kTrain:
        data.train_ids.push_back(id);
        break;
      case sim::Split::kVal:
        data.val_ids.push_back(id);
        break;
      case sim::Split::kTest:
        data.test_ids.push_back(id);
        break;
    }
  }
  return data;
}

SampleSet ExtractSamples(const Dataset& data, const FeatureConfig& config) {
  CHECK(data.world != nullptr && data.gen != nullptr);
  obs::Span span("feature_extraction");
  FeatureExtractor extractor(data.world, data.gen.get(), config);
  SampleSet samples;
  samples.train = extractor.ExtractAll(data.train_ids, /*with_labels=*/true);
  samples.val = extractor.ExtractAll(data.val_ids, /*with_labels=*/true);
  samples.test = extractor.ExtractAll(data.test_ids, /*with_labels=*/true);
  obs::MetricsRegistry::Global()
      .GetCounter("pipeline.samples_extracted")
      ->Add(static_cast<int64_t>(samples.train.size() + samples.val.size() +
                                 samples.test.size()));
  return samples;
}

std::vector<Point> GroundTruthOf(const sim::World& world,
                                 const std::vector<AddressSample>& samples) {
  std::vector<Point> truth;
  truth.reserve(samples.size());
  for (const AddressSample& sample : samples) {
    truth.push_back(world.address(sample.address_id).true_delivery_location);
  }
  return truth;
}

}  // namespace dlinfma
}  // namespace dlinf
