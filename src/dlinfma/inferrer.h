#ifndef DLINF_DLINFMA_INFERRER_H_
#define DLINF_DLINFMA_INFERRER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dlinfma/candidate_generation.h"
#include "dlinfma/features.h"
#include "sim/world.h"

namespace dlinf {
namespace dlinfma {

/// One dataset prepared for experiments: the world, its mined candidate
/// pool, and the delivered-address ids per spatial split.
struct Dataset {
  const sim::World* world = nullptr;
  std::unique_ptr<CandidateGeneration> gen;
  std::vector<int64_t> train_ids;
  std::vector<int64_t> val_ids;
  std::vector<int64_t> test_ids;
};

/// Runs the candidate-generation pipeline and splits delivered addresses by
/// their (spatially disjoint) community split tags.
Dataset BuildDataset(const sim::World& world,
                     const CandidateGeneration::Options& options,
                     ThreadPool* pool = nullptr);

/// Feature samples per split for a given feature configuration (ablations
/// re-extract with their own FeatureConfig over the same candidate pool).
/// All three splits carry labels; test labels are for bookkeeping only.
struct SampleSet {
  std::vector<AddressSample> train;
  std::vector<AddressSample> val;
  std::vector<AddressSample> test;
};

SampleSet ExtractSamples(const Dataset& data, const FeatureConfig& config);

/// Ground-truth delivery locations aligned with `samples`.
std::vector<Point> GroundTruthOf(const sim::World& world,
                                 const std::vector<AddressSample>& samples);

/// Common interface of every delivery-location inference method in the
/// repository: DLInfMA, all baselines (Table II) and all variants.
class Inferrer {
 public:
  virtual ~Inferrer() = default;

  virtual std::string name() const = 0;

  /// Trains on the dataset; heuristic methods override nothing.
  virtual void Fit(const Dataset& data, const SampleSet& samples) {
    (void)data;
    (void)samples;
  }

  /// Predicts a delivery location for every sample.
  virtual std::vector<Point> InferAll(
      const Dataset& data, const std::vector<AddressSample>& samples) = 0;
};

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_INFERRER_H_
