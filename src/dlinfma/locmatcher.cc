#include "dlinfma/locmatcher.h"

#include <algorithm>

#include "common/check.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace dlinf {
namespace dlinfma {

LocMatcherBatch MakeLocMatcherBatch(
    const std::vector<const AddressSample*>& samples) {
  CHECK(!samples.empty());
  const int batch = static_cast<int>(samples.size());
  int max_n = 0;
  for (const AddressSample* sample : samples) {
    CHECK(sample != nullptr);
    CHECK(!sample->features.empty());
    max_n = std::max(max_n, static_cast<int>(sample->features.size()));
  }

  std::vector<float> scalars(
      static_cast<size_t>(batch) * max_n * kNumScalarCandidateFeatures, 0.0f);
  std::vector<float> time_dist(static_cast<size_t>(batch) * max_n * 24, 0.0f);
  std::vector<float> deliveries(batch, 0.0f);

  LocMatcherBatch out;
  out.poi.resize(batch);
  out.valid.resize(batch);
  out.labels.resize(batch);
  for (int b = 0; b < batch; ++b) {
    const AddressSample& sample = *samples[b];
    const int n = static_cast<int>(sample.features.size());
    out.valid[b] = n;
    out.labels[b] = sample.label;
    out.poi[b] = sample.address.poi_category;
    deliveries[b] = static_cast<float>(sample.address.log_num_deliveries);
    for (int i = 0; i < n; ++i) {
      const CandidateFeatureVector& f = sample.features[i];
      float* srow =
          scalars.data() +
          (static_cast<size_t>(b) * max_n + i) * kNumScalarCandidateFeatures;
      srow[0] = static_cast<float>(f.trip_coverage);
      srow[1] = static_cast<float>(f.location_commonality);
      srow[2] = static_cast<float>(f.distance);
      srow[3] = static_cast<float>(f.avg_duration);
      srow[4] = static_cast<float>(f.num_couriers);
      float* trow = time_dist.data() + (static_cast<size_t>(b) * max_n + i) * 24;
      for (int h = 0; h < 24; ++h) {
        trow[h] = static_cast<float>(f.time_distribution[h]);
      }
    }
  }
  out.scalar_features = nn::Tensor::FromVector(
      {batch, max_n, kNumScalarCandidateFeatures}, std::move(scalars));
  out.time_dist =
      nn::Tensor::FromVector({batch, max_n, 24}, std::move(time_dist));
  out.num_deliveries =
      nn::Tensor::FromVector({batch, 1}, std::move(deliveries));
  return out;
}

LocMatcher::LocMatcher(const LocMatcherConfig& config, Rng* rng)
    : config_(config),
      time_dense_(config.time_bins, config.time_dense_dim, rng),
      input_dense_(kNumScalarCandidateFeatures + config.time_dense_dim,
                   config.model_dim, rng),
      poi_embed_(config.num_poi_categories, config.poi_embed_dim, rng),
      score_w_(config.model_dim, config.score_dim, rng),
      score_u_(config.poi_embed_dim + 1, config.score_dim, rng,
               /*bias=*/false),
      score_v_(config.score_dim, 1, rng, /*bias=*/false) {
  AddChild(&time_dense_);
  AddChild(&input_dense_);
  AddChild(&poi_embed_);
  AddChild(&score_w_);
  AddChild(&score_u_);
  AddChild(&score_v_);
  if (config.encoder == LocMatcherConfig::EncoderKind::kTransformer) {
    transformer_ = std::make_unique<nn::TransformerEncoder>(
        config.num_layers, config.model_dim, config.num_heads, config.ff_dim,
        config.dropout, rng);
    AddChild(transformer_.get());
  } else {
    lstm_ = std::make_unique<nn::Lstm>(config.model_dim, config.lstm_hidden,
                                       rng);
    lstm_proj_ =
        std::make_unique<nn::Linear>(config.lstm_hidden, config.model_dim, rng);
    AddChild(lstm_.get());
    AddChild(lstm_proj_.get());
  }
}

nn::Tensor LocMatcher::Forward(const LocMatcherBatch& batch,
                               const nn::FwdCtx& ctx) const {
  const int b = batch.scalar_features.dim(0);
  const int n = batch.scalar_features.dim(1);

  // Candidate feature encoding: dense(time distribution) ++ other features,
  // then a dense layer to the model width z.
  nn::Tensor time_embed = time_dense_.Forward(batch.time_dist);  // [B,N,r]
  nn::Tensor features =
      nn::Concat({batch.scalar_features, time_embed}, -1);  // [B,N,5+r]
  nn::Tensor x =
      input_dense_.Forward(features, nn::Activation::kRelu);  // [B,N,z]

  // Joint correlation modeling across the candidate set.
  nn::Tensor encoded;
  if (transformer_ != nullptr) {
    const nn::Tensor mask = nn::MakePaddingMask(batch.valid, n);
    encoded = transformer_->Forward(x, mask, ctx);  // [B,N,z]
  } else {
    encoded = lstm_proj_->Forward(lstm_->Forward(x));  // [B,N,z]
  }

  // Additive attention scoring (Eq. 3) with the address context vector.
  nn::Tensor scores = score_w_.Forward(encoded);  // [B,N,p]
  if (config_.use_address_context) {
    nn::Tensor context = nn::Concat(
        {poi_embed_.Forward(batch.poi), batch.num_deliveries}, -1);  // [B,m]
    nn::Tensor uc = nn::Reshape(score_u_.Forward(context),
                                {b, 1, config_.score_dim});  // [B,1,p]
    scores = nn::Add(scores, uc);
  }
  nn::Tensor logits = score_v_.Forward(nn::Tanh(scores));  // [B,N,1]
  return nn::Reshape(logits, {b, n});
}

void LocMatcher::ForEachLogitsBatch(
    const std::vector<AddressSample>& samples, int batch_size,
    const std::function<void(const LocMatcherBatch&, const nn::Tensor&,
                             const std::vector<size_t>&)>& fn) const {
  CHECK(!samples.empty());
  CHECK_GT(batch_size, 0);
  // Length-bucketing: chunk in descending candidate-count order so no batch
  // pads past its own widest sample (see the header for why this cannot
  // change any sample's logits).
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return samples[a].features.size() > samples[b].features.size();
  });

  // Inference-only path: no autograd tape, no gradient buffers.
  nn::NoGradGuard no_grad;
  nn::FwdCtx eval_ctx;
  std::vector<const AddressSample*> chunk;
  std::vector<size_t> indices;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(order.size(), begin + static_cast<size_t>(batch_size));
    chunk.clear();
    indices.clear();
    for (size_t i = begin; i < end; ++i) {
      chunk.push_back(&samples[order[i]]);
      indices.push_back(order[i]);
    }
    const LocMatcherBatch batch = MakeLocMatcherBatch(chunk);
    fn(batch, Forward(batch, eval_ctx), indices);
  }
}

std::vector<int> LocMatcher::PredictIndices(
    const std::vector<AddressSample>& samples, int batch_size) const {
  std::vector<int> predictions(samples.size(), 0);
  ForEachLogitsBatch(
      samples, batch_size,
      [&](const LocMatcherBatch& batch, const nn::Tensor& logits,
          const std::vector<size_t>& indices) {
        const int n = logits.dim(1);
        for (size_t i = 0; i < indices.size(); ++i) {
          const float* row = logits.data().data() + i * n;
          int best = 0;
          for (int j = 1; j < batch.valid[i]; ++j) {
            if (row[j] > row[best]) best = j;
          }
          predictions[indices[i]] = best;
        }
      });
  return predictions;
}

std::vector<std::vector<float>> LocMatcher::PredictLogits(
    const std::vector<AddressSample>& samples, int batch_size) const {
  std::vector<std::vector<float>> out(samples.size());
  ForEachLogitsBatch(
      samples, batch_size,
      [&](const LocMatcherBatch& batch, const nn::Tensor& logits,
          const std::vector<size_t>& indices) {
        const int n = logits.dim(1);
        for (size_t i = 0; i < indices.size(); ++i) {
          const float* row = logits.data().data() + i * n;
          out[indices[i]].assign(row, row + batch.valid[i]);
        }
      });
  return out;
}

double LocMatcher::EvaluateLoss(const std::vector<AddressSample>& samples,
                                int batch_size) const {
  for (const AddressSample& sample : samples) {
    CHECK_GE(sample.label, 0) << "EvaluateLoss requires labels";
  }
  double total = 0.0;
  int64_t count = 0;
  ForEachLogitsBatch(
      samples, batch_size,
      [&](const LocMatcherBatch& batch, const nn::Tensor& logits,
          const std::vector<size_t>& indices) {
        const double loss =
            nn::MaskedCrossEntropy(logits, batch.valid, batch.labels).item();
        total += loss * static_cast<double>(indices.size());
        count += static_cast<int64_t>(indices.size());
      });
  return total / static_cast<double>(count);
}

}  // namespace dlinfma
}  // namespace dlinf
