#ifndef DLINF_DLINFMA_LOCMATCHER_H_
#define DLINF_DLINFMA_LOCMATCHER_H_

#include <functional>
#include <memory>
#include <vector>

#include "dlinfma/features.h"
#include "nn/module.h"

namespace dlinf {
namespace dlinfma {

/// Hyper-parameters of LocMatcher, following the paper's values
/// (Section V-B "Training Details & Hyperparameters"): POI embedding in R^3,
/// r = 3, p = 32, 3 transformer layers with 2 heads and 32 dense units,
/// dropout 0.1. One deliberate deviation: the paper uses z = 8, which
/// severely underfits on the scaled-down synthetic datasets (the candidate
/// embedding must compress 5 scalar features + the r-dim time embedding);
/// z = 16 restores the paper's relative ordering and is the default here
/// (EXPERIMENTS.md discusses the calibration).
struct LocMatcherConfig {
  int time_bins = 24;
  int time_dense_dim = 3;  ///< r: dense projection of the time distribution.
  int model_dim = 16;      ///< z: candidate embedding width (paper: 8).
  int score_dim = 32;      ///< p: attention scoring width (Eq. 3).
  int poi_embed_dim = 3;
  int num_poi_categories = 21;
  int num_layers = 3;
  int num_heads = 2;
  int ff_dim = 32;
  float dropout = 0.1f;

  /// false implements DLInfMA-nA: drop the U*c address-context term of Eq. 3.
  bool use_address_context = true;

  /// kLstm implements DLInfMA-PN (pointer-network-style LSTM encoder [18]
  /// instead of the transformer).
  enum class EncoderKind { kTransformer, kLstm };
  EncoderKind encoder = EncoderKind::kTransformer;
  int lstm_hidden = 32;  ///< Paper: the PN variant's LSTM has 32 units.
};

/// A padded mini-batch of address samples ready for the network.
struct LocMatcherBatch {
  nn::Tensor scalar_features;  ///< [B, N, 5] (TC, LC, dist, dur, couriers).
  nn::Tensor time_dist;        ///< [B, N, 24].
  std::vector<int> poi;        ///< [B] POI category ids.
  nn::Tensor num_deliveries;   ///< [B, 1] log(1+deliveries).
  std::vector<int> valid;      ///< [B] real candidate counts (<= N).
  std::vector<int> labels;     ///< [B] positive indexes; -1 when unlabeled.
};

/// Packs samples into a padded batch. All samples must be non-empty.
LocMatcherBatch MakeLocMatcherBatch(
    const std::vector<const AddressSample*>& samples);

/// The attention-based address-location matching model (Section IV-B,
/// Figure 8): per-candidate feature encoding, a transformer encoder that
/// models correlations *jointly across all candidates of an address*, and an
/// additive-attention scorer conditioned on the address context vector:
///
///   s_k = v^T tanh(W z_k + U c + b)           (Eq. 3)
///   p_k = softmax_k(s_k)                      (Eq. 4)
class LocMatcher : public nn::Module {
 public:
  LocMatcher(const LocMatcherConfig& config, Rng* rng);

  /// Returns logits [B, N]; apply softmax over the valid prefix (the
  /// masked cross-entropy loss and PredictIndices do this internally).
  nn::Tensor Forward(const LocMatcherBatch& batch, const nn::FwdCtx& ctx) const;

  /// Argmax candidate index for each sample (batched, eval mode).
  std::vector<int> PredictIndices(const std::vector<AddressSample>& samples,
                                  int batch_size = 64) const;

  /// Valid-prefix logits for each sample (length = its candidate count);
  /// used for ensembling and calibration analyses.
  std::vector<std::vector<float>> PredictLogits(
      const std::vector<AddressSample>& samples, int batch_size = 64) const;

  /// Mean masked cross-entropy over `samples` (labels required); eval mode.
  double EvaluateLoss(const std::vector<AddressSample>& samples,
                      int batch_size = 64) const;

  const LocMatcherConfig& config() const { return config_; }

 private:
  /// Shared batched-inference driver behind PredictIndices / PredictLogits /
  /// EvaluateLoss: chunks `samples` into padded batches, runs Forward under
  /// nn::NoGradGuard (no tape, no gradient buffers), and hands each
  /// (batch, logits, original sample indices) triple to `fn`.
  ///
  /// Samples are grouped by descending candidate count before chunking, so
  /// each padded batch is only as wide as its own widest sample. Per-sample
  /// logits are invariant to both padding width and batch mates: positions
  /// never mix outside self-attention, and a padded key's -1e9 additive mask
  /// drives its softmax weight to exactly zero (exp underflow) — so the
  /// reordering is a pure speedup, bit-identical results. `fn` receives
  /// `indices[i]` = the position in `samples` of the batch's row i.
  void ForEachLogitsBatch(
      const std::vector<AddressSample>& samples, int batch_size,
      const std::function<void(const LocMatcherBatch&, const nn::Tensor&,
                               const std::vector<size_t>&)>& fn) const;

  LocMatcherConfig config_;
  nn::Linear time_dense_;
  nn::Linear input_dense_;
  std::unique_ptr<nn::TransformerEncoder> transformer_;
  std::unique_ptr<nn::Lstm> lstm_;
  std::unique_ptr<nn::Linear> lstm_proj_;  ///< LSTM hidden -> z.
  nn::Embedding poi_embed_;
  nn::Linear score_w_;  ///< W (+ b) of Eq. 3: z -> p.
  nn::Linear score_u_;  ///< U of Eq. 3: m -> p, no bias.
  nn::Linear score_v_;  ///< v of Eq. 3: p -> 1, no bias.
};

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_LOCMATCHER_H_
