#include "dlinfma/metrics.h"

#include "common/check.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace dlinf {
namespace dlinfma {

std::string EvalMetrics::ToString() const {
  return StrPrintf("MAE=%.1fm P95=%.1fm beta50=%.1f%% (n=%d)", mae_m, p95_m,
                   beta50_pct, num_samples);
}

EvalMetrics ComputeMetrics(const std::vector<Point>& predicted,
                           const std::vector<Point>& ground_truth,
                           double beta_delta_m) {
  CHECK_EQ(predicted.size(), ground_truth.size());
  CHECK(!predicted.empty());
  std::vector<double> errors;
  errors.reserve(predicted.size());
  int within = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double e = Distance(predicted[i], ground_truth[i]);
    errors.push_back(e);
    if (e < beta_delta_m) ++within;
  }
  EvalMetrics metrics;
  metrics.mae_m = Mean(errors);
  metrics.p95_m = Percentile(errors, 0.95);
  metrics.beta50_pct =
      100.0 * static_cast<double>(within) / static_cast<double>(errors.size());
  metrics.num_samples = static_cast<int>(errors.size());
  return metrics;
}

}  // namespace dlinfma
}  // namespace dlinf
