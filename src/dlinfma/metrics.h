#ifndef DLINF_DLINFMA_METRICS_H_
#define DLINF_DLINFMA_METRICS_H_

#include <string>
#include <vector>

#include "geo/point.h"

namespace dlinf {
namespace dlinfma {

/// The paper's three evaluation metrics (Section V-B).
struct EvalMetrics {
  double mae_m = 0.0;      ///< Mean inference error, meters.
  double p95_m = 0.0;      ///< 0.95-percentile error, meters.
  double beta50_pct = 0.0; ///< % of addresses with error < 50 m.
  int num_samples = 0;

  std::string ToString() const;
};

/// Computes MAE / P95 / beta_delta from paired predictions and ground truth.
EvalMetrics ComputeMetrics(const std::vector<Point>& predicted,
                           const std::vector<Point>& ground_truth,
                           double beta_delta_m = 50.0);

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_METRICS_H_
