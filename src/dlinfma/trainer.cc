#include "dlinfma/trainer.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/structured_log.h"
#include "obs/trace.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace dlinfma {
namespace {

/// Snapshots the complete between-epoch training state (DESIGN.md §9).
/// `epochs_done` epochs have completed; the resumed run starts there.
TrainCheckpoint Capture(int epochs_done, const TrainConfig& config,
                        const std::vector<nn::Tensor>& params,
                        const nn::Adam& adam, const nn::HalvingSchedule& sched,
                        Rng& rng, const std::vector<int>& order,
                        double best_val, int epochs_without_improvement,
                        const std::vector<std::vector<float>>& best_params,
                        double final_train_loss) {
  TrainCheckpoint ck;
  ck.next_epoch = epochs_done;
  ck.seed = config.seed;
  ck.learning_rate = adam.learning_rate();
  ck.schedule_epoch = sched.epoch();
  nn::AdamState adam_state = adam.ExportState();
  ck.adam_step = adam_state.step;
  ck.adam_m = std::move(adam_state.m);
  ck.adam_v = std::move(adam_state.v);
  std::ostringstream engine_text;
  engine_text << rng.engine();
  ck.rng_state = engine_text.str();
  ck.best_val_loss = best_val;
  ck.epochs_without_improvement = epochs_without_improvement;
  ck.final_train_loss = final_train_loss;
  ck.sample_order.assign(order.begin(), order.end());
  ck.params.reserve(params.size());
  for (const nn::Tensor& p : params) ck.params.push_back(p.data());
  ck.best_params = best_params;
  return ck;
}

}  // namespace

TrainResult TrainLocMatcher(LocMatcher* model,
                            const std::vector<AddressSample>& train,
                            const std::vector<AddressSample>& val,
                            const TrainConfig& config) {
  CHECK(model != nullptr);
  CHECK(!train.empty());
  CHECK(!val.empty());
  for (const AddressSample& sample : train) CHECK_GE(sample.label, 0);

  // Attribute this thread's samples/tracks to the trainer in profiles and
  // trace exports (idempotent; the CLI may already have named it "main").
  obs::prof::RegisterCurrentThread("trainer");
  // The whole run is one trace: epoch spans, checkpoint writes and the
  // train.epoch log lines below all correlate under its id.
  obs::TraceScope trace;
  obs::Span span("train_locmatcher");
  obs::Histogram* epoch_seconds =
      obs::MetricsRegistry::Global().GetHistogram("locmatcher.epoch_seconds");
  obs::Counter* epochs_run =
      obs::MetricsRegistry::Global().GetCounter("locmatcher.train_epochs");
  obs::Counter* ckpt_writes =
      obs::MetricsRegistry::Global().GetCounter("train.checkpoint.writes");
  obs::Counter* ckpt_failures =
      obs::MetricsRegistry::Global().GetCounter("train.checkpoint.failures");

  Stopwatch watch;
  Rng rng(config.seed);
  std::vector<nn::Tensor> params = model->Parameters();
  nn::Adam adam(params, config.learning_rate);
  nn::HalvingSchedule schedule(&adam, config.lr_halve_epochs);

  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  double best_val = 1e30;
  int epochs_without_improvement = 0;
  std::vector<std::vector<float>> best_params;
  int start_epoch = 0;

  if (config.resume != nullptr) {
    // Restoring an incompatible checkpoint (wrong seed, wrong model shape,
    // wrong dataset size) is an upstream bug: callers validate user-supplied
    // checkpoints before handing them here (io/checkpoint.h decodes only
    // structurally sound files; the CLI cross-checks seed and shapes).
    const TrainCheckpoint& ck = *config.resume;
    CHECK_EQ(ck.seed, config.seed)
        << "checkpoint seed does not match the training config";
    CHECK_EQ(ck.params.size(), params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      CHECK_EQ(ck.params[i].size(), params[i].data().size());
      params[i].data() = ck.params[i];
    }
    nn::AdamState adam_state;
    adam_state.step = ck.adam_step;
    adam_state.m = ck.adam_m;
    adam_state.v = ck.adam_v;
    CHECK(adam.RestoreState(adam_state))
        << "checkpoint optimizer state does not match the model";
    adam.set_learning_rate(ck.learning_rate);
    schedule.set_epoch(ck.schedule_epoch);
    std::istringstream engine_text(ck.rng_state);
    engine_text >> rng.engine();
    CHECK(!engine_text.fail()) << "corrupt RNG state in checkpoint";
    CHECK_EQ(ck.sample_order.size(), order.size())
        << "checkpoint was written for a different training set";
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int>(ck.sample_order[i]);
    }
    best_val = ck.best_val_loss;
    epochs_without_improvement = ck.epochs_without_improvement;
    best_params = ck.best_params;
    result.final_train_loss = ck.final_train_loss;
    result.epochs_run = ck.next_epoch;
    start_epoch = ck.next_epoch;
    obs::MetricsRegistry::Global().GetCounter("train.resumes")->Add(1);
  }

  int last_checkpointed_epoch = start_epoch;
  auto emit_checkpoint = [&](int epochs_done) {
    if (config.checkpoint_every_epochs <= 0 || !config.checkpoint_sink) {
      return;
    }
    const TrainCheckpoint ck = Capture(
        epochs_done, config, params, adam, schedule, rng, order, best_val,
        epochs_without_improvement, best_params, result.final_train_loss);
    if (config.checkpoint_sink(ck)) {
      ckpt_writes->Add(1);
    } else {
      // A lost checkpoint only widens the replay window; the previous one
      // is still intact on disk (atomic temp+rename), so keep training.
      ckpt_failures->Add(1);
    }
    last_checkpointed_epoch = epochs_done;
  };

  for (int epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    // A resumed run whose checkpoint already exhausted the patience budget
    // must stop immediately, exactly as the uninterrupted run did.
    if (epochs_without_improvement >= config.early_stop_patience) break;
    obs::ScopedTimer epoch_timer(epoch_seconds);
    obs::TraceSpan epoch_span("train.epoch");
    Stopwatch epoch_watch;
    epochs_run->Add(1);
    rng.Shuffle(&order);
    // Chunk a length-sorted view of the shuffled order so no batch pads past
    // its own widest sample (candidate counts vary ~2-30; mixed batches pad
    // nearly everything to the epoch max, roughly doubling the attention
    // work). The stable sort keeps the shuffle's randomness within each
    // length, so batch composition still varies per epoch. Unlike the
    // inference-side bucketing (LocMatcher::ForEachLogitsBatch), this does
    // change which samples share a batch — a batching-policy change that
    // perturbs the SGD trajectory like any reshuffle, absorbed by the
    // golden pipeline test's tolerance band.
    std::vector<int> bucketed = order;
    std::stable_sort(bucketed.begin(), bucketed.end(), [&](int a, int b) {
      return train[a].features.size() > train[b].features.size();
    });
    double epoch_loss = 0.0;
    int num_batches = 0;
    for (size_t begin = 0; begin < bucketed.size();
         begin += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          bucketed.size(), begin + static_cast<size_t>(config.batch_size));
      std::vector<const AddressSample*> chunk;
      for (size_t i = begin; i < end; ++i) chunk.push_back(&train[bucketed[i]]);
      const LocMatcherBatch batch = MakeLocMatcherBatch(chunk);

      nn::FwdCtx train_ctx{/*training=*/true, &rng};
      adam.ZeroGrad();
      nn::Tensor logits = model->Forward(batch, train_ctx);
      nn::Tensor loss =
          nn::MaskedCrossEntropy(logits, batch.valid, batch.labels);
      loss.Backward();
      adam.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    schedule.OnEpochEnd();
    result.final_train_loss = epoch_loss / std::max(1, num_batches);

    const double val_loss = model->EvaluateLoss(val);
    if (config.verbose) {
      LOG_INFO << "epoch" << epoch << "train_loss" << result.final_train_loss
               << "val_loss" << val_loss << "lr" << adam.learning_rate();
    }
    obs::LogLine(obs::LogSeverity::kInfo, "train.epoch")
        .Int("epoch", epoch)
        .Num("train_loss", result.final_train_loss)
        .Num("val_loss", val_loss)
        .Num("lr", adam.learning_rate())
        .Num("epoch_seconds", epoch_watch.ElapsedSeconds());
    result.epochs_run = epoch + 1;
    if (val_loss < best_val - 1e-5) {
      best_val = val_loss;
      epochs_without_improvement = 0;
      best_params.clear();
      for (const nn::Tensor& p : params) best_params.push_back(p.data());
    } else {
      ++epochs_without_improvement;
    }

    if (config.checkpoint_every_epochs > 0 &&
        (epoch + 1) % config.checkpoint_every_epochs == 0) {
      emit_checkpoint(epoch + 1);
    }
  }

  // Terminal checkpoint: a finished run always leaves a resumable artifact
  // whose resume is a no-op (zero further epochs), so `--resume` after
  // normal completion reproduces the same model instead of retraining.
  if (last_checkpointed_epoch != result.epochs_run) {
    emit_checkpoint(result.epochs_run);
  }

  // Restore the best validation checkpoint.
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].data() = best_params[i];
    }
  }
  result.best_val_loss = best_val;
  result.train_seconds = watch.ElapsedSeconds();
  obs::LogLine(obs::LogSeverity::kInfo, "train.done")
      .Int("epochs_run", result.epochs_run)
      .Num("final_train_loss", result.final_train_loss)
      .Num("best_val_loss", result.best_val_loss)
      .Num("train_seconds", result.train_seconds);
  return result;
}

}  // namespace dlinfma
}  // namespace dlinf
