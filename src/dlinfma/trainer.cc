#include "dlinfma/trainer.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dlinf {
namespace dlinfma {

TrainResult TrainLocMatcher(LocMatcher* model,
                            const std::vector<AddressSample>& train,
                            const std::vector<AddressSample>& val,
                            const TrainConfig& config) {
  CHECK(model != nullptr);
  CHECK(!train.empty());
  CHECK(!val.empty());
  for (const AddressSample& sample : train) CHECK_GE(sample.label, 0);

  obs::Span span("train_locmatcher");
  obs::Histogram* epoch_seconds =
      obs::MetricsRegistry::Global().GetHistogram("locmatcher.epoch_seconds");
  obs::Counter* epochs_run =
      obs::MetricsRegistry::Global().GetCounter("locmatcher.train_epochs");

  Stopwatch watch;
  Rng rng(config.seed);
  std::vector<nn::Tensor> params = model->Parameters();
  nn::Adam adam(params, config.learning_rate);
  nn::HalvingSchedule schedule(&adam, config.lr_halve_epochs);

  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  double best_val = 1e30;
  int epochs_without_improvement = 0;
  std::vector<std::vector<float>> best_params;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(epoch_seconds);
    epochs_run->Add(1);
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int num_batches = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config.batch_size));
      std::vector<const AddressSample*> chunk;
      for (size_t i = begin; i < end; ++i) chunk.push_back(&train[order[i]]);
      const LocMatcherBatch batch = MakeLocMatcherBatch(chunk);

      nn::FwdCtx train_ctx{/*training=*/true, &rng};
      adam.ZeroGrad();
      nn::Tensor logits = model->Forward(batch, train_ctx);
      nn::Tensor loss =
          nn::MaskedCrossEntropy(logits, batch.valid, batch.labels);
      loss.Backward();
      adam.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    schedule.OnEpochEnd();
    result.final_train_loss = epoch_loss / std::max(1, num_batches);

    const double val_loss = model->EvaluateLoss(val);
    if (config.verbose) {
      LOG_INFO << "epoch" << epoch << "train_loss" << result.final_train_loss
               << "val_loss" << val_loss << "lr" << adam.learning_rate();
    }
    result.epochs_run = epoch + 1;
    if (val_loss < best_val - 1e-5) {
      best_val = val_loss;
      epochs_without_improvement = 0;
      best_params.clear();
      for (const nn::Tensor& p : params) best_params.push_back(p.data());
    } else if (++epochs_without_improvement >= config.early_stop_patience) {
      break;  // Validation loss no longer decreases (paper's criterion).
    }
  }

  // Restore the best validation checkpoint.
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].data() = best_params[i];
    }
  }
  result.best_val_loss = best_val;
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace dlinfma
}  // namespace dlinf
