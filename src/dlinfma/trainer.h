#ifndef DLINF_DLINFMA_TRAINER_H_
#define DLINF_DLINFMA_TRAINER_H_

#include <cstdint>
#include <vector>

#include "dlinfma/features.h"
#include "dlinfma/locmatcher.h"

namespace dlinf {
namespace dlinfma {

/// Training configuration for LocMatcher.
///
/// The paper trains with Adam (beta1=0.9, beta2=0.999), batch size 16, a
/// learning rate of 1e-4 halved every 5 epochs, stopping when validation
/// loss no longer decreases. With the scaled-down synthetic datasets (two
/// orders of magnitude fewer gradient steps per epoch than JD-scale data)
/// the same schedule under-trains, so the defaults keep the optimizer /
/// batch size / halving schedule / early stopping but use a proportionally
/// larger base rate; EXPERIMENTS.md documents this substitution.
struct TrainConfig {
  float learning_rate = 2e-3f;
  int batch_size = 16;
  int lr_halve_epochs = 12;
  int max_epochs = 150;
  int early_stop_patience = 15;
  uint64_t seed = 7;
  bool verbose = false;
};

struct TrainResult {
  int epochs_run = 0;
  double best_val_loss = 0.0;
  double final_train_loss = 0.0;
  double train_seconds = 0.0;
};

/// Trains the model in place with masked cross-entropy over candidate sets,
/// restoring the best-validation-loss parameters before returning.
/// All samples must carry labels.
TrainResult TrainLocMatcher(LocMatcher* model,
                            const std::vector<AddressSample>& train,
                            const std::vector<AddressSample>& val,
                            const TrainConfig& config);

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_TRAINER_H_
