#ifndef DLINF_DLINFMA_TRAINER_H_
#define DLINF_DLINFMA_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dlinfma/features.h"
#include "dlinfma/locmatcher.h"

namespace dlinf {
namespace dlinfma {

/// Complete resumable state of a training run at an epoch boundary —
/// everything TrainLocMatcher mutates between epochs, captured so that a run
/// killed at any checkpointed boundary finishes **bit-identical** to an
/// uninterrupted run (DESIGN.md §9):
///
///  - the model parameters and the Adam first/second moments + step count,
///  - the HalvingSchedule epoch and the current learning rate,
///  - the exact std::mt19937_64 engine state driving shuffles and dropout,
///  - the best-validation snapshot with its loss and early-stop counters.
///
/// The struct itself is I/O-free; src/io/checkpoint.h persists it as a
/// checksummed CKPT artifact.
struct TrainCheckpoint {
  /// The epoch the resumed run executes first (== epochs completed so far).
  int32_t next_epoch = 0;
  uint64_t seed = 0;  ///< TrainConfig::seed; resume rejects a mismatch.

  float learning_rate = 0.0f;    ///< Current (possibly halved) rate.
  int32_t schedule_epoch = 0;    ///< HalvingSchedule::epoch().
  int64_t adam_step = 0;         ///< Adam t.
  /// std::mt19937_64 state in the standard's operator<< text form: 312
  /// space-separated integers; bit-exact restore via operator>>.
  std::string rng_state;

  double best_val_loss = 1e30;
  int32_t epochs_without_improvement = 0;
  double final_train_loss = 0.0;

  /// The cumulative shuffle permutation over training samples. The trainer
  /// shuffles in place epoch over epoch, so the permutation at a boundary is
  /// part of the state the next epoch's batches depend on.
  std::vector<int64_t> sample_order;

  std::vector<std::vector<float>> params;       ///< Live model parameters.
  std::vector<std::vector<float>> adam_m;       ///< First moments.
  std::vector<std::vector<float>> adam_v;       ///< Second moments.
  /// Best-validation parameter snapshot; empty while no epoch improved.
  std::vector<std::vector<float>> best_params;
};

/// Training configuration for LocMatcher.
///
/// The paper trains with Adam (beta1=0.9, beta2=0.999), batch size 16, a
/// learning rate of 1e-4 halved every 5 epochs, stopping when validation
/// loss no longer decreases. With the scaled-down synthetic datasets (two
/// orders of magnitude fewer gradient steps per epoch than JD-scale data)
/// the same schedule under-trains, so the defaults keep the optimizer /
/// batch size / halving schedule / early stopping but use a proportionally
/// larger base rate; EXPERIMENTS.md documents this substitution.
struct TrainConfig {
  float learning_rate = 2e-3f;
  int batch_size = 16;
  int lr_halve_epochs = 12;
  int max_epochs = 150;
  int early_stop_patience = 15;
  uint64_t seed = 7;
  bool verbose = false;

  /// --- Crash-safe checkpointing (DESIGN.md §9) ----------------------------
  /// When > 0, `checkpoint_sink` is invoked with a full TrainCheckpoint
  /// every this many completed epochs (and once more after the final epoch,
  /// so a finished run always leaves a terminal checkpoint). 0 disables.
  int checkpoint_every_epochs = 0;
  /// Receives each checkpoint; returns false on write failure. A failed
  /// write never aborts training — it is counted on
  /// `train.checkpoint.failures` and training continues (the previous
  /// checkpoint stays valid on disk thanks to atomic temp+rename).
  std::function<bool(const TrainCheckpoint&)> checkpoint_sink;
  /// Non-null resumes from this state instead of starting at epoch 0. The
  /// checkpoint's seed and parameter shapes must match (CHECKed): resuming
  /// an incompatible run is a programming error upstream — the CLI validates
  /// user input before getting here.
  const TrainCheckpoint* resume = nullptr;
};

struct TrainResult {
  int epochs_run = 0;
  double best_val_loss = 0.0;
  double final_train_loss = 0.0;
  double train_seconds = 0.0;
};

/// Trains the model in place with masked cross-entropy over candidate sets,
/// restoring the best-validation-loss parameters before returning.
/// All samples must carry labels.
///
/// With `config.resume` set, training continues from the checkpointed epoch
/// with the exact optimizer/schedule/RNG state, so (same data, same config)
/// the final model is bit-identical to a run that was never interrupted.
TrainResult TrainLocMatcher(LocMatcher* model,
                            const std::vector<AddressSample>& train,
                            const std::vector<AddressSample>& val,
                            const TrainConfig& config);

}  // namespace dlinfma
}  // namespace dlinf

#endif  // DLINF_DLINFMA_TRAINER_H_
