#include "fault/fault.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace dlinf {
namespace fault {
namespace {

/// splitmix64 finalizer — the stationary hash behind probabilistic firing
/// decisions. Fast, stateless, and well-distributed for counter inputs.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashName(std::string_view name) {
  // FNV-1a; only used to decorrelate per-point decision streams.
  uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

/// Mutable per-point runtime state. Lock-free: hits/fires are relaxed
/// atomics, the spec is immutable after Arm.
struct PointState {
  explicit PointState(FaultSpec s)
      : spec(std::move(s)),
        name_hash(HashName(spec.point)),
        fire_counter(obs::MetricsRegistry::Global().GetCounter(
            "fault.fires." + spec.point)) {}

  const FaultSpec spec;
  const uint64_t name_hash;
  obs::Counter* const fire_counter;
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> fires{0};
};

/// One armed plan, immutable apart from the per-point atomics. Instances
/// are retained for the process lifetime (like obs metrics) so readers
/// never race a teardown; the count is bounded by the number of Arm calls.
struct ArmedState {
  std::unordered_map<std::string, std::unique_ptr<PointState>, SvHash, SvEq>
      points;
  uint64_t seed = 0;
  obs::Counter* total_counter = nullptr;
  std::atomic<int64_t> total_fires{0};
};

std::mutex g_arm_mu;
std::atomic<ArmedState*> g_current{nullptr};

/// Keeps every state ever armed reachable (LSan-clean, stable pointers).
std::vector<std::unique_ptr<ArmedState>>& RetainedStates() {
  static auto* states = new std::vector<std::unique_ptr<ArmedState>>();
  return *states;
}

}  // namespace

namespace internal {

std::atomic<bool> g_armed{false};

std::optional<Fire> HitSlow(std::string_view point) {
  ArmedState* state = g_current.load(std::memory_order_acquire);
  if (state == nullptr) return std::nullopt;
  const auto it = state->points.find(point);
  if (it == state->points.end()) return std::nullopt;
  PointState& ps = *it->second;
  const int64_t n = ps.hits.fetch_add(1, std::memory_order_relaxed);
  const FaultSpec& spec = ps.spec;
  if (n < spec.skip_first) return std::nullopt;
  if (spec.probability < 1.0) {
    // Deterministic per (seed, point, hit index): replays bit-identically.
    const uint64_t h =
        Mix64(state->seed ^ ps.name_hash ^ static_cast<uint64_t>(n));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= spec.probability) return std::nullopt;
  }
  if (spec.max_fires >= 0) {
    const int64_t granted = ps.fires.fetch_add(1, std::memory_order_relaxed);
    if (granted >= spec.max_fires) {
      ps.fires.fetch_sub(1, std::memory_order_relaxed);
      return std::nullopt;
    }
  } else {
    ps.fires.fetch_add(1, std::memory_order_relaxed);
  }
  state->total_fires.fetch_add(1, std::memory_order_relaxed);
  ps.fire_counter->Add(1);
  state->total_counter->Add(1);
  return Fire{spec.latency_ms, spec.param};
}

}  // namespace internal

void Arm(const FaultPlan& plan, uint64_t seed) {
  auto state = std::make_unique<ArmedState>();
  state->seed = seed;
  state->total_counter =
      obs::MetricsRegistry::Global().GetCounter("fault.fires");
  // Later specs for the same point override earlier ones.
  for (const FaultSpec& spec : plan.specs()) {
    auto point_state = std::make_unique<PointState>(spec);
    state->points[spec.point] = std::move(point_state);
  }

  std::lock_guard<std::mutex> lock(g_arm_mu);
  internal::g_armed.store(false, std::memory_order_release);
  g_current.store(state.get(), std::memory_order_release);
  RetainedStates().push_back(std::move(state));
  internal::g_armed.store(true, std::memory_order_release);
}

void Disarm() { internal::g_armed.store(false, std::memory_order_release); }

namespace {

const PointState* FindPoint(std::string_view point) {
  const ArmedState* state = g_current.load(std::memory_order_acquire);
  if (state == nullptr) return nullptr;
  const auto it = state->points.find(point);
  return it == state->points.end() ? nullptr : it->second.get();
}

}  // namespace

int64_t FireCount(std::string_view point) {
  const PointState* ps = FindPoint(point);
  return ps == nullptr ? 0 : ps->fires.load(std::memory_order_relaxed);
}

int64_t HitCount(std::string_view point) {
  const PointState* ps = FindPoint(point);
  return ps == nullptr ? 0 : ps->hits.load(std::memory_order_relaxed);
}

int64_t TotalFires() {
  const ArmedState* state = g_current.load(std::memory_order_acquire);
  return state == nullptr
             ? 0
             : state->total_fires.load(std::memory_order_relaxed);
}

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace fault
}  // namespace dlinf
