#ifndef DLINF_FAULT_FAULT_H_
#define DLINF_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Deterministic, seedable fault injection (DESIGN.md §8).
///
/// Library code declares *named injection points* — stable dot-separated
/// identifiers like `io.artifact.bit_flip` or `service.tier.address.fail` —
/// by calling `fault::Hit("point.name")` at the spot where the fault would
/// originate in production (a short read from disk, a slow or failing
/// backend tier, a corrupt GPS sample). A test, the chaos runner, or an
/// operator then *arms* a `FaultPlan` that maps point names to firing rules;
/// every hit on an armed point consults its rule and either passes (returns
/// nullopt) or fires (returns the fault's parameters).
///
/// Guarantees:
///  - **Zero-cost when disarmed.** `Hit()` is a single relaxed atomic load
///    and a predictable branch when no plan is armed; injection points are
///    compiled into release binaries and stay free (the bench regression
///    gate enforces this).
///  - **Deterministic.** Whether the n-th hit of a point fires is a pure
///    function of (plan seed, point name, n): probabilistic rules hash these
///    three values, so a scenario replays identically for a given seed and
///    hit order. Thread interleavings can permute which *call site* observes
///    the n-th hit, but never the total number of fires.
///  - **Thread-safe.** Arming/disarming synchronizes with concurrent hits;
///    per-point state is lock-free atomics, so hot paths never contend on a
///    mutex even while armed.
///  - **Observable.** Every fire increments the global obs counters
///    `fault.fires` and `fault.fires.<point>` so chaos scenarios can
///    cross-check injected fault counts against the metrics dump.
///
/// Naming convention: `<layer>.<component>.<event>`, lowercase, with the
/// layer matching the source directory (`io.*`, `traj.*`, `sim.*`,
/// `service.*`). Points that model latency rather than outright failure end
/// in `.latency`; points that model hard failure end in `.fail` where the
/// distinction matters. The full list of points wired into the stack is
/// documented in DESIGN.md §8.

namespace dlinf {
namespace fault {

/// One injection rule: which point, how often, and with what parameters.
struct FaultSpec {
  std::string point;         ///< Injection-point name (exact match).
  double probability = 1.0;  ///< Chance that an eligible hit fires.
  int64_t skip_first = 0;    ///< Hits that always pass before firing starts.
  int64_t max_fires = -1;    ///< Stop firing after this many (-1: unlimited).
  double latency_ms = 0.0;   ///< Artificial delay for latency points.
  uint64_t param = 0;        ///< Point-specific payload (offset, count, ...).
};

/// What an armed point hands back when it fires.
struct Fire {
  double latency_ms = 0.0;
  uint64_t param = 0;
};

/// An ordered set of injection rules. Build one with the fluent helpers,
/// then `Arm()` it (or use `ScopedFaultPlan` in tests). Plans are plain
/// values: copy, store, and reuse them freely.
class FaultPlan {
 public:
  FaultPlan& Inject(FaultSpec spec) {
    specs_.push_back(std::move(spec));
    return *this;
  }

  /// Fires on every hit of `point`.
  FaultPlan& FailAlways(std::string point) {
    return Inject({.point = std::move(point)});
  }

  /// Fires each hit independently with probability `p`.
  FaultPlan& FailWithProbability(std::string point, double p) {
    return Inject({.point = std::move(point), .probability = p});
  }

  /// Fires on the first `n` hits, then passes forever (e.g. "the first
  /// attempt fails, the retry succeeds").
  FaultPlan& FailFirst(std::string point, int64_t n) {
    return Inject({.point = std::move(point), .max_fires = n});
  }

  /// Adds `ms` of artificial latency on every hit of `point`.
  FaultPlan& AddLatencyMs(std::string point, double ms) {
    return Inject({.point = std::move(point), .latency_ms = ms});
  }

  bool empty() const { return specs_.empty(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  std::vector<FaultSpec> specs_;
};

namespace internal {

extern std::atomic<bool> g_armed;

std::optional<Fire> HitSlow(std::string_view point);

}  // namespace internal

/// True while a plan is armed. Cheap enough for per-point guards, but
/// callers normally just use `Hit()`.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_acquire);
}

/// The injection point: returns the fault parameters if `point` fires on
/// this hit, nullopt otherwise (including always when disarmed). The
/// disarmed path is one relaxed load + branch.
inline std::optional<Fire> Hit(std::string_view point) {
  if (!Armed()) return std::nullopt;
  return internal::HitSlow(point);
}

/// Arms `plan` process-wide with the given seed. Replaces any armed plan;
/// hit/fire counts restart from zero. Arming an empty plan is allowed (every
/// hit passes, still through the armed slow path).
void Arm(const FaultPlan& plan, uint64_t seed);

/// Disarms the active plan. Counts remain readable (FireCount/HitCount keep
/// reporting the last armed run) until the next Arm.
void Disarm();

/// Fires of `point` since the last Arm (0 for unknown points).
int64_t FireCount(std::string_view point);

/// Hits of `point` since the last Arm, fired or not.
int64_t HitCount(std::string_view point);

/// Total fires across all points since the last Arm.
int64_t TotalFires();

/// RAII arm/disarm for tests and scenario runners.
class ScopedFaultPlan {
 public:
  ScopedFaultPlan(const FaultPlan& plan, uint64_t seed) { Arm(plan, seed); }
  ~ScopedFaultPlan() { Disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// Sleeps for `ms` milliseconds — the canonical way latency fires are
/// honoured (kept here so injection sites don't each pull in <thread>).
void SleepForMs(double ms);

}  // namespace fault
}  // namespace dlinf

#endif  // DLINF_FAULT_FAULT_H_
