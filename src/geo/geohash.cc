#include "geo/geohash.h"

#include <cmath>

#include "common/check.h"

namespace dlinf {
namespace {

constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

int Base32Value(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kBase32[i] == c) return i;
  }
  CHECK(false) << "invalid geohash character" << std::string(1, c);
  return -1;
}

}  // namespace

std::string GeohashEncode(const LatLng& coord, int precision) {
  CHECK(precision >= 1 && precision <= 12);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lng_lo = -180.0, lng_hi = 180.0;
  std::string hash;
  hash.reserve(precision);
  int bit = 0;
  int value = 0;
  bool even_bit = true;  // Even bits encode longitude.
  while (static_cast<int>(hash.size()) < precision) {
    if (even_bit) {
      const double mid = (lng_lo + lng_hi) / 2.0;
      if (coord.lng >= mid) {
        value = (value << 1) | 1;
        lng_lo = mid;
      } else {
        value <<= 1;
        lng_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2.0;
      if (coord.lat >= mid) {
        value = (value << 1) | 1;
        lat_lo = mid;
      } else {
        value <<= 1;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      hash += kBase32[value];
      bit = 0;
      value = 0;
    }
  }
  return hash;
}

GeohashBox GeohashDecode(const std::string& hash) {
  CHECK(!hash.empty());
  double lat_lo = -90.0, lat_hi = 90.0;
  double lng_lo = -180.0, lng_hi = 180.0;
  bool even_bit = true;
  for (char c : hash) {
    const int value = Base32Value(c);
    for (int shift = 4; shift >= 0; --shift) {
      const int bit = (value >> shift) & 1;
      if (even_bit) {
        const double mid = (lng_lo + lng_hi) / 2.0;
        if (bit != 0) {
          lng_lo = mid;
        } else {
          lng_hi = mid;
        }
      } else {
        const double mid = (lat_lo + lat_hi) / 2.0;
        if (bit != 0) {
          lat_lo = mid;
        } else {
          lat_hi = mid;
        }
      }
      even_bit = !even_bit;
    }
  }
  return GeohashBox{lat_lo, lat_hi, lng_lo, lng_hi};
}

std::string GeohashNeighbor(const std::string& hash, int dx, int dy) {
  const GeohashBox box = GeohashDecode(hash);
  const double cell_h = box.max_lat - box.min_lat;
  const double cell_w = box.max_lng - box.min_lng;
  LatLng center = box.Center();
  center.lat += dy * cell_h;
  center.lng += dx * cell_w;
  CHECK(center.lat > -90.0 && center.lat < 90.0);
  if (center.lng > 180.0) center.lng -= 360.0;
  if (center.lng < -180.0) center.lng += 360.0;
  return GeohashEncode(center, static_cast<int>(hash.size()));
}

}  // namespace dlinf
