#ifndef DLINF_GEO_GEOHASH_H_
#define DLINF_GEO_GEOHASH_H_

#include <string>

#include "geo/latlng.h"

namespace dlinf {

/// Geodetic bounding box of one geohash cell.
struct GeohashBox {
  double min_lat = 0.0;
  double max_lat = 0.0;
  double min_lng = 0.0;
  double max_lng = 0.0;

  LatLng Center() const {
    return LatLng{(min_lat + max_lat) / 2.0, (min_lng + max_lng) / 2.0};
  }
};

/// Encodes a coordinate as a base-32 geohash of the given precision
/// (1..12 characters). Precision 8 cells are roughly 38 m x 19 m, the grid
/// resolution the UNet-based baseline [20] operates on.
std::string GeohashEncode(const LatLng& coord, int precision);

/// Decodes a geohash string to its cell bounding box. Aborts on characters
/// outside the geohash base-32 alphabet.
GeohashBox GeohashDecode(const std::string& hash);

/// The geohash of the cell `dx` cells east and `dy` cells north of the cell
/// containing `hash`'s center, at the same precision. Used to enumerate the
/// 9x9 neighbourhood for the UNet-based baseline.
std::string GeohashNeighbor(const std::string& hash, int dx, int dy);

}  // namespace dlinf

#endif  // DLINF_GEO_GEOHASH_H_
