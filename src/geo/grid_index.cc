#include "geo/grid_index.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace dlinf {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  CHECK_GT(cell_size, 0.0);
}

int64_t GridIndex::CellKey(double x, double y) const {
  const int64_t cx = static_cast<int64_t>(std::floor(x / cell_size_));
  const int64_t cy = static_cast<int64_t>(std::floor(y / cell_size_));
  // Interleave-free packing: 32 bits per axis is ample for station extents.
  return (cx << 32) ^ (cy & 0xffffffffll);
}

void GridIndex::Insert(int64_t id, const Point& p) {
  cells_[CellKey(p.x, p.y)].push_back(Entry{id, p});
  ++size_;
}

bool GridIndex::Remove(int64_t id, const Point& p) {
  auto it = cells_.find(CellKey(p.x, p.y));
  if (it == cells_.end()) return false;
  std::vector<Entry>& entries = it->second;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id && entries[i].p == p) {
      entries[i] = entries.back();
      entries.pop_back();
      --size_;
      if (entries.empty()) cells_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<int64_t> GridIndex::RadiusQuery(const Point& center,
                                            double radius) const {
  CHECK_GE(radius, 0.0);
  std::vector<int64_t> result;
  const double r2 = radius * radius;
  const int64_t cx_lo =
      static_cast<int64_t>(std::floor((center.x - radius) / cell_size_));
  const int64_t cx_hi =
      static_cast<int64_t>(std::floor((center.x + radius) / cell_size_));
  const int64_t cy_lo =
      static_cast<int64_t>(std::floor((center.y - radius) / cell_size_));
  const int64_t cy_hi =
      static_cast<int64_t>(std::floor((center.y + radius) / cell_size_));
  for (int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
    for (int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
      const int64_t key = (cx << 32) ^ (cy & 0xffffffffll);
      auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (SquaredDistance(e.p, center) <= r2) result.push_back(e.id);
      }
    }
  }
  return result;
}

int64_t GridIndex::Nearest(const Point& center, double max_radius,
                           double* out_distance) const {
  CHECK_GE(max_radius, 0.0);
  int64_t best_id = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  // Expand ring by ring so that typical queries touch few cells.
  const int64_t ccx = static_cast<int64_t>(std::floor(center.x / cell_size_));
  const int64_t ccy = static_cast<int64_t>(std::floor(center.y / cell_size_));
  const int64_t max_ring =
      static_cast<int64_t>(std::ceil(max_radius / cell_size_)) + 1;
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    // Once a hit exists and the next ring cannot beat it, stop.
    if (best_id >= 0) {
      const double ring_min_dist =
          (static_cast<double>(ring) - 1.0) * cell_size_;
      if (ring_min_dist > 0 && ring_min_dist * ring_min_dist > best_d2) break;
    }
    for (int64_t cx = ccx - ring; cx <= ccx + ring; ++cx) {
      for (int64_t cy = ccy - ring; cy <= ccy + ring; ++cy) {
        // Visit only the ring boundary (interior was covered earlier).
        if (ring > 0 && cx != ccx - ring && cx != ccx + ring &&
            cy != ccy - ring && cy != ccy + ring) {
          continue;
        }
        const int64_t key = (cx << 32) ^ (cy & 0xffffffffll);
        auto it = cells_.find(key);
        if (it == cells_.end()) continue;
        for (const Entry& e : it->second) {
          const double d2 = SquaredDistance(e.p, center);
          if (d2 < best_d2) {
            best_d2 = d2;
            best_id = e.id;
          }
        }
      }
    }
  }
  if (best_id >= 0 && best_d2 <= max_radius * max_radius) {
    if (out_distance != nullptr) *out_distance = std::sqrt(best_d2);
    return best_id;
  }
  return -1;
}

}  // namespace dlinf
