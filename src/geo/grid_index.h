#ifndef DLINF_GEO_GRID_INDEX_H_
#define DLINF_GEO_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace dlinf {

/// Uniform hash-grid spatial index over 2-D points.
///
/// Backs the neighbour queries in DBSCAN, hierarchical clustering's
/// closest-pair search, and candidate retrieval. Points are identified by the
/// integer id supplied at insertion; the index never owns payloads.
class GridIndex {
 public:
  /// `cell_size` should be on the order of the query radii used later
  /// (queries of radius r visit ceil(r / cell_size)^2 cells around the probe).
  explicit GridIndex(double cell_size);

  /// Inserts a point with caller-chosen id. Ids need not be dense or unique,
  /// but Remove() removes all entries with a matching id in the cell of `p`.
  void Insert(int64_t id, const Point& p);

  /// Removes an entry previously inserted with exactly this id and point.
  /// Returns false if no such entry exists.
  bool Remove(int64_t id, const Point& p);

  /// Ids of all points within `radius` of `center` (inclusive).
  std::vector<int64_t> RadiusQuery(const Point& center, double radius) const;

  /// Id of the nearest point within `max_radius`, or -1 when none exists.
  /// On success `*out_distance` (if non-null) receives the distance.
  int64_t Nearest(const Point& center, double max_radius,
                  double* out_distance = nullptr) const;

  int64_t size() const { return size_; }

 private:
  struct Entry {
    int64_t id;
    Point p;
  };

  int64_t CellKey(double x, double y) const;

  double cell_size_;
  std::unordered_map<int64_t, std::vector<Entry>> cells_;
  int64_t size_ = 0;
};

}  // namespace dlinf

#endif  // DLINF_GEO_GRID_INDEX_H_
