#include "geo/kdtree.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace dlinf {

KdTree::KdTree(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<int32_t> indices(points_.size());
  for (size_t i = 0; i < indices.size(); ++i)
    indices[i] = static_cast<int32_t>(i);
  nodes_.reserve(points_.size());
  root_ = Build(&indices, 0, static_cast<int>(indices.size()), 0);
}

int32_t KdTree::Build(std::vector<int32_t>* indices, int lo, int hi,
                      int depth) {
  if (lo >= hi) return -1;
  const uint8_t axis = static_cast<uint8_t>(depth % 2);
  const int mid = lo + (hi - lo) / 2;
  auto cmp = [this, axis](int32_t a, int32_t b) {
    return axis == 0 ? points_[a].x < points_[b].x : points_[a].y < points_[b].y;
  };
  std::nth_element(indices->begin() + lo, indices->begin() + mid,
                   indices->begin() + hi, cmp);
  Node node;
  node.axis = axis;
  node.point_index = (*indices)[mid];
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  const int32_t left = Build(indices, lo, mid, depth + 1);
  const int32_t right = Build(indices, mid + 1, hi, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

int64_t KdTree::Nearest(const Point& query, double* out_distance) const {
  if (root_ < 0) return -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  int64_t best_index = -1;
  NearestRec(root_, query, &best_d2, &best_index);
  if (out_distance != nullptr) *out_distance = std::sqrt(best_d2);
  return best_index;
}

void KdTree::NearestRec(int32_t node_id, const Point& query, double* best_d2,
                        int64_t* best_index) const {
  if (node_id < 0) return;
  const Node& node = nodes_[node_id];
  const Point& p = points_[node.point_index];
  const double d2 = SquaredDistance(p, query);
  if (d2 < *best_d2) {
    *best_d2 = d2;
    *best_index = node.point_index;
  }
  const double delta =
      node.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_child = delta <= 0 ? node.left : node.right;
  const int32_t far_child = delta <= 0 ? node.right : node.left;
  NearestRec(near_child, query, best_d2, best_index);
  if (delta * delta < *best_d2) {
    NearestRec(far_child, query, best_d2, best_index);
  }
}

std::vector<int64_t> KdTree::KNearest(const Point& query, int k) const {
  CHECK_GT(k, 0);
  std::vector<std::pair<double, int64_t>> heap;  // Max-heap on distance².
  if (root_ >= 0) KNearestRec(root_, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<int64_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, index] : heap) out.push_back(index);
  return out;
}

void KdTree::KNearestRec(
    int32_t node_id, const Point& query, int k,
    std::vector<std::pair<double, int64_t>>* heap) const {
  if (node_id < 0) return;
  const Node& node = nodes_[node_id];
  const Point& p = points_[node.point_index];
  const double d2 = SquaredDistance(p, query);
  if (static_cast<int>(heap->size()) < k) {
    heap->emplace_back(d2, node.point_index);
    std::push_heap(heap->begin(), heap->end());
  } else if (d2 < heap->front().first) {
    std::pop_heap(heap->begin(), heap->end());
    heap->back() = {d2, node.point_index};
    std::push_heap(heap->begin(), heap->end());
  }
  const double delta = node.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_child = delta <= 0 ? node.left : node.right;
  const int32_t far_child = delta <= 0 ? node.right : node.left;
  KNearestRec(near_child, query, k, heap);
  const double worst = static_cast<int>(heap->size()) < k
                           ? std::numeric_limits<double>::infinity()
                           : heap->front().first;
  if (delta * delta < worst) KNearestRec(far_child, query, k, heap);
}

std::vector<int64_t> KdTree::RadiusQuery(const Point& query,
                                         double radius) const {
  CHECK_GE(radius, 0.0);
  std::vector<int64_t> out;
  if (root_ >= 0) RadiusRec(root_, query, radius * radius, &out);
  return out;
}

void KdTree::RadiusRec(int32_t node_id, const Point& query, double r2,
                       std::vector<int64_t>* out) const {
  if (node_id < 0) return;
  const Node& node = nodes_[node_id];
  const Point& p = points_[node.point_index];
  if (SquaredDistance(p, query) <= r2) out->push_back(node.point_index);
  const double delta = node.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_child = delta <= 0 ? node.left : node.right;
  const int32_t far_child = delta <= 0 ? node.right : node.left;
  RadiusRec(near_child, query, r2, out);
  if (delta * delta <= r2) RadiusRec(far_child, query, r2, out);
}

}  // namespace dlinf
