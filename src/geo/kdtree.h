#ifndef DLINF_GEO_KDTREE_H_
#define DLINF_GEO_KDTREE_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace dlinf {

/// Static 2-d tree over a point set, built once and queried many times.
///
/// Used where exact nearest neighbours are needed over the whole candidate
/// pool (supervised label assignment: "nearest candidate to the ground-truth
/// location"; the MinDist baseline) where a fixed-radius grid probe would need
/// an unbounded fallback radius.
class KdTree {
 public:
  /// Builds over a copy of `points`. Query results are indexes into that
  /// original vector. An empty point set is allowed (queries return -1).
  explicit KdTree(std::vector<Point> points);

  /// Index of the nearest point to `query`, or -1 when the tree is empty.
  /// Ties resolve to the point reached first during traversal.
  int64_t Nearest(const Point& query, double* out_distance = nullptr) const;

  /// Indexes of the k nearest points, closest first (fewer when the tree is
  /// smaller than k).
  std::vector<int64_t> KNearest(const Point& query, int k) const;

  /// Indexes of all points within `radius` of `query` (inclusive), unsorted.
  std::vector<int64_t> RadiusQuery(const Point& query, double radius) const;

  int64_t size() const { return static_cast<int64_t>(points_.size()); }
  const Point& point(int64_t i) const { return points_[i]; }

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    int32_t point_index = -1;
    uint8_t axis = 0;  // 0 = x, 1 = y.
  };

  int32_t Build(std::vector<int32_t>* indices, int lo, int hi, int depth);
  void NearestRec(int32_t node, const Point& query, double* best_d2,
                  int64_t* best_index) const;
  void KNearestRec(int32_t node, const Point& query, int k,
                   std::vector<std::pair<double, int64_t>>* heap) const;
  void RadiusRec(int32_t node, const Point& query, double r2,
                 std::vector<int64_t>* out) const;

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace dlinf

#endif  // DLINF_GEO_KDTREE_H_
