#include "geo/latlng.h"

#include <cmath>

namespace dlinf {
namespace {

constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double HaversineDistance(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlng = std::sin(dlng / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlng * sin_dlng;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

LocalProjection::LocalProjection(const LatLng& anchor) : anchor_(anchor) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lng_ =
      kEarthRadiusMeters * kDegToRad * std::cos(anchor.lat * kDegToRad);
}

Point LocalProjection::Forward(const LatLng& coord) const {
  return Point{(coord.lng - anchor_.lng) * meters_per_deg_lng_,
               (coord.lat - anchor_.lat) * meters_per_deg_lat_};
}

LatLng LocalProjection::Backward(const Point& p) const {
  return LatLng{anchor_.lat + p.y / meters_per_deg_lat_,
                anchor_.lng + p.x / meters_per_deg_lng_};
}

}  // namespace dlinf
