#ifndef DLINF_GEO_LATLNG_H_
#define DLINF_GEO_LATLNG_H_

#include "geo/point.h"

namespace dlinf {

/// A geodetic coordinate, degrees.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;
};

/// Mean Earth radius in meters (WGS84 mean).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// Great-circle distance in meters between two geodetic coordinates.
double HaversineDistance(const LatLng& a, const LatLng& b);

/// Equirectangular projection anchored at a reference coordinate.
///
/// Accurate to well under a meter over the few-kilometer extent of a delivery
/// station, which is the only scale this project operates at.
class LocalProjection {
 public:
  explicit LocalProjection(const LatLng& anchor);

  /// Geodetic -> local meters (x east, y north) relative to the anchor.
  Point Forward(const LatLng& coord) const;

  /// Local meters -> geodetic.
  LatLng Backward(const Point& p) const;

  const LatLng& anchor() const { return anchor_; }

 private:
  LatLng anchor_;
  double meters_per_deg_lat_;
  double meters_per_deg_lng_;
};

}  // namespace dlinf

#endif  // DLINF_GEO_LATLNG_H_
