#include "geo/point.h"

namespace dlinf {

Point Centroid(const std::vector<Point>& points) {
  if (points.empty()) return Point{};
  double sx = 0.0;
  double sy = 0.0;
  for (const Point& p : points) {
    sx += p.x;
    sy += p.y;
  }
  const double n = static_cast<double>(points.size());
  return Point{sx / n, sy / n};
}

BBox Bounds(const std::vector<Point>& points) {
  if (points.empty()) return BBox{};
  BBox box{points[0].x, points[0].y, points[0].x, points[0].y};
  for (const Point& p : points) {
    if (p.x < box.min_x) box.min_x = p.x;
    if (p.y < box.min_y) box.min_y = p.y;
    if (p.x > box.max_x) box.max_x = p.x;
    if (p.y > box.max_y) box.max_y = p.y;
  }
  return box;
}

}  // namespace dlinf
