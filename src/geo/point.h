#ifndef DLINF_GEO_POINT_H_
#define DLINF_GEO_POINT_H_

#include <cmath>
#include <vector>

namespace dlinf {

/// A point in a local planar coordinate system, in meters.
///
/// All pipeline geometry (trajectories, stay points, candidates, delivery
/// locations) runs in station-local metric coordinates; LatLng / Project
/// (latlng.h) convert to and from geodetic coordinates at the boundary.
struct Point {
  double x = 0.0;  ///< Easting in meters.
  double y = 0.0;  ///< Northing in meters.

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance in meters.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt in hot loops / comparisons).
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Centroid of a non-empty set of points. Returns {0,0} for an empty set.
Point Centroid(const std::vector<Point>& points);

/// Axis-aligned bounding box.
struct BBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
};

/// Tight bounding box of a non-empty point set; a zero box when empty.
BBox Bounds(const std::vector<Point>& points);

}  // namespace dlinf

#endif  // DLINF_GEO_POINT_H_
