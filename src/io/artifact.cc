#include "io/artifact.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/string_util.h"
#include "fault/fault.h"

namespace dlinf {
namespace io {
namespace {

/// The envelope is defined as little-endian on disk; all supported targets
/// are little-endian, which this guards (a big-endian port would add
/// byte-swapping in Take/WriteBytes, not a new format).
bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char byte0;
  std::memcpy(&byte0, &probe, 1);
  return byte0 == 1;
}

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

struct Header {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t kind = 0;
  uint64_t payload_size = 0;
};

constexpr size_t kHeaderSize = 4 + 4 + 4 + 8;

}  // namespace

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kWorld:
      return "world";
    case ArtifactKind::kStayPoints:
      return "stay_points";
    case ArtifactKind::kCandidates:
      return "candidates";
    case ArtifactKind::kSamples:
      return "samples";
    case ArtifactKind::kModel:
      return "model";
    case ArtifactKind::kManifest:
      return "manifest";
    case ArtifactKind::kCheckpoint:
      return "checkpoint";
    case ArtifactKind::kIngestState:
      return "ingest_state";
  }
  return "unknown";
}

uint32_t Crc32Update(uint32_t seed, const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

ArtifactWriter::ArtifactWriter(ArtifactKind kind) : kind_(kind) {
  CHECK(HostIsLittleEndian()) << "artifact format requires little-endian host";
}

void ArtifactWriter::WriteBytes(const void* data, size_t size) {
  payload_.append(static_cast<const char*>(data), size);
}

void ArtifactWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void ArtifactWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void ArtifactWriter::WriteI32(int32_t v) { WriteBytes(&v, sizeof(v)); }
void ArtifactWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void ArtifactWriter::WriteFloat(float v) { WriteBytes(&v, sizeof(v)); }
void ArtifactWriter::WriteDouble(double v) { WriteBytes(&v, sizeof(v)); }
void ArtifactWriter::WriteBool(bool v) {
  const uint8_t byte = v ? 1 : 0;
  WriteBytes(&byte, 1);
}

void ArtifactWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void ArtifactWriter::WriteFloats(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(float));
}

void ArtifactWriter::WriteDoubles(const std::vector<double>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(double));
}

void ArtifactWriter::WriteI64s(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(int64_t));
}

bool ArtifactWriter::Finish(const std::string& path) {
  CHECK(!finished_) << "ArtifactWriter::Finish called twice";
  finished_ = true;
  // Injected write failure: the disk filled up / the volume went away.
  if (fault::Hit("io.artifact.write_fail")) return false;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const Header header{kArtifactMagic, kArtifactVersion,
                        static_cast<uint32_t>(kind_), payload_.size()};
    out.write(reinterpret_cast<const char*>(&header.magic), 4);
    out.write(reinterpret_cast<const char*>(&header.version), 4);
    out.write(reinterpret_cast<const char*>(&header.kind), 4);
    out.write(reinterpret_cast<const char*>(&header.payload_size), 8);
    out.write(payload_.data(), static_cast<std::streamsize>(payload_.size()));
    const uint32_t crc = Crc32(payload_.data(), payload_.size());
    out.write(reinterpret_cast<const char*>(&crc), 4);
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<ArtifactReader> ArtifactReader::Open(const std::string& path,
                                                  ArtifactKind expected,
                                                  std::string* error) {
  auto fail = [error](std::string reason) -> std::optional<ArtifactReader> {
    if (error != nullptr) *error = std::move(reason);
    return std::nullopt;
  };
  if (!HostIsLittleEndian()) return fail("big-endian host unsupported");

  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);

  Header header;
  in.read(reinterpret_cast<char*>(&header.magic), 4);
  in.read(reinterpret_cast<char*>(&header.version), 4);
  in.read(reinterpret_cast<char*>(&header.kind), 4);
  in.read(reinterpret_cast<char*>(&header.payload_size), 8);
  if (!in || in.gcount() != 8) return fail("truncated header in " + path);
  if (header.magic != kArtifactMagic) {
    return fail("bad magic in " + path + " (not a DLInfMA artifact)");
  }
  // Injected stale version: a reader from before a format bump opening a
  // file written after it. Exercises the exact rejection branch below.
  if (fault::Hit("io.artifact.stale_version")) {
    header.version = kArtifactVersion + 1;
  }
  if (header.version != kArtifactVersion) {
    return fail(StrPrintf("format version %u in %s, expected %u",
                          header.version, path.c_str(), kArtifactVersion));
  }
  if (header.kind != static_cast<uint32_t>(expected)) {
    return fail(StrPrintf(
        "artifact kind mismatch in %s: file holds '%s', expected '%s'",
        path.c_str(),
        ArtifactKindName(static_cast<ArtifactKind>(header.kind)),
        ArtifactKindName(expected)));
  }

  ArtifactReader reader;
  reader.payload_.resize(header.payload_size);
  in.read(reader.payload_.data(),
          static_cast<std::streamsize>(header.payload_size));
  std::streamsize got = in.gcount();
  // Injected short read: `param` bytes (default 1) never arrive, as if the
  // file were truncated mid-payload or the read was interrupted.
  if (const auto fire = fault::Hit("io.artifact.short_read")) {
    const auto drop = static_cast<std::streamsize>(
        fire->param == 0 ? 1 : fire->param);
    got -= std::min(got, drop);
    in.setstate(std::ios::failbit);
  }
  if (!in || got != static_cast<std::streamsize>(header.payload_size)) {
    return fail("truncated payload in " + path);
  }
  // Injected bit flip: one payload byte is corrupted in flight (bad sector,
  // bad RAM). The CRC check below must catch it.
  if (const auto fire = fault::Hit("io.artifact.bit_flip")) {
    if (!reader.payload_.empty()) {
      reader.payload_[fire->param % reader.payload_.size()] ^=
          static_cast<char>(0x40);
    }
  }
  uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), 4);
  if (!in || in.gcount() != 4) return fail("missing checksum in " + path);
  const uint32_t computed =
      Crc32(reader.payload_.data(), reader.payload_.size());
  if (stored_crc != computed) {
    return fail(StrPrintf("bad checksum in %s (stored %08x, computed %08x)",
                          path.c_str(), stored_crc, computed));
  }
  return reader;
}

bool ArtifactReader::Take(void* out, size_t size) {
  // size == 0 happens for empty vectors, where `out` may be a null
  // vector::data(); memset/memcpy forbid null even for zero bytes.
  if (!ok_ || payload_.size() - offset_ < size) {
    ok_ = false;
    if (size > 0) std::memset(out, 0, size);
    return false;
  }
  if (size > 0) std::memcpy(out, payload_.data() + offset_, size);
  offset_ += size;
  return true;
}

size_t ArtifactReader::TakeCount(size_t elem_size) {
  const uint64_t count = ReadU64();
  if (!ok_ || count > remaining() / elem_size) {
    ok_ = false;
    return 0;
  }
  return static_cast<size_t>(count);
}

uint32_t ArtifactReader::ReadU32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint64_t ArtifactReader::ReadU64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

int32_t ArtifactReader::ReadI32() {
  int32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

int64_t ArtifactReader::ReadI64() {
  int64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

float ArtifactReader::ReadFloat() {
  float v = 0;
  Take(&v, sizeof(v));
  return v;
}

double ArtifactReader::ReadDouble() {
  double v = 0;
  Take(&v, sizeof(v));
  return v;
}

bool ArtifactReader::ReadBool() {
  uint8_t v = 0;
  Take(&v, 1);
  return v != 0;
}

std::string ArtifactReader::ReadString() {
  const size_t count = TakeCount(1);
  std::string s(count, '\0');
  Take(s.data(), count);
  return ok_ ? s : std::string();
}

std::vector<float> ArtifactReader::ReadFloats() {
  const size_t count = TakeCount(sizeof(float));
  std::vector<float> v(count);
  Take(v.data(), count * sizeof(float));
  return ok_ ? v : std::vector<float>();
}

std::vector<double> ArtifactReader::ReadDoubles() {
  const size_t count = TakeCount(sizeof(double));
  std::vector<double> v(count);
  Take(v.data(), count * sizeof(double));
  return ok_ ? v : std::vector<double>();
}

std::vector<int64_t> ArtifactReader::ReadI64s() {
  const size_t count = TakeCount(sizeof(int64_t));
  std::vector<int64_t> v(count);
  Take(v.data(), count * sizeof(int64_t));
  return ok_ ? v : std::vector<int64_t>();
}

}  // namespace io
}  // namespace dlinf
