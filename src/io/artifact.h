#ifndef DLINF_IO_ARTIFACT_H_
#define DLINF_IO_ARTIFACT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/// \file
/// Versioned, checksummed binary artifact container (DESIGN.md §7).
///
/// Every pipeline artifact the offline stage persists — simulated worlds,
/// stay points, candidate pools, feature samples, model weights — is one
/// file in this common envelope:
///
///   offset  size  field
///   0       4     magic "DLAB" (0x44 0x4c 0x41 0x42, little-endian u32)
///   4       4     format version (u32; readers reject other versions)
///   8       4     artifact kind (u32, see ArtifactKind)
///   12      8     payload size in bytes (u64)
///   20      n     payload (typed fields, little-endian, packed)
///   20+n    4     CRC-32 (IEEE 802.3) of the payload bytes
///
/// Writers buffer the payload in memory and emit header + payload + CRC in
/// Finish(); readers validate magic, version, kind, size, and CRC before a
/// single payload byte is handed out, so corrupted / truncated / mismatched
/// files fail with a clean error instead of feeding garbage downstream.
/// Multi-byte values assume a little-endian host (checked at runtime).
///
/// Untrusted bytes never abort: every validation failure surfaces as a
/// typed error through Open()'s nullopt + reason. Fault-injection points
/// (`io.artifact.short_read`, `io.artifact.bit_flip`,
/// `io.artifact.stale_version`, `io.artifact.write_fail`; see fault/fault.h
/// and DESIGN.md §8) drive those same error branches deterministically.

namespace dlinf {
namespace io {

/// First four bytes of every artifact file ("DLAB" on disk).
inline constexpr uint32_t kArtifactMagic = 0x42414c44u;

/// Current format version. Bump on any incompatible payload-layout change;
/// readers reject files written with a different version (versioning policy
/// in DESIGN.md §7: no silent cross-version reads, conversion is explicit).
inline constexpr uint32_t kArtifactVersion = 1;

/// What an artifact file contains. The kind is part of the envelope so that
/// passing, say, a stay-point file where a model is expected fails fast.
enum class ArtifactKind : uint32_t {
  kWorld = 1,        ///< A full sim::World (codecs.h).
  kStayPoints = 2,   ///< std::vector<StayPoint>.
  kCandidates = 3,   ///< dlinfma::CandidateGeneration state + grid indexes.
  kSamples = 4,      ///< dlinfma::SampleSet feature tensors.
  kModel = 5,        ///< Model config + nn parameter blob.
  kManifest = 6,     ///< Bundle manifest (bundle.h).
  kCheckpoint = 7,   ///< Mid-training resume state (checkpoint.h, "CKPT").
  kIngestState = 8,  ///< Ingest-server snapshot (stream/ingest_server.h).
};

/// Name of a kind for error messages ("world", "model", ...).
const char* ArtifactKindName(ArtifactKind kind);

/// CRC-32 (IEEE, reflected, init/final 0xFFFFFFFF) of a byte range.
uint32_t Crc32(const void* data, size_t size);

/// Incremental update: feed the previous return value (or 0 for the first
/// chunk) as `seed` to checksum data arriving in pieces.
uint32_t Crc32Update(uint32_t seed, const void* data, size_t size);

/// Accumulates an artifact payload in memory via typed little-endian
/// appends, then writes the enveloped file in one Finish() call.
///
/// All Write* calls append to an internal buffer and cannot fail; only
/// Finish() touches the filesystem.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(ArtifactKind kind);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteI64(int64_t v);
  void WriteFloat(float v);
  void WriteDouble(double v);
  void WriteBool(bool v);
  /// Length-prefixed (u64) raw bytes.
  void WriteString(const std::string& s);
  /// Length-prefixed (u64 count) packed float32 array.
  void WriteFloats(const std::vector<float>& v);
  /// Length-prefixed (u64 count) packed float64 array.
  void WriteDoubles(const std::vector<double>& v);
  /// Length-prefixed (u64 count) packed int64 array.
  void WriteI64s(const std::vector<int64_t>& v);
  /// Unprefixed raw bytes (callers manage their own framing).
  void WriteBytes(const void* data, size_t size);

  ArtifactKind kind() const { return kind_; }
  size_t payload_size() const { return payload_.size(); }

  /// Writes header + payload + CRC to `path` (atomically via rename from a
  /// sibling temp file, so readers never observe a half-written artifact).
  /// Returns false on any I/O failure. The writer may be finished only once.
  bool Finish(const std::string& path);

 private:
  ArtifactKind kind_;
  std::string payload_;
  bool finished_ = false;
};

/// Reads and validates one artifact file, then serves typed sequential
/// reads from the in-memory payload.
///
/// Reads past the payload end (or after any earlier failure) set a sticky
/// fail flag and return zero values; callers check ok() once after decoding
/// instead of after every field (the pattern library code uses everywhere).
class ArtifactReader {
 public:
  /// Opens `path` and validates the envelope against `expected` kind and
  /// the current format version. On failure returns nullopt and, when
  /// `error` is non-null, a human-readable reason ("bad checksum", "format
  /// version 7, expected 1", ...).
  static std::optional<ArtifactReader> Open(const std::string& path,
                                            ArtifactKind expected,
                                            std::string* error = nullptr);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  bool ReadBool();
  std::string ReadString();
  std::vector<float> ReadFloats();
  std::vector<double> ReadDoubles();
  std::vector<int64_t> ReadI64s();

  /// True while every read so far stayed within the payload. Also flips to
  /// false via Fail() when a codec detects a semantic inconsistency.
  bool ok() const { return ok_; }
  /// Marks the reader failed (codec-level validation).
  void Fail() { ok_ = false; }

  /// Payload bytes not yet consumed.
  size_t remaining() const { return payload_.size() - offset_; }
  /// True when the payload was consumed exactly and nothing failed.
  bool AtEnd() const { return ok_ && remaining() == 0; }

 private:
  ArtifactReader() = default;
  bool Take(void* out, size_t size);
  /// Reads a u64 count and bounds-checks it against `elem_size` elements of
  /// remaining payload; returns 0 (and fails) on overflow.
  size_t TakeCount(size_t elem_size);

  std::string payload_;
  size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace io
}  // namespace dlinf

#endif  // DLINF_IO_ARTIFACT_H_
