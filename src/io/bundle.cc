#include "io/bundle.h"

#include <filesystem>
#include <utility>

#include "io/codecs.h"
#include "obs/trace.h"

namespace dlinf {
namespace io {
namespace {

constexpr const char* kManifestFile = "manifest.art";
constexpr const char* kWorldFile = "world.art";
constexpr const char* kCandidatesFile = "candidates.art";
constexpr const char* kSamplesFile = "samples.art";
constexpr const char* kModelFile = "model.art";

std::string PathJoin(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

void SetError(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
}

/// Counts persisted in the manifest and re-derived on load; a mismatch
/// means the bundle's files do not belong together (e.g. a model.art copied
/// in from another run).
struct ManifestCounts {
  std::string world_name;
  int64_t num_addresses = 0;
  int64_t num_trips = 0;
  int64_t num_candidates = 0;
  int64_t num_train = 0;
  int64_t num_val = 0;
  int64_t num_test = 0;
};

}  // namespace

std::vector<dlinfma::AddressSample> AllSamples(
    const dlinfma::SampleSet& samples) {
  std::vector<dlinfma::AddressSample> all;
  all.reserve(samples.train.size() + samples.val.size() + samples.test.size());
  all.insert(all.end(), samples.train.begin(), samples.train.end());
  all.insert(all.end(), samples.val.begin(), samples.val.end());
  all.insert(all.end(), samples.test.begin(), samples.test.end());
  return all;
}

bool SaveBundle(const std::string& dir, const sim::World& world,
                const dlinfma::Dataset& data,
                const dlinfma::SampleSet& samples,
                const dlinfma::DlInfMaMethod& method, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    SetError(error, "cannot create bundle directory " + dir);
    return false;
  }
  if (data.gen == nullptr) {
    SetError(error, "dataset has no candidate pool");
    return false;
  }

  if (!SaveWorldArtifact(world, PathJoin(dir, kWorldFile))) {
    SetError(error, "cannot write world artifact");
    return false;
  }
  if (!SaveCandidatesArtifact(*data.gen, PathJoin(dir, kCandidatesFile))) {
    SetError(error, "cannot write candidates artifact");
    return false;
  }
  if (!SaveSamplesArtifact(samples, PathJoin(dir, kSamplesFile))) {
    SetError(error, "cannot write samples artifact");
    return false;
  }
  if (!SaveModelArtifact(method, PathJoin(dir, kModelFile))) {
    SetError(error, "cannot write model artifact (ensemble or untrained?)");
    return false;
  }

  ArtifactWriter manifest(ArtifactKind::kManifest);
  manifest.WriteString(world.name);
  manifest.WriteI64(static_cast<int64_t>(world.addresses.size()));
  manifest.WriteI64(static_cast<int64_t>(world.trips.size()));
  manifest.WriteI64(static_cast<int64_t>(data.gen->candidates().size()));
  manifest.WriteI64(static_cast<int64_t>(samples.train.size()));
  manifest.WriteI64(static_cast<int64_t>(samples.val.size()));
  manifest.WriteI64(static_cast<int64_t>(samples.test.size()));
  if (!manifest.Finish(PathJoin(dir, kManifestFile))) {
    SetError(error, "cannot write bundle manifest");
    return false;
  }
  return true;
}

std::optional<WarmBundle> LoadBundle(const std::string& dir,
                                     std::string* error) {
  obs::Span span("load_bundle");

  ManifestCounts manifest;
  {
    auto reader = ArtifactReader::Open(PathJoin(dir, kManifestFile),
                                       ArtifactKind::kManifest, error);
    if (!reader) return std::nullopt;
    manifest.world_name = reader->ReadString();
    manifest.num_addresses = reader->ReadI64();
    manifest.num_trips = reader->ReadI64();
    manifest.num_candidates = reader->ReadI64();
    manifest.num_train = reader->ReadI64();
    manifest.num_val = reader->ReadI64();
    manifest.num_test = reader->ReadI64();
    if (!reader->AtEnd()) {
      SetError(error, "malformed bundle manifest in " + dir);
      return std::nullopt;
    }
  }

  WarmBundle bundle;
  {
    auto world = LoadWorldArtifact(PathJoin(dir, kWorldFile), error);
    if (!world) return std::nullopt;
    bundle.world = std::make_unique<sim::World>(std::move(*world));
  }
  {
    auto gen = LoadCandidatesArtifact(PathJoin(dir, kCandidatesFile), error);
    if (!gen) return std::nullopt;
    bundle.data.gen =
        std::make_unique<dlinfma::CandidateGeneration>(std::move(*gen));
  }
  {
    auto samples = LoadSamplesArtifact(PathJoin(dir, kSamplesFile), error);
    if (!samples) return std::nullopt;
    bundle.samples = std::move(*samples);
  }
  bundle.method = LoadModelArtifact(PathJoin(dir, kModelFile), error);
  if (bundle.method == nullptr) return std::nullopt;

  // Rebuild the split ids from the world's tags — the same rule
  // dlinfma::BuildDataset applies, minus the mining.
  bundle.data.world = bundle.world.get();
  for (int64_t id : bundle.world->DeliveredAddressIds()) {
    switch (bundle.world->address(id).split) {
      case sim::Split::kTrain:
        bundle.data.train_ids.push_back(id);
        break;
      case sim::Split::kVal:
        bundle.data.val_ids.push_back(id);
        break;
      case sim::Split::kTest:
        bundle.data.test_ids.push_back(id);
        break;
    }
  }

  const bool consistent =
      manifest.world_name == bundle.world->name &&
      manifest.num_addresses ==
          static_cast<int64_t>(bundle.world->addresses.size()) &&
      manifest.num_trips ==
          static_cast<int64_t>(bundle.world->trips.size()) &&
      manifest.num_trips == bundle.data.gen->num_trips() &&
      manifest.num_candidates ==
          static_cast<int64_t>(bundle.data.gen->candidates().size()) &&
      manifest.num_train ==
          static_cast<int64_t>(bundle.samples.train.size()) &&
      manifest.num_val == static_cast<int64_t>(bundle.samples.val.size()) &&
      manifest.num_test == static_cast<int64_t>(bundle.samples.test.size()) &&
      bundle.samples.train.size() == bundle.data.train_ids.size() &&
      bundle.samples.val.size() == bundle.data.val_ids.size() &&
      bundle.samples.test.size() == bundle.data.test_ids.size();
  if (!consistent) {
    SetError(error,
             "bundle artifacts in " + dir +
                 " are inconsistent (mixed files from different runs?)");
    return std::nullopt;
  }
  return bundle;
}

}  // namespace io
}  // namespace dlinf
