#ifndef DLINF_IO_BUNDLE_H_
#define DLINF_IO_BUNDLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "sim/world.h"

/// \file
/// Artifact bundles: one directory holding everything the online service
/// needs to warm-start — the dataset, the mined candidate pool with its
/// retrieval indexes, the extracted feature tensors, and the trained model
/// — as four checksummed artifacts plus a manifest that ties them together:
///
///   <dir>/manifest.art     cross-file counts (consistency check on load)
///   <dir>/world.art        the sim::World
///   <dir>/candidates.art   CandidateGeneration state
///   <dir>/samples.art      SampleSet feature tensors
///   <dir>/model.art        model + train config and trained weights
///
/// `dlinf_cli train` writes a bundle at the end of the offline pipeline;
/// `dlinf_cli serve` / `infer` load it in milliseconds instead of re-running
/// stay-point extraction, clustering, feature extraction, and training.

namespace dlinf {
namespace io {

/// A fully rehydrated offline pipeline: everything InferAll and the query
/// service need, with no retraining or re-mining. `data.world` points at
/// `world`; keep the bundle alive as long as either is used.
struct WarmBundle {
  std::unique_ptr<sim::World> world;
  dlinfma::Dataset data;
  dlinfma::SampleSet samples;
  std::unique_ptr<dlinfma::DlInfMaMethod> method;
};

/// Concatenates a sample set's splits (train, val, test order): the serving
/// inventory of every delivered address.
std::vector<dlinfma::AddressSample> AllSamples(
    const dlinfma::SampleSet& samples);

/// Writes the four artifacts + manifest into `dir` (created if missing).
/// The method must hold a trained single model. Returns false (with a
/// reason in `error`) on any failure.
bool SaveBundle(const std::string& dir, const sim::World& world,
                const dlinfma::Dataset& data,
                const dlinfma::SampleSet& samples,
                const dlinfma::DlInfMaMethod& method,
                std::string* error = nullptr);

/// Loads a bundle written by SaveBundle: validates the manifest, every
/// artifact's envelope (magic/version/kind/CRC), and cross-artifact
/// consistency, then rebuilds the Dataset splits from the world's split
/// tags (the same rule BuildDataset applies). Returns nullopt with a clean
/// error message on any mismatch.
std::optional<WarmBundle> LoadBundle(const std::string& dir,
                                     std::string* error = nullptr);

}  // namespace io
}  // namespace dlinf

#endif  // DLINF_IO_BUNDLE_H_
