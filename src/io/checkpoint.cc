#include "io/checkpoint.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "io/artifact.h"

namespace dlinf {
namespace io {
namespace {

void EncodeFloatLists(const std::vector<std::vector<float>>& lists,
                      ArtifactWriter* w) {
  w->WriteU64(lists.size());
  for (const std::vector<float>& list : lists) w->WriteFloats(list);
}

std::vector<std::vector<float>> DecodeFloatLists(ArtifactReader* r) {
  const uint64_t count = r->ReadU64();
  // Each list costs at least its 8-byte length prefix; anything claiming
  // more lists than remaining bytes allow is a corrupt count.
  if (!r->ok() || count > r->remaining() / sizeof(uint64_t)) {
    r->Fail();
    return {};
  }
  std::vector<std::vector<float>> lists;
  lists.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count && r->ok(); ++i) {
    lists.push_back(r->ReadFloats());
  }
  return lists;
}

/// Shape rules a decoded checkpoint must satisfy before anyone trusts it:
/// one Adam moment pair per parameter tensor with matching element counts,
/// and a best-params snapshot that is either absent or parameter-shaped.
bool StructurallySound(const dlinfma::TrainCheckpoint& ck) {
  if (ck.next_epoch < 0 || ck.adam_step < 0 ||
      ck.epochs_without_improvement < 0) {
    return false;
  }
  if (ck.rng_state.empty()) return false;
  if (ck.adam_m.size() != ck.params.size() ||
      ck.adam_v.size() != ck.params.size()) {
    return false;
  }
  for (size_t i = 0; i < ck.params.size(); ++i) {
    if (ck.adam_m[i].size() != ck.params[i].size() ||
        ck.adam_v[i].size() != ck.params[i].size()) {
      return false;
    }
  }
  if (!ck.best_params.empty()) {
    if (ck.best_params.size() != ck.params.size()) return false;
    for (size_t i = 0; i < ck.params.size(); ++i) {
      if (ck.best_params[i].size() != ck.params[i].size()) return false;
    }
  }
  return true;
}

}  // namespace

bool SaveCheckpointArtifact(const dlinfma::TrainCheckpoint& ckpt,
                            const std::string& path) {
  // Injected checkpoint-write failure: the volume filled up or went away at
  // an epoch boundary. Fired before any filesystem touch, so the previous
  // checkpoint file survives untouched.
  if (fault::Hit("train.checkpoint.write_fail")) return false;

  ArtifactWriter w(ArtifactKind::kCheckpoint);
  w.WriteI32(ckpt.next_epoch);
  w.WriteU64(ckpt.seed);
  w.WriteFloat(ckpt.learning_rate);
  w.WriteI32(ckpt.schedule_epoch);
  w.WriteI64(ckpt.adam_step);
  w.WriteString(ckpt.rng_state);
  w.WriteDouble(ckpt.best_val_loss);
  w.WriteI32(ckpt.epochs_without_improvement);
  w.WriteDouble(ckpt.final_train_loss);
  w.WriteI64s(ckpt.sample_order);
  EncodeFloatLists(ckpt.params, &w);
  EncodeFloatLists(ckpt.adam_m, &w);
  EncodeFloatLists(ckpt.adam_v, &w);
  EncodeFloatLists(ckpt.best_params, &w);
  return w.Finish(path);
}

std::optional<dlinfma::TrainCheckpoint> LoadCheckpointArtifact(
    const std::string& path, std::string* error) {
  auto reader = ArtifactReader::Open(path, ArtifactKind::kCheckpoint, error);
  if (!reader) return std::nullopt;
  ArtifactReader& r = *reader;

  dlinfma::TrainCheckpoint ck;
  ck.next_epoch = r.ReadI32();
  ck.seed = r.ReadU64();
  ck.learning_rate = r.ReadFloat();
  ck.schedule_epoch = r.ReadI32();
  ck.adam_step = r.ReadI64();
  ck.rng_state = r.ReadString();
  ck.best_val_loss = r.ReadDouble();
  ck.epochs_without_improvement = r.ReadI32();
  ck.final_train_loss = r.ReadDouble();
  ck.sample_order = r.ReadI64s();
  ck.params = DecodeFloatLists(&r);
  ck.adam_m = DecodeFloatLists(&r);
  ck.adam_v = DecodeFloatLists(&r);
  ck.best_params = DecodeFloatLists(&r);

  if (!r.AtEnd() || !StructurallySound(ck)) {
    if (error != nullptr) *error = "malformed checkpoint payload in " + path;
    return std::nullopt;
  }
  return ck;
}

}  // namespace io
}  // namespace dlinf
