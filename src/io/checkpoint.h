#ifndef DLINF_IO_CHECKPOINT_H_
#define DLINF_IO_CHECKPOINT_H_

#include <optional>
#include <string>

#include "dlinfma/trainer.h"

/// \file
/// Crash-safe training checkpoints (DESIGN.md §9).
///
/// A CKPT artifact is one dlinfma::TrainCheckpoint — the complete
/// between-epoch state of a training run (model parameters, Adam moments and
/// step, halving-schedule epoch, RNG engine, best-validation snapshot and
/// early-stop counters, shuffle permutation) — in the standard checksummed
/// DLAB envelope (artifact.h, kind `checkpoint`). Writes go through the
/// envelope's atomic temp+rename, so a crash mid-write leaves the previous
/// checkpoint intact and a reader never observes a torn file; any
/// corruption, truncation, or version skew surfaces as a typed error from
/// Load, never a crash.
///
/// The fault point `train.checkpoint.write_fail` (DESIGN.md §8) makes Save
/// report failure without touching the filesystem — the "disk full at epoch
/// boundary" drill the chaos runner and tests replay deterministically.

namespace dlinf {
namespace io {

/// Persists `ckpt` at `path` in the CKPT envelope. Returns false on the
/// injected `train.checkpoint.write_fail` fault or any real I/O failure;
/// in both cases no file is created or replaced.
bool SaveCheckpointArtifact(const dlinfma::TrainCheckpoint& ckpt,
                            const std::string& path);

/// Loads and validates a CKPT artifact. On any open/validation/decode
/// failure returns nullopt with a human-readable reason in `error`. A
/// successful load is structurally sound (per-tensor moment/parameter
/// shapes consistent, counters non-negative); whether it matches a given
/// model/config is checked by the trainer at resume time.
std::optional<dlinfma::TrainCheckpoint> LoadCheckpointArtifact(
    const std::string& path, std::string* error = nullptr);

}  // namespace io
}  // namespace dlinf

#endif  // DLINF_IO_CHECKPOINT_H_
