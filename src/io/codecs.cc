#include "io/codecs.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace dlinf {
namespace io {
namespace {

/// --- Shared field helpers -------------------------------------------------

void WritePoint(ArtifactWriter* w, const Point& p) {
  w->WriteDouble(p.x);
  w->WriteDouble(p.y);
}

Point ReadPoint(ArtifactReader* r) {
  Point p;
  p.x = r->ReadDouble();
  p.y = r->ReadDouble();
  return p;
}

/// Enums are persisted as i32 and range-checked on read so that corrupted
/// (but checksum-valid, e.g. hand-edited) files cannot smuggle invalid
/// enumerators into switch statements downstream.
template <typename E>
E ReadEnum(ArtifactReader* r, int32_t max_value) {
  const int32_t v = r->ReadI32();
  if (v < 0 || v > max_value) {
    r->Fail();
    return static_cast<E>(0);
  }
  return static_cast<E>(v);
}

void WriteStayPoint(ArtifactWriter* w, const StayPoint& sp) {
  WritePoint(w, sp.location);
  w->WriteDouble(sp.start_time);
  w->WriteDouble(sp.end_time);
  w->WriteI64(sp.courier_id);
  w->WriteI64(sp.trip_id);
}

StayPoint ReadStayPoint(ArtifactReader* r) {
  StayPoint sp;
  sp.location = ReadPoint(r);
  sp.start_time = r->ReadDouble();
  sp.end_time = r->ReadDouble();
  sp.courier_id = r->ReadI64();
  sp.trip_id = r->ReadI64();
  return sp;
}

/// Writes a sorted (key, vector) view of an unordered map so identical
/// in-memory states always produce byte-identical artifacts (the round-trip
/// tests rely on save -> load -> save being a fixed point).
template <typename V, typename WriteValue>
void WriteI64Map(ArtifactWriter* w,
                 const std::unordered_map<int64_t, V>& map,
                 const WriteValue& write_value) {
  std::vector<int64_t> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  w->WriteU64(keys.size());
  for (int64_t key : keys) {
    w->WriteI64(key);
    write_value(map.at(key));
  }
}

}  // namespace

/// --- World ----------------------------------------------------------------

namespace {

void EncodeWorld(const sim::World& world, ArtifactWriter* w) {
  w->WriteString(world.name);
  WritePoint(w, world.station);

  w->WriteU64(world.communities.size());
  for (const sim::Community& c : world.communities) {
    w->WriteI64(c.id);
    WritePoint(w, c.center);
    WritePoint(w, c.gate);
    WritePoint(w, c.locker);
    w->WriteI32(static_cast<int32_t>(c.split));
  }

  w->WriteU64(world.buildings.size());
  for (const sim::Building& b : world.buildings) {
    w->WriteI64(b.id);
    w->WriteI64(b.community_id);
    WritePoint(w, b.position);
    WritePoint(w, b.reception);
  }

  w->WriteU64(world.addresses.size());
  for (const sim::Address& a : world.addresses) {
    w->WriteI64(a.id);
    w->WriteI64(a.building_id);
    w->WriteI64(a.community_id);
    w->WriteString(a.text);
    WritePoint(w, a.true_delivery_location);
    w->WriteI32(static_cast<int32_t>(a.mode));
    WritePoint(w, a.geocoded_location);
    w->WriteI32(a.poi_category);
    w->WriteDouble(a.order_rate);
    w->WriteI32(static_cast<int32_t>(a.split));
  }

  w->WriteU64(world.couriers.size());
  for (const sim::Courier& c : world.couriers) {
    w->WriteI64(c.id);
    w->WriteI64s(c.zone_community_ids);
  }

  w->WriteU64(world.trips.size());
  for (const sim::DeliveryTrip& trip : world.trips) {
    w->WriteI64(trip.id);
    w->WriteI64(trip.courier_id);
    w->WriteDouble(trip.start_time);
    w->WriteDouble(trip.end_time);

    w->WriteI64(trip.trajectory.courier_id);
    w->WriteU64(trip.trajectory.points.size());
    for (const TrajPoint& p : trip.trajectory.points) {
      w->WriteDouble(p.x);
      w->WriteDouble(p.y);
      w->WriteDouble(p.t);
    }

    w->WriteU64(trip.waybills.size());
    for (const sim::Waybill& wb : trip.waybills) {
      w->WriteI64(wb.id);
      w->WriteI64(wb.address_id);
      w->WriteDouble(wb.receive_time);
      w->WriteDouble(wb.recorded_delivery_time);
      w->WriteDouble(wb.actual_delivery_time);
    }

    w->WriteU64(trip.planned_stays.size());
    for (const sim::PlannedStay& stay : trip.planned_stays) {
      WritePoint(w, stay.location);
      w->WriteDouble(stay.start_time);
      w->WriteDouble(stay.end_time);
      w->WriteI64s(stay.delivered_address_ids);
    }
  }
}

sim::World DecodeWorld(ArtifactReader* r) {
  sim::World world;
  world.name = r->ReadString();
  world.station = ReadPoint(r);

  const uint64_t num_communities = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_communities; ++i) {
    sim::Community c;
    c.id = r->ReadI64();
    c.center = ReadPoint(r);
    c.gate = ReadPoint(r);
    c.locker = ReadPoint(r);
    c.split = ReadEnum<sim::Split>(r, 2);
    world.communities.push_back(std::move(c));
  }

  const uint64_t num_buildings = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_buildings; ++i) {
    sim::Building b;
    b.id = r->ReadI64();
    b.community_id = r->ReadI64();
    b.position = ReadPoint(r);
    b.reception = ReadPoint(r);
    world.buildings.push_back(std::move(b));
  }

  const uint64_t num_addresses = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_addresses; ++i) {
    sim::Address a;
    a.id = r->ReadI64();
    a.building_id = r->ReadI64();
    a.community_id = r->ReadI64();
    a.text = r->ReadString();
    a.true_delivery_location = ReadPoint(r);
    a.mode = ReadEnum<sim::DeliveryMode>(r, 2);
    a.geocoded_location = ReadPoint(r);
    a.poi_category = r->ReadI32();
    a.order_rate = r->ReadDouble();
    a.split = ReadEnum<sim::Split>(r, 2);
    world.addresses.push_back(std::move(a));
  }

  const uint64_t num_couriers = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_couriers; ++i) {
    sim::Courier c;
    c.id = r->ReadI64();
    c.zone_community_ids = r->ReadI64s();
    world.couriers.push_back(std::move(c));
  }

  const uint64_t num_trips = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_trips; ++i) {
    sim::DeliveryTrip trip;
    trip.id = r->ReadI64();
    trip.courier_id = r->ReadI64();
    trip.start_time = r->ReadDouble();
    trip.end_time = r->ReadDouble();

    trip.trajectory.courier_id = r->ReadI64();
    const uint64_t num_points = r->ReadU64();
    for (uint64_t j = 0; r->ok() && j < num_points; ++j) {
      TrajPoint p;
      p.x = r->ReadDouble();
      p.y = r->ReadDouble();
      p.t = r->ReadDouble();
      trip.trajectory.points.push_back(p);
    }

    const uint64_t num_waybills = r->ReadU64();
    for (uint64_t j = 0; r->ok() && j < num_waybills; ++j) {
      sim::Waybill wb;
      wb.id = r->ReadI64();
      wb.address_id = r->ReadI64();
      wb.receive_time = r->ReadDouble();
      wb.recorded_delivery_time = r->ReadDouble();
      wb.actual_delivery_time = r->ReadDouble();
      trip.waybills.push_back(wb);
    }

    const uint64_t num_stays = r->ReadU64();
    for (uint64_t j = 0; r->ok() && j < num_stays; ++j) {
      sim::PlannedStay stay;
      stay.location = ReadPoint(r);
      stay.start_time = r->ReadDouble();
      stay.end_time = r->ReadDouble();
      stay.delivered_address_ids = r->ReadI64s();
      trip.planned_stays.push_back(std::move(stay));
    }
    world.trips.push_back(std::move(trip));
  }
  return world;
}

}  // namespace

void EncodeWorldPayload(const sim::World& world, ArtifactWriter* writer) {
  EncodeWorld(world, writer);
}

sim::World DecodeWorldPayload(ArtifactReader* reader) {
  return DecodeWorld(reader);
}

bool SaveWorldArtifact(const sim::World& world, const std::string& path) {
  ArtifactWriter writer(ArtifactKind::kWorld);
  EncodeWorld(world, &writer);
  return writer.Finish(path);
}

std::optional<sim::World> LoadWorldArtifact(const std::string& path,
                                            std::string* error) {
  auto reader = ArtifactReader::Open(path, ArtifactKind::kWorld, error);
  if (!reader) return std::nullopt;
  sim::World world = DecodeWorld(&*reader);
  if (!reader->AtEnd()) {
    if (error != nullptr) *error = "malformed world payload in " + path;
    return std::nullopt;
  }
  return world;
}

/// --- Stay points ----------------------------------------------------------

bool SaveStayPointsArtifact(const std::vector<StayPoint>& stay_points,
                            const std::string& path) {
  ArtifactWriter writer(ArtifactKind::kStayPoints);
  writer.WriteU64(stay_points.size());
  for (const StayPoint& sp : stay_points) WriteStayPoint(&writer, sp);
  return writer.Finish(path);
}

std::optional<std::vector<StayPoint>> LoadStayPointsArtifact(
    const std::string& path, std::string* error) {
  auto reader = ArtifactReader::Open(path, ArtifactKind::kStayPoints, error);
  if (!reader) return std::nullopt;
  std::vector<StayPoint> stay_points;
  const uint64_t count = reader->ReadU64();
  for (uint64_t i = 0; reader->ok() && i < count; ++i) {
    stay_points.push_back(ReadStayPoint(&*reader));
  }
  if (!reader->AtEnd()) {
    if (error != nullptr) *error = "malformed stay-point payload in " + path;
    return std::nullopt;
  }
  return stay_points;
}

/// --- Candidate generation -------------------------------------------------

void CandidateGenerationCodec::Encode(const dlinfma::CandidateGeneration& gen,
                                      ArtifactWriter* w) {
  w->WriteI64(gen.num_trips_);

  w->WriteU64(gen.stay_points_.size());
  for (const StayPoint& sp : gen.stay_points_) WriteStayPoint(w, sp);

  w->WriteU64(gen.candidates_.size());
  for (const dlinfma::LocationCandidate& c : gen.candidates_) {
    w->WriteI64(c.id);
    WritePoint(w, c.location);
    w->WriteI32(c.num_stay_points);
    w->WriteDouble(c.profile.avg_duration_s);
    w->WriteI32(c.profile.num_couriers);
    for (double bin : c.profile.time_distribution) w->WriteDouble(bin);
  }

  w->WriteU64(gen.trip_visits_.size());
  for (const auto& visits : gen.trip_visits_) {
    w->WriteU64(visits.size());
    for (const dlinfma::TripCandidateVisit& v : visits) {
      w->WriteI64(v.candidate_id);
      w->WriteDouble(v.time);
      w->WriteDouble(v.duration);
    }
  }

  WriteI64Map(w, gen.address_trips_,
              [w](const std::vector<dlinfma::AddressTripRecord>& records) {
                w->WriteU64(records.size());
                for (const dlinfma::AddressTripRecord& rec : records) {
                  w->WriteI64(rec.trip_id);
                  w->WriteDouble(rec.recorded_delivery_time);
                }
              });
  WriteI64Map(w, gen.candidate_trips_,
              [w](const std::vector<int64_t>& ids) { w->WriteI64s(ids); });
  WriteI64Map(w, gen.building_trips_,
              [w](const std::vector<int64_t>& ids) { w->WriteI64s(ids); });
}

std::optional<dlinfma::CandidateGeneration> CandidateGenerationCodec::Decode(
    ArtifactReader* r) {
  dlinfma::CandidateGeneration gen;
  gen.num_trips_ = r->ReadI64();

  const uint64_t num_stays = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_stays; ++i) {
    gen.stay_points_.push_back(ReadStayPoint(r));
  }

  const uint64_t num_candidates = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_candidates; ++i) {
    dlinfma::LocationCandidate c;
    c.id = r->ReadI64();
    c.location = ReadPoint(r);
    c.num_stay_points = r->ReadI32();
    c.profile.avg_duration_s = r->ReadDouble();
    c.profile.num_couriers = r->ReadI32();
    for (double& bin : c.profile.time_distribution) bin = r->ReadDouble();
    gen.candidates_.push_back(std::move(c));
  }

  const uint64_t num_trip_lists = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_trip_lists; ++i) {
    std::vector<dlinfma::TripCandidateVisit> visits;
    const uint64_t num_visits = r->ReadU64();
    for (uint64_t j = 0; r->ok() && j < num_visits; ++j) {
      dlinfma::TripCandidateVisit v;
      v.candidate_id = r->ReadI64();
      v.time = r->ReadDouble();
      v.duration = r->ReadDouble();
      visits.push_back(v);
    }
    gen.trip_visits_.push_back(std::move(visits));
  }

  const uint64_t num_address_entries = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_address_entries; ++i) {
    const int64_t key = r->ReadI64();
    std::vector<dlinfma::AddressTripRecord> records;
    const uint64_t num_records = r->ReadU64();
    for (uint64_t j = 0; r->ok() && j < num_records; ++j) {
      dlinfma::AddressTripRecord rec;
      rec.trip_id = r->ReadI64();
      rec.recorded_delivery_time = r->ReadDouble();
      records.push_back(rec);
    }
    gen.address_trips_[key] = std::move(records);
  }

  const uint64_t num_candidate_entries = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_candidate_entries; ++i) {
    const int64_t key = r->ReadI64();
    gen.candidate_trips_[key] = r->ReadI64s();
  }

  const uint64_t num_building_entries = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < num_building_entries; ++i) {
    const int64_t key = r->ReadI64();
    gen.building_trips_[key] = r->ReadI64s();
  }

  // Referential sanity: every visit list must belong to a trip and every
  // visit must point into the candidate pool.
  if (gen.trip_visits_.size() !=
      static_cast<size_t>(std::max<int64_t>(gen.num_trips_, 0))) {
    r->Fail();
  }
  for (const auto& visits : gen.trip_visits_) {
    for (const dlinfma::TripCandidateVisit& v : visits) {
      if (v.candidate_id < 0 ||
          v.candidate_id >= static_cast<int64_t>(gen.candidates_.size())) {
        r->Fail();
      }
    }
  }
  if (!r->ok()) return std::nullopt;
  return gen;
}

bool SaveCandidatesArtifact(const dlinfma::CandidateGeneration& gen,
                            const std::string& path) {
  ArtifactWriter writer(ArtifactKind::kCandidates);
  CandidateGenerationCodec::Encode(gen, &writer);
  return writer.Finish(path);
}

std::optional<dlinfma::CandidateGeneration> LoadCandidatesArtifact(
    const std::string& path, std::string* error) {
  auto reader = ArtifactReader::Open(path, ArtifactKind::kCandidates, error);
  if (!reader) return std::nullopt;
  auto gen = CandidateGenerationCodec::Decode(&*reader);
  if (!gen || !reader->AtEnd()) {
    if (error != nullptr) *error = "malformed candidate payload in " + path;
    return std::nullopt;
  }
  return gen;
}

/// --- Feature samples ------------------------------------------------------

namespace {

void EncodeSamples(const std::vector<dlinfma::AddressSample>& samples,
                   ArtifactWriter* w) {
  w->WriteU64(samples.size());
  for (const dlinfma::AddressSample& s : samples) {
    w->WriteI64(s.address_id);
    w->WriteI64s(s.candidate_ids);
    w->WriteU64(s.features.size());
    for (const dlinfma::CandidateFeatureVector& f : s.features) {
      w->WriteDouble(f.trip_coverage);
      w->WriteDouble(f.location_commonality);
      w->WriteDouble(f.distance);
      w->WriteDouble(f.avg_duration);
      w->WriteDouble(f.num_couriers);
      for (double bin : f.time_distribution) w->WriteDouble(bin);
    }
    w->WriteDouble(s.address.log_num_deliveries);
    w->WriteI32(s.address.poi_category);
    w->WriteI32(s.label);
  }
}

std::vector<dlinfma::AddressSample> DecodeSamples(ArtifactReader* r) {
  std::vector<dlinfma::AddressSample> samples;
  const uint64_t count = r->ReadU64();
  for (uint64_t i = 0; r->ok() && i < count; ++i) {
    dlinfma::AddressSample s;
    s.address_id = r->ReadI64();
    s.candidate_ids = r->ReadI64s();
    const uint64_t num_features = r->ReadU64();
    for (uint64_t j = 0; r->ok() && j < num_features; ++j) {
      dlinfma::CandidateFeatureVector f;
      f.trip_coverage = r->ReadDouble();
      f.location_commonality = r->ReadDouble();
      f.distance = r->ReadDouble();
      f.avg_duration = r->ReadDouble();
      f.num_couriers = r->ReadDouble();
      for (double& bin : f.time_distribution) bin = r->ReadDouble();
      s.features.push_back(f);
    }
    s.address.log_num_deliveries = r->ReadDouble();
    s.address.poi_category = r->ReadI32();
    s.label = r->ReadI32();
    // A sample's feature rows must align 1:1 with its candidate ids.
    if (s.features.size() != s.candidate_ids.size()) r->Fail();
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace

bool SaveSamplesArtifact(const dlinfma::SampleSet& samples,
                         const std::string& path) {
  ArtifactWriter writer(ArtifactKind::kSamples);
  EncodeSamples(samples.train, &writer);
  EncodeSamples(samples.val, &writer);
  EncodeSamples(samples.test, &writer);
  return writer.Finish(path);
}

std::optional<dlinfma::SampleSet> LoadSamplesArtifact(const std::string& path,
                                                      std::string* error) {
  auto reader = ArtifactReader::Open(path, ArtifactKind::kSamples, error);
  if (!reader) return std::nullopt;
  dlinfma::SampleSet samples;
  samples.train = DecodeSamples(&*reader);
  samples.val = DecodeSamples(&*reader);
  samples.test = DecodeSamples(&*reader);
  if (!reader->AtEnd()) {
    if (error != nullptr) *error = "malformed sample payload in " + path;
    return std::nullopt;
  }
  return samples;
}

/// --- Trained models -------------------------------------------------------

bool SaveModelArtifact(const dlinfma::DlInfMaMethod& method,
                       const std::string& path) {
  const std::string blob = method.ExportParameters();
  if (blob.empty()) return false;  // Ensemble or untrained.

  ArtifactWriter w(ArtifactKind::kModel);
  w.WriteString(method.name());

  const dlinfma::LocMatcherConfig& m = method.model_config();
  w.WriteI32(m.time_bins);
  w.WriteI32(m.time_dense_dim);
  w.WriteI32(m.model_dim);
  w.WriteI32(m.score_dim);
  w.WriteI32(m.poi_embed_dim);
  w.WriteI32(m.num_poi_categories);
  w.WriteI32(m.num_layers);
  w.WriteI32(m.num_heads);
  w.WriteI32(m.ff_dim);
  w.WriteFloat(m.dropout);
  w.WriteBool(m.use_address_context);
  w.WriteI32(static_cast<int32_t>(m.encoder));
  w.WriteI32(m.lstm_hidden);

  const dlinfma::TrainConfig& t = method.train_config();
  w.WriteFloat(t.learning_rate);
  w.WriteI32(t.batch_size);
  w.WriteI32(t.lr_halve_epochs);
  w.WriteI32(t.max_epochs);
  w.WriteI32(t.early_stop_patience);
  w.WriteU64(t.seed);

  w.WriteString(blob);
  return w.Finish(path);
}

std::unique_ptr<dlinfma::DlInfMaMethod> LoadModelArtifact(
    const std::string& path, std::string* error) {
  auto reader = ArtifactReader::Open(path, ArtifactKind::kModel, error);
  if (!reader) return nullptr;
  ArtifactReader& r = *reader;

  const std::string name = r.ReadString();

  dlinfma::LocMatcherConfig m;
  m.time_bins = r.ReadI32();
  m.time_dense_dim = r.ReadI32();
  m.model_dim = r.ReadI32();
  m.score_dim = r.ReadI32();
  m.poi_embed_dim = r.ReadI32();
  m.num_poi_categories = r.ReadI32();
  m.num_layers = r.ReadI32();
  m.num_heads = r.ReadI32();
  m.ff_dim = r.ReadI32();
  m.dropout = r.ReadFloat();
  m.use_address_context = r.ReadBool();
  m.encoder = ReadEnum<dlinfma::LocMatcherConfig::EncoderKind>(&r, 1);
  m.lstm_hidden = r.ReadI32();

  dlinfma::TrainConfig t;
  t.learning_rate = r.ReadFloat();
  t.batch_size = r.ReadI32();
  t.lr_halve_epochs = r.ReadI32();
  t.max_epochs = r.ReadI32();
  t.early_stop_patience = r.ReadI32();
  t.seed = r.ReadU64();

  const std::string blob = r.ReadString();
  if (!r.AtEnd()) {
    if (error != nullptr) *error = "malformed model payload in " + path;
    return nullptr;
  }
  // Model dimensions feed directly into layer constructors; reject
  // non-positive values before they can trip a CHECK.
  if (m.time_bins <= 0 || m.time_dense_dim <= 0 || m.model_dim <= 0 ||
      m.score_dim <= 0 || m.poi_embed_dim <= 0 || m.num_poi_categories <= 0 ||
      m.num_layers <= 0 || m.num_heads <= 0 || m.ff_dim <= 0 ||
      m.lstm_hidden <= 0 || m.model_dim % m.num_heads != 0) {
    if (error != nullptr) *error = "invalid model config in " + path;
    return nullptr;
  }

  auto method = std::make_unique<dlinfma::DlInfMaMethod>(name, m, t);
  if (!method->RestoreModel(blob)) {
    if (error != nullptr) {
      *error = "parameter blob does not match model config in " + path;
    }
    return nullptr;
  }
  return method;
}

}  // namespace io
}  // namespace dlinf
