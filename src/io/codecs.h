#ifndef DLINF_IO_CODECS_H_
#define DLINF_IO_CODECS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dlinfma/candidate_generation.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "io/artifact.h"
#include "sim/world.h"
#include "traj/stay_point.h"

/// \file
/// Save/Load of every pipeline artifact in the checksummed binary envelope
/// of artifact.h. Each Save* returns false on I/O failure; each Load*
/// returns nullopt on any open/validation/decode failure and reports the
/// reason through `error` — never a crash, never a partially valid object.

namespace dlinf {
namespace io {

/// --- Simulated / imported datasets (kWorld) -------------------------------

bool SaveWorldArtifact(const sim::World& world, const std::string& path);
std::optional<sim::World> LoadWorldArtifact(const std::string& path,
                                            std::string* error = nullptr);

/// Raw world payload codec for artifacts that embed a world alongside other
/// fields (e.g. the ingest-server snapshot, kIngestState). DecodeWorldPayload
/// leaves failure signalling to the reader's sticky ok() flag.
void EncodeWorldPayload(const sim::World& world, ArtifactWriter* writer);
sim::World DecodeWorldPayload(ArtifactReader* reader);

/// --- Extracted stay points (kStayPoints) ----------------------------------

bool SaveStayPointsArtifact(const std::vector<StayPoint>& stay_points,
                            const std::string& path);
std::optional<std::vector<StayPoint>> LoadStayPointsArtifact(
    const std::string& path, std::string* error = nullptr);

/// --- Candidate pool + retrieval indexes (kCandidates) ---------------------

/// Serializes the complete mined state of a CandidateGeneration — stay
/// points, candidate pool with profiles, per-trip visit lists, and the
/// address/candidate/building retrieval indexes — so a loaded instance
/// answers Retrieve()/trips_through()/... identically without re-running
/// the mining pass. (This class is the friend the header grants access to.)
class CandidateGenerationCodec {
 public:
  static void Encode(const dlinfma::CandidateGeneration& gen,
                     ArtifactWriter* writer);
  static std::optional<dlinfma::CandidateGeneration> Decode(
      ArtifactReader* reader);
};

bool SaveCandidatesArtifact(const dlinfma::CandidateGeneration& gen,
                            const std::string& path);
std::optional<dlinfma::CandidateGeneration> LoadCandidatesArtifact(
    const std::string& path, std::string* error = nullptr);

/// --- Feature tensors (kSamples) -------------------------------------------

bool SaveSamplesArtifact(const dlinfma::SampleSet& samples,
                         const std::string& path);
std::optional<dlinfma::SampleSet> LoadSamplesArtifact(
    const std::string& path, std::string* error = nullptr);

/// --- Trained models (kModel) ----------------------------------------------

/// Persists the method's name, full model + train configuration, and the
/// trained parameter blob. Only single-model methods are supported (the
/// same restriction as DlInfMaMethod::SaveModel); returns false for
/// ensembles or untrained methods.
bool SaveModelArtifact(const dlinfma::DlInfMaMethod& method,
                       const std::string& path);

/// Reconstructs a DlInfMaMethod with the persisted configuration and
/// installs the trained weights; the result infers without Fit.
std::unique_ptr<dlinfma::DlInfMaMethod> LoadModelArtifact(
    const std::string& path, std::string* error = nullptr);

}  // namespace io
}  // namespace dlinf

#endif  // DLINF_IO_CODECS_H_
