#include "io/wal_frame.h"

#include <cstdio>
#include <cstring>

#include "io/artifact.h"

namespace dlinf {
namespace io {
namespace {

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

uint32_t ReadU32At(const std::string& data, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

uint64_t ReadU64At(const std::string& data, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

/// CRC over the frame's type word followed by its payload, so neither can
/// be altered independently without tripping the checksum.
uint32_t FrameCrc(uint32_t type, const char* payload, size_t size) {
  uint32_t crc = Crc32Update(0, &type, sizeof(type));
  return Crc32Update(crc, payload, size);
}

}  // namespace

const char* WalStatusName(WalStatus status) {
  switch (status) {
    case WalStatus::kOk:
      return "ok";
    case WalStatus::kEof:
      return "eof";
    case WalStatus::kTruncated:
      return "truncated";
    case WalStatus::kBadMagic:
      return "bad_magic";
    case WalStatus::kBadVersion:
      return "bad_version";
    case WalStatus::kBadCrc:
      return "bad_crc";
    case WalStatus::kOversized:
      return "oversized";
  }
  return "unknown";
}

void AppendWalSegmentHeader(uint64_t segment_index, std::string* out) {
  AppendU32(kWalSegmentMagic, out);
  AppendU32(kWalVersion, out);
  AppendU64(segment_index, out);
}

WalStatus DecodeWalSegmentHeader(const std::string& data, size_t* offset,
                                 uint64_t* segment_index) {
  if (data.size() - *offset < kWalSegmentHeaderSize) {
    return WalStatus::kTruncated;
  }
  if (ReadU32At(data, *offset) != kWalSegmentMagic) {
    return WalStatus::kBadMagic;
  }
  if (ReadU32At(data, *offset + 4) != kWalVersion) {
    return WalStatus::kBadVersion;
  }
  if (segment_index != nullptr) {
    *segment_index = ReadU64At(data, *offset + 8);
  }
  *offset += kWalSegmentHeaderSize;
  return WalStatus::kOk;
}

void AppendWalFrame(uint32_t type, const std::string& payload,
                    std::string* out) {
  AppendU32(kWalFrameMagic, out);
  AppendU32(static_cast<uint32_t>(payload.size()), out);
  AppendU32(FrameCrc(type, payload.data(), payload.size()), out);
  AppendU32(type, out);
  out->append(payload);
}

WalStatus DecodeWalFrame(const std::string& data, size_t* offset,
                         size_t max_payload, WalFrame* frame) {
  const size_t remaining = data.size() - *offset;
  if (remaining == 0) return WalStatus::kEof;
  if (remaining < kWalFrameHeaderSize) return WalStatus::kTruncated;
  if (ReadU32At(data, *offset) != kWalFrameMagic) return WalStatus::kBadMagic;
  const uint32_t payload_size = ReadU32At(data, *offset + 4);
  if (payload_size > max_payload) return WalStatus::kOversized;
  if (remaining - kWalFrameHeaderSize < payload_size) {
    return WalStatus::kTruncated;
  }
  const uint32_t want_crc = ReadU32At(data, *offset + 8);
  const uint32_t type = ReadU32At(data, *offset + 12);
  const char* payload = data.data() + *offset + kWalFrameHeaderSize;
  if (FrameCrc(type, payload, payload_size) != want_crc) {
    return WalStatus::kBadCrc;
  }
  frame->type = type;
  frame->payload.assign(payload, payload_size);
  *offset += kWalFrameHeaderSize + payload_size;
  return WalStatus::kOk;
}

std::string WalSegmentFileName(uint64_t segment_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(segment_index));
  return buf;
}

bool ParseWalSegmentFileName(const std::string& name,
                             uint64_t* segment_index) {
  // "wal-" + at least 8 digits + ".log".
  if (name.size() < 16 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t index = 0;
  for (size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    index = index * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *segment_index = index;
  return true;
}

}  // namespace io
}  // namespace dlinf
