#ifndef DLINF_IO_WAL_FRAME_H_
#define DLINF_IO_WAL_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

/// \file
/// On-disk framing for the ingest write-ahead log (DESIGN.md §14).
///
/// A WAL directory holds numbered segment files `wal-<%08u>.log`. Each
/// segment starts with a fixed header and is followed by zero or more
/// CRC32-framed records:
///
///   segment header (16 bytes):
///     offset  size  field
///     0       4     magic "WALS" (little-endian u32)
///     4       4     format version (u32; readers reject other versions)
///     8       8     segment index (u64; must match the filename)
///
///   frame (16 + n bytes):
///     offset  size  field
///     0       4     magic "WALF" (little-endian u32)
///     4       4     payload size n (u32)
///     8       4     CRC-32 (IEEE) of type + payload bytes
///     12      4     record type (u32, opaque to this layer)
///     16      n     payload bytes
///
/// The frame magic exists so that a torn tail (power cut / SIGKILL between
/// write(2) calls) is distinguishable from silent corruption: replay stops
/// at the first byte that is not a complete, checksum-valid frame and
/// reports *where* so the writer can truncate and resume appending there.
/// Decoding is pure and never aborts on untrusted bytes — every failure
/// is a typed WalStatus.

namespace dlinf {
namespace io {

inline constexpr uint32_t kWalSegmentMagic = 0x534c4157u;  // "WALS"
inline constexpr uint32_t kWalFrameMagic = 0x464c4157u;    // "WALF"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalSegmentHeaderSize = 16;
inline constexpr size_t kWalFrameHeaderSize = 16;

/// Typed outcome of decoding a segment header or a frame. Everything except
/// kOk is a reason to stop replay; only kBadCrc / kTruncated / kBadMagic at
/// the tail are recoverable by truncation (DESIGN.md §14).
enum class WalStatus {
  kOk = 0,
  kEof,         ///< Clean end: no bytes left at a frame boundary.
  kTruncated,   ///< Partial header or payload (torn write at the tail).
  kBadMagic,    ///< Bytes at the cursor are not a segment/frame header.
  kBadVersion,  ///< Segment written by an incompatible format version.
  kBadCrc,      ///< Frame checksum mismatch (bit rot / torn payload).
  kOversized,   ///< Declared payload size exceeds the caller's limit.
};

/// Name for error messages ("ok", "truncated", ...).
const char* WalStatusName(WalStatus status);

/// One decoded frame: the opaque record type plus payload bytes.
struct WalFrame {
  uint32_t type = 0;
  std::string payload;
};

/// Appends a 16-byte segment header for `segment_index` to `out`.
void AppendWalSegmentHeader(uint64_t segment_index, std::string* out);

/// Validates the segment header at the start of `data`. On kOk stores the
/// segment index and advances `*offset` past the header.
WalStatus DecodeWalSegmentHeader(const std::string& data, size_t* offset,
                                 uint64_t* segment_index);

/// Appends one framed record (header + payload) to `out`.
void AppendWalFrame(uint32_t type, const std::string& payload,
                    std::string* out);

/// Decodes the frame at `*offset` in `data`. On kOk fills `*frame` and
/// advances `*offset` past the frame; on any failure leaves `*offset`
/// unchanged (the caller truncates there). `max_payload` bounds the declared
/// payload size so a corrupted length field cannot trigger a huge read.
WalStatus DecodeWalFrame(const std::string& data, size_t* offset,
                         size_t max_payload, WalFrame* frame);

/// Segment file name for an index ("wal-00000042.log").
std::string WalSegmentFileName(uint64_t segment_index);

/// Parses a segment file name; returns false if `name` is not one.
bool ParseWalSegmentFileName(const std::string& name, uint64_t* segment_index);

}  // namespace io
}  // namespace dlinf

#endif  // DLINF_IO_WAL_FRAME_H_
