#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace dlinf {
namespace ml {
namespace {

/// A node pending expansion in best-first growth.
struct Candidate {
  double gain = 0.0;
  int node_index = -1;
  int depth = 0;
  int feature = -1;
  double threshold = 0.0;
  std::vector<int> left_samples;
  std::vector<int> right_samples;

  bool operator<(const Candidate& other) const { return gain < other.gain; }
};

struct SplitContext {
  const std::vector<FeatureRow>* x;
  const std::vector<double>* y;
  const std::vector<double>* w;
  DecisionTree::Options options;
  Rng* rng;
};

/// Negated weighted impurity ("score"): higher is purer.
/// Classification: (Wpos^2 + Wneg^2) / W   (from weighted Gini)
/// Regression:     (sum w*y)^2 / W - const (from variance reduction; the
/// constant sum w*y^2 cancels in gains).
double NodeScore(const SplitContext& ctx, const std::vector<int>& samples) {
  double w_total = 0.0;
  double wy = 0.0;
  for (int i : samples) {
    const double wi = (*ctx.w)[i];
    w_total += wi;
    wy += wi * (*ctx.y)[i];
  }
  if (w_total <= 0.0) return 0.0;
  if (ctx.options.task == DecisionTree::Task::kClassification) {
    const double pos = wy;
    const double neg = w_total - wy;
    return (pos * pos + neg * neg) / w_total;
  }
  return wy * wy / w_total;
}

double LeafValue(const SplitContext& ctx, const std::vector<int>& samples) {
  double w_total = 0.0;
  double wy = 0.0;
  for (int i : samples) {
    w_total += (*ctx.w)[i];
    wy += (*ctx.w)[i] * (*ctx.y)[i];
  }
  return w_total > 0.0 ? wy / w_total : 0.0;
}

/// Finds the best split of `samples`, filling the candidate. Returns false
/// when no split improves the score (node stays a leaf).
bool FindBestSplit(const SplitContext& ctx, const std::vector<int>& samples,
                   Candidate* out) {
  const int num_features = static_cast<int>((*ctx.x)[0].size());
  if (static_cast<int>(samples.size()) < 2 * ctx.options.min_samples_leaf) {
    return false;
  }

  std::vector<int> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  if (ctx.options.feature_subsample > 0 &&
      ctx.options.feature_subsample < num_features) {
    CHECK(ctx.rng != nullptr)
        << "feature_subsample requires an Rng";
    ctx.rng->Shuffle(&features);
    features.resize(ctx.options.feature_subsample);
  }

  const double parent_score = NodeScore(ctx, samples);
  double best_gain = 1e-12;  // Require strictly positive improvement.
  bool found = false;

  std::vector<int> sorted = samples;
  for (int feature : features) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return (*ctx.x)[a][feature] < (*ctx.x)[b][feature];
    });
    // Prefix scan of weights / weighted targets.
    double wl = 0.0, wyl = 0.0;
    double w_total = 0.0, wy_total = 0.0;
    for (int i : sorted) {
      w_total += (*ctx.w)[i];
      wy_total += (*ctx.w)[i] * (*ctx.y)[i];
    }
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      const int i = sorted[k];
      wl += (*ctx.w)[i];
      wyl += (*ctx.w)[i] * (*ctx.y)[i];
      const double v = (*ctx.x)[i][feature];
      const double v_next = (*ctx.x)[sorted[k + 1]][feature];
      if (v_next <= v) continue;  // Not a valid threshold between values.
      const int left_n = static_cast<int>(k) + 1;
      const int right_n = static_cast<int>(sorted.size()) - left_n;
      if (left_n < ctx.options.min_samples_leaf ||
          right_n < ctx.options.min_samples_leaf) {
        continue;
      }
      const double wr = w_total - wl;
      if (wl <= 0.0 || wr <= 0.0) continue;
      double left_score, right_score;
      if (ctx.options.task == DecisionTree::Task::kClassification) {
        const double pos_l = wyl, neg_l = wl - wyl;
        const double pos_r = wy_total - wyl, neg_r = wr - (wy_total - wyl);
        left_score = (pos_l * pos_l + neg_l * neg_l) / wl;
        right_score = (pos_r * pos_r + neg_r * neg_r) / wr;
      } else {
        const double wyr = wy_total - wyl;
        left_score = wyl * wyl / wl;
        right_score = wyr * wyr / wr;
      }
      const double gain = left_score + right_score - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        out->gain = gain;
        out->feature = feature;
        out->threshold = (v + v_next) / 2.0;
        found = true;
      }
    }
  }
  if (!found) return false;

  out->left_samples.clear();
  out->right_samples.clear();
  for (int i : samples) {
    if ((*ctx.x)[i][out->feature] <= out->threshold) {
      out->left_samples.push_back(i);
    } else {
      out->right_samples.push_back(i);
    }
  }
  return true;
}

}  // namespace

void DecisionTree::Fit(const std::vector<FeatureRow>& x,
                       const std::vector<double>& y,
                       const std::vector<double>& w, const Options& options,
                       Rng* rng) {
  CHECK(!x.empty());
  CHECK_EQ(x.size(), y.size());
  CHECK(w.empty() || w.size() == x.size());
  nodes_.clear();

  std::vector<double> weights = w;
  if (weights.empty()) weights.assign(x.size(), 1.0);

  SplitContext ctx{&x, &y, &weights, options, rng};

  std::vector<int> all(x.size());
  std::iota(all.begin(), all.end(), 0);

  Node root;
  root.value = LeafValue(ctx, all);
  nodes_.push_back(root);

  std::priority_queue<Candidate> frontier;
  int leaves = 1;
  {
    Candidate c;
    c.node_index = 0;
    c.depth = 0;
    if (options.max_depth > 0 && FindBestSplit(ctx, all, &c)) {
      frontier.push(std::move(c));
    }
  }

  while (!frontier.empty()) {
    if (options.max_leaves > 0 && leaves >= options.max_leaves) break;
    Candidate c = frontier.top();
    frontier.pop();

    Node left;
    left.value = LeafValue(ctx, c.left_samples);
    Node right;
    right.value = LeafValue(ctx, c.right_samples);
    const int left_index = static_cast<int>(nodes_.size());
    nodes_.push_back(left);
    const int right_index = static_cast<int>(nodes_.size());
    nodes_.push_back(right);

    nodes_[c.node_index].feature = c.feature;
    nodes_[c.node_index].threshold = c.threshold;
    nodes_[c.node_index].left = left_index;
    nodes_[c.node_index].right = right_index;
    ++leaves;  // One leaf became two.

    if (c.depth + 1 < options.max_depth) {
      Candidate cl;
      cl.node_index = left_index;
      cl.depth = c.depth + 1;
      if (FindBestSplit(ctx, c.left_samples, &cl)) frontier.push(std::move(cl));
      Candidate cr;
      cr.node_index = right_index;
      cr.depth = c.depth + 1;
      if (FindBestSplit(ctx, c.right_samples, &cr)) {
        frontier.push(std::move(cr));
      }
    }
  }
}

double DecisionTree::Predict(const FeatureRow& row) const {
  return nodes_[Apply(row)].value;
}

int DecisionTree::Apply(const FeatureRow& row) const {
  CHECK(trained());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    CHECK_LT(static_cast<size_t>(nodes_[node].feature), row.size());
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return node;
}

void DecisionTree::SetLeafValue(int node_index, double value) {
  CHECK(node_index >= 0 && node_index < num_nodes());
  CHECK_EQ(nodes_[node_index].feature, -1);
  nodes_[node_index].value = value;
}

int DecisionTree::num_leaves() const {
  int leaves = 0;
  for (const Node& node : nodes_) {
    if (node.feature < 0) ++leaves;
  }
  return leaves;
}

}  // namespace ml
}  // namespace dlinf
