#ifndef DLINF_ML_DECISION_TREE_H_
#define DLINF_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace dlinf {
namespace ml {

/// Dense feature row. All classical models in this project consume
/// fixed-width double features.
using FeatureRow = std::vector<double>;

/// CART decision tree supporting weighted binary classification (Gini) and
/// regression (variance reduction).
///
/// Nodes are grown best-first (highest impurity decrease first), which gives
/// the "at most N leaf nodes" semantics the paper configures for GeoRank and
/// DLInfMA-RkDT (1024 leaves). It is also the base learner for the random
/// forest and gradient-boosting ensembles.
class DecisionTree {
 public:
  enum class Task { kClassification, kRegression };

  struct Options {
    Task task = Task::kClassification;
    int max_depth = 10;
    /// 0 = unlimited. Counted as leaves of the final tree.
    int max_leaves = 0;
    int min_samples_leaf = 1;
    /// Number of features considered per split; 0 = all. Used by random
    /// forests (typically sqrt of the feature count).
    int feature_subsample = 0;
  };

  DecisionTree() = default;

  /// Fits on rows `x` with targets `y` (classification targets must be 0/1)
  /// and per-sample weights `w` (pass empty for uniform). `rng` is required
  /// only when options.feature_subsample > 0.
  void Fit(const std::vector<FeatureRow>& x, const std::vector<double>& y,
           const std::vector<double>& w, const Options& options,
           Rng* rng = nullptr);

  /// Classification: probability of class 1. Regression: predicted value.
  double Predict(const FeatureRow& row) const;

  /// Index of the leaf node reached by `row` (for gradient boosting's
  /// Newton leaf refit).
  int Apply(const FeatureRow& row) const;

  /// Overrides a leaf's predicted value (gradient boosting).
  void SetLeafValue(int node_index, double value);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  bool trained() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;          // -1 = leaf.
    double threshold = 0.0;    // Goes left when value <= threshold.
    int left = -1;
    int right = -1;
    double value = 0.0;        // Leaf prediction.
  };

  std::vector<Node> nodes_;
};

}  // namespace ml
}  // namespace dlinf

#endif  // DLINF_ML_DECISION_TREE_H_
