#include "ml/gbdt.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace dlinf {
namespace ml {
namespace {

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

}  // namespace

void GradientBoosting::Fit(const std::vector<FeatureRow>& x,
                           const std::vector<double>& y,
                           const std::vector<double>& w,
                           const Options& options) {
  CHECK(!x.empty());
  CHECK_EQ(x.size(), y.size());
  CHECK_GE(options.num_stages, 1);
  learning_rate_ = options.learning_rate;
  trees_.clear();

  std::vector<double> weights = w;
  if (weights.empty()) weights.assign(x.size(), 1.0);

  // Prior: weighted log-odds, clamped away from degenerate all-one-class.
  double wy = 0.0, w_total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    wy += weights[i] * y[i];
    w_total += weights[i];
  }
  const double p0 = std::min(1.0 - 1e-6, std::max(1e-6, wy / w_total));
  base_score_ = std::log(p0 / (1.0 - p0));

  std::vector<double> score(x.size(), base_score_);
  DecisionTree::Options tree_options;
  tree_options.task = DecisionTree::Task::kRegression;
  tree_options.max_depth = options.max_depth;
  tree_options.min_samples_leaf = options.min_samples_leaf;

  for (int stage = 0; stage < options.num_stages; ++stage) {
    // Negative gradient of logistic loss.
    std::vector<double> residual(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      residual[i] = y[i] - Sigmoid(score[i]);
    }
    DecisionTree tree;
    tree.Fit(x, residual, weights, tree_options);

    // One Newton step per leaf: sum(w*r) / sum(w*p*(1-p)).
    struct LeafStats {
      double num = 0.0;
      double den = 0.0;
    };
    std::unordered_map<int, LeafStats> stats;
    std::vector<int> leaf_of(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      leaf_of[i] = tree.Apply(x[i]);
      const double p = Sigmoid(score[i]);
      LeafStats& s = stats[leaf_of[i]];
      s.num += weights[i] * residual[i];
      s.den += weights[i] * p * (1.0 - p);
    }
    for (const auto& [leaf, s] : stats) {
      tree.SetLeafValue(leaf, s.den > 1e-12 ? s.num / s.den : 0.0);
    }
    for (size_t i = 0; i < x.size(); ++i) {
      score[i] += learning_rate_ * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoosting::PredictProba(const FeatureRow& row) const {
  CHECK(!trees_.empty());
  double score = base_score_;
  for (const DecisionTree& tree : trees_) {
    score += learning_rate_ * tree.Predict(row);
  }
  return Sigmoid(score);
}

}  // namespace ml
}  // namespace dlinf
