#ifndef DLINF_ML_GBDT_H_
#define DLINF_ML_GBDT_H_

#include <vector>

#include "ml/decision_tree.h"

namespace dlinf {
namespace ml {

/// Gradient-boosted trees with logistic loss (Friedman [23]); base learner
/// of the DLInfMA-GBDT variant (paper setting: 150 boosting stages).
///
/// Each stage fits a regression tree to the negative gradient (residuals
/// y - p) and refits leaf values with a one-step Newton update.
class GradientBoosting {
 public:
  struct Options {
    int num_stages = 150;
    double learning_rate = 0.1;
    int max_depth = 3;
    int min_samples_leaf = 1;
  };

  /// Fits on 0/1 targets with optional per-sample weights.
  void Fit(const std::vector<FeatureRow>& x, const std::vector<double>& y,
           const std::vector<double>& w, const Options& options);

  /// Probability of class 1 (sigmoid of the boosted score).
  double PredictProba(const FeatureRow& row) const;

  int num_stages() const { return static_cast<int>(trees_.size()); }

 private:
  double base_score_ = 0.0;  // Log-odds prior.
  double learning_rate_ = 0.1;
  std::vector<DecisionTree> trees_;
};

}  // namespace ml
}  // namespace dlinf

#endif  // DLINF_ML_GBDT_H_
