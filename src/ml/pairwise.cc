#include "ml/pairwise.h"

#include <algorithm>

#include "common/check.h"

namespace dlinf {
namespace ml {

FeatureRow RowDifference(const FeatureRow& a, const FeatureRow& b) {
  CHECK_EQ(a.size(), b.size());
  FeatureRow diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  return diff;
}

void MakePairwiseTrainingSet(const std::vector<RankingGroup>& groups,
                             int max_pairs_per_group, Rng* rng,
                             std::vector<FeatureRow>* x,
                             std::vector<double>* y) {
  CHECK(x != nullptr && y != nullptr);
  x->clear();
  y->clear();
  for (const RankingGroup& group : groups) {
    CHECK(group.positive_index >= 0 &&
          group.positive_index < static_cast<int>(group.rows.size()));
    const FeatureRow& pos = group.rows[group.positive_index];
    std::vector<int> negatives;
    for (int i = 0; i < static_cast<int>(group.rows.size()); ++i) {
      if (i != group.positive_index) negatives.push_back(i);
    }
    if (max_pairs_per_group > 0 &&
        static_cast<int>(negatives.size()) > max_pairs_per_group) {
      CHECK(rng != nullptr);
      rng->Shuffle(&negatives);
      negatives.resize(max_pairs_per_group);
    }
    for (int neg_index : negatives) {
      const FeatureRow& neg = group.rows[neg_index];
      x->push_back(RowDifference(pos, neg));
      y->push_back(1.0);
      x->push_back(RowDifference(neg, pos));
      y->push_back(0.0);
    }
  }
}

int PairwiseVoteSelect(
    const std::vector<FeatureRow>& rows,
    const std::function<double(const FeatureRow&)>& pair_score) {
  CHECK(!rows.empty());
  if (rows.size() == 1) return 0;
  std::vector<int> wins(rows.size(), 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows.size(); ++j) {
      if (i == j) continue;
      if (pair_score(RowDifference(rows[i], rows[j])) > 0.5) {
        ++wins[i];
      }
    }
  }
  return static_cast<int>(
      std::max_element(wins.begin(), wins.end()) - wins.begin());
}

}  // namespace ml
}  // namespace dlinf
