#ifndef DLINF_ML_PAIRWISE_H_
#define DLINF_ML_PAIRWISE_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "ml/decision_tree.h"

namespace dlinf {
namespace ml {

/// A group of candidate feature rows with exactly one positive, as produced
/// per address by the candidate-generation pipeline.
struct RankingGroup {
  std::vector<FeatureRow> rows;
  int positive_index = -1;
};

/// Training rows for a pairwise ranking model (GeoRank [6], DLInfMA-RkDT):
/// for each (positive, negative) pair within a group, emits the feature
/// difference (pos - neg) labelled 1 and (neg - pos) labelled 0.
/// `max_pairs_per_group` bounds quadratic blowup (0 = unlimited).
void MakePairwiseTrainingSet(const std::vector<RankingGroup>& groups,
                             int max_pairs_per_group, Rng* rng,
                             std::vector<FeatureRow>* x,
                             std::vector<double>* y);

/// Vote-based pairwise inference: every ordered candidate pair (i, j) is
/// scored by `pair_score` on the feature difference; candidate i wins the
/// comparison when pair_score(x_i - x_j) > 0.5. Returns the index with the
/// most wins (ties resolve to the lower index). This mirrors the "candidate
/// that wins the most comparisons" selection of GeoRank.
int PairwiseVoteSelect(
    const std::vector<FeatureRow>& rows,
    const std::function<double(const FeatureRow&)>& pair_score);

/// Elementwise a - b (rows must be the same width).
FeatureRow RowDifference(const FeatureRow& a, const FeatureRow& b);

}  // namespace ml
}  // namespace dlinf

#endif  // DLINF_ML_PAIRWISE_H_
