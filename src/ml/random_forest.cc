#include "ml/random_forest.h"

#include <cmath>

#include "common/check.h"

namespace dlinf {
namespace ml {

void RandomForest::Fit(const std::vector<FeatureRow>& x,
                       const std::vector<double>& y,
                       const std::vector<double>& w, const Options& options,
                       Rng* rng) {
  CHECK(!x.empty());
  CHECK(rng != nullptr);
  CHECK_GE(options.num_trees, 1);
  trees_.assign(options.num_trees, DecisionTree());

  const int num_features = static_cast<int>(x[0].size());
  DecisionTree::Options tree_options;
  tree_options.task = DecisionTree::Task::kClassification;
  tree_options.max_depth = options.max_depth;
  tree_options.min_samples_leaf = options.min_samples_leaf;
  tree_options.feature_subsample =
      options.feature_subsample > 0
          ? options.feature_subsample
          : std::max(1, static_cast<int>(std::sqrt(num_features)));

  const size_t n = x.size();
  for (DecisionTree& tree : trees_) {
    // Bootstrap sample expressed through sample weights (counts).
    std::vector<double> boot_w(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = static_cast<size_t>(rng->UniformInt(0, n - 1));
      boot_w[pick] += w.empty() ? 1.0 : w[pick];
    }
    tree.Fit(x, y, boot_w, tree_options, rng);
  }
}

double RandomForest::PredictProba(const FeatureRow& row) const {
  CHECK(!trees_.empty());
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.Predict(row);
  return sum / trees_.size();
}

}  // namespace ml
}  // namespace dlinf
