#ifndef DLINF_ML_RANDOM_FOREST_H_
#define DLINF_ML_RANDOM_FOREST_H_

#include <vector>

#include "common/random.h"
#include "ml/decision_tree.h"

namespace dlinf {
namespace ml {

/// Bagged ensemble of classification trees (Breiman [24]); base learner of
/// the DLInfMA-RF variant (paper settings: 400 trees, depth 10).
class RandomForest {
 public:
  struct Options {
    int num_trees = 400;
    int max_depth = 10;
    int min_samples_leaf = 1;
    /// Features tried per split; 0 picks sqrt(num_features).
    int feature_subsample = 0;
  };

  /// Fits on 0/1 targets with optional per-sample weights.
  void Fit(const std::vector<FeatureRow>& x, const std::vector<double>& y,
           const std::vector<double>& w, const Options& options, Rng* rng);

  /// Mean of per-tree class-1 probabilities.
  double PredictProba(const FeatureRow& row) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace ml
}  // namespace dlinf

#endif  // DLINF_ML_RANDOM_FOREST_H_
