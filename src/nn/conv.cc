#include "nn/conv.h"

#include <algorithm>
#include <limits>

namespace dlinf {
namespace nn {

Tensor Conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              int pad) {
  CHECK_EQ(x.rank(), 4);
  CHECK_EQ(weight.rank(), 4);
  CHECK_EQ(bias.rank(), 1);
  const int batch = x.dim(0);
  const int in_c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const int out_c = weight.dim(0);
  CHECK_EQ(weight.dim(1), in_c);
  const int kh = weight.dim(2);
  const int kw = weight.dim(3);
  CHECK_EQ(bias.dim(0), out_c);
  CHECK_GE(pad, 0);
  const int out_h = h + 2 * pad - kh + 1;
  const int out_w = w + 2 * pad - kw + 1;
  CHECK(out_h > 0 && out_w > 0);

  Tensor out = MakeResult({batch, out_c, out_h, out_w}, {x, weight, bias});
  const std::vector<float>& xv = x.data();
  const std::vector<float>& wv = weight.data();
  const std::vector<float>& bv = bias.data();
  std::vector<float>& ov = out.data();

  auto x_at = [&](int b, int c, int i, int j) -> float {
    if (i < 0 || i >= h || j < 0 || j >= w) return 0.0f;
    return xv[((static_cast<int64_t>(b) * in_c + c) * h + i) * w + j];
  };
  for (int b = 0; b < batch; ++b) {
    for (int oc = 0; oc < out_c; ++oc) {
      for (int oi = 0; oi < out_h; ++oi) {
        for (int oj = 0; oj < out_w; ++oj) {
          double acc = bv[oc];
          for (int c = 0; c < in_c; ++c) {
            for (int ki = 0; ki < kh; ++ki) {
              for (int kj = 0; kj < kw; ++kj) {
                acc += static_cast<double>(
                           x_at(b, c, oi - pad + ki, oj - pad + kj)) *
                       wv[((static_cast<int64_t>(oc) * in_c + c) * kh + ki) *
                              kw +
                          kj];
              }
            }
          }
          ov[((static_cast<int64_t>(b) * out_c + oc) * out_h + oi) * out_w +
             oj] = static_cast<float>(acc);
        }
      }
    }
  }

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    auto w_impl = weight.impl();
    auto b_impl = bias.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, w_impl, b_impl, batch, in_c,
                             out_c, h, w, kh, kw, pad, out_h, out_w]() {
      auto x_index = [&](int b, int c, int i, int j) -> int64_t {
        return ((static_cast<int64_t>(b) * in_c + c) * h + i) * w + j;
      };
      for (int b = 0; b < batch; ++b) {
        for (int oc = 0; oc < out_c; ++oc) {
          for (int oi = 0; oi < out_h; ++oi) {
            for (int oj = 0; oj < out_w; ++oj) {
              const float g =
                  self->grad[((static_cast<int64_t>(b) * out_c + oc) *
                                      out_h +
                                  oi) *
                                     out_w +
                                 oj];
              if (g == 0.0f) continue;
              if (b_impl->requires_grad) b_impl->grad[oc] += g;
              for (int c = 0; c < in_c; ++c) {
                for (int ki = 0; ki < kh; ++ki) {
                  const int xi = oi - pad + ki;
                  if (xi < 0 || xi >= h) continue;
                  for (int kj = 0; kj < kw; ++kj) {
                    const int xj = oj - pad + kj;
                    if (xj < 0 || xj >= w) continue;
                    const int64_t wi =
                        ((static_cast<int64_t>(oc) * in_c + c) * kh + ki) *
                            kw +
                        kj;
                    if (w_impl->requires_grad) {
                      w_impl->grad[wi] += g * x_impl->data[x_index(b, c, xi, xj)];
                    }
                    if (x_impl->requires_grad) {
                      x_impl->grad[x_index(b, c, xi, xj)] += g * w_impl->data[wi];
                    }
                  }
                }
              }
            }
          }
        }
      }
    };
  }
  return out;
}

Tensor MaxPool2x2(const Tensor& x) {
  CHECK_EQ(x.rank(), 4);
  const int batch = x.dim(0);
  const int channels = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const int out_h = h / 2;
  const int out_w = w / 2;
  CHECK(out_h > 0 && out_w > 0);

  Tensor out = MakeResult({batch, channels, out_h, out_w}, {x});
  std::vector<int64_t> argmax(out.numel());
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  int64_t flat = 0;
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const int64_t base = (static_cast<int64_t>(b) * channels + c) * h * w;
      for (int oi = 0; oi < out_h; ++oi) {
        for (int oj = 0; oj < out_w; ++oj, ++flat) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_index = -1;
          for (int di = 0; di < 2; ++di) {
            for (int dj = 0; dj < 2; ++dj) {
              const int64_t index =
                  base + static_cast<int64_t>(2 * oi + di) * w + (2 * oj + dj);
              if (xv[index] > best) {
                best = xv[index];
                best_index = index;
              }
            }
          }
          ov[flat] = best;
          argmax[flat] = best_index;
        }
      }
    }
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, argmax = std::move(argmax)]() {
      for (size_t i = 0; i < argmax.size(); ++i) {
        x_impl->grad[argmax[i]] += self->grad[i];
      }
    };
  }
  return out;
}

Tensor UpsampleNearest(const Tensor& x, int out_h, int out_w) {
  CHECK_EQ(x.rank(), 4);
  CHECK(out_h > 0 && out_w > 0);
  const int batch = x.dim(0);
  const int channels = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);

  // Source index for each target row / column (floor of proportional map).
  std::vector<int> src_row(out_h);
  for (int i = 0; i < out_h; ++i) {
    src_row[i] = std::min(h - 1, i * h / out_h);
  }
  std::vector<int> src_col(out_w);
  for (int j = 0; j < out_w; ++j) {
    src_col[j] = std::min(w - 1, j * w / out_w);
  }

  Tensor out = MakeResult({batch, channels, out_h, out_w}, {x});
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  int64_t flat = 0;
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const int64_t base = (static_cast<int64_t>(b) * channels + c) * h * w;
      for (int i = 0; i < out_h; ++i) {
        for (int j = 0; j < out_w; ++j, ++flat) {
          ov[flat] = xv[base + static_cast<int64_t>(src_row[i]) * w + src_col[j]];
        }
      }
    }
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, batch, channels, h, w, out_h,
                             out_w, src_row = std::move(src_row),
                             src_col = std::move(src_col)]() {
      int64_t flat = 0;
      for (int b = 0; b < batch; ++b) {
        for (int c = 0; c < channels; ++c) {
          const int64_t base = (static_cast<int64_t>(b) * channels + c) * h * w;
          for (int i = 0; i < out_h; ++i) {
            for (int j = 0; j < out_w; ++j, ++flat) {
              x_impl->grad[base + static_cast<int64_t>(src_row[i]) * w +
                           src_col[j]] += self->grad[flat];
            }
          }
        }
      }
    };
  }
  return out;
}

}  // namespace nn
}  // namespace dlinf
