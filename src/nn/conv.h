#ifndef DLINF_NN_CONV_H_
#define DLINF_NN_CONV_H_

#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// 2-D convolution for the UNet-based baseline [20].
///
/// `x` is [B, C, H, W], `weight` is [O, C, kh, kw], `bias` is [O]. Stride is
/// 1; `pad` zero-pads symmetrically (pad = kh/2 gives "same" output for odd
/// kernels).
Tensor Conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              int pad);

/// 2x2 max pooling with stride 2 over [B, C, H, W]; trailing odd rows /
/// columns are dropped (floor semantics).
Tensor MaxPool2x2(const Tensor& x);

/// Nearest-neighbour resize of [B, C, H, W] to [B, C, out_h, out_w].
/// Supports arbitrary target sizes, which the 9x9 UNet needs after pooling
/// an odd-sized map.
Tensor UpsampleNearest(const Tensor& x, int out_h, int out_w);

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_CONV_H_
