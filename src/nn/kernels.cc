#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace dlinf {
namespace nn {
namespace kernel {
namespace detail {

// Provided by kernels_avx2.cc. When that translation unit is compiled
// without AVX2/FMA support (DLINF_DISABLE_AVX2 or an older compiler), it
// defines kAvx2Compiled = false and the entry points CHECK-fail; dispatch
// then never selects them.
extern const bool kAvx2Compiled;
void GemmAvx2(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
              const float* b, int64_t ldb, float* c, int64_t ldc,
              bool accumulate);
void AddBiasRowsAvx2(float* y, const float* bias, int64_t rows, int64_t n);
void AddBiasReluRowsAvx2(float* y, const float* bias, int64_t rows,
                         int64_t n);
void ReluInPlaceAvx2(float* y, int64_t count);

}  // namespace detail

namespace {

std::atomic<bool> g_force_scalar{false};

/// One-time dispatch decision: compiled-in AVX2 + CPU support + not forced
/// off via environment. ForceScalar() can still override at runtime.
bool DetectAvx2() {
  if (!detail::kAvx2Compiled) return false;
#if defined(__x86_64__) || defined(__i386__)
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
    return false;
  }
#else
  return false;
#endif
  return true;
}

bool EnvForcesScalar() {
  const char* env = std::getenv("DLINF_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

bool HardwareAvx2() {
  static const bool available = DetectAvx2();
  return available;
}

struct EnvInit {
  EnvInit() { g_force_scalar.store(EnvForcesScalar()); }
};
const EnvInit g_env_init;

/// Scalar GEMM. std::fmaf is the correctly rounded fused multiply-add, so
/// each output element sees exactly the same sequence of single-rounding
/// operations as one lane of the AVX2 microkernel — bit-identical results.
void GemmScalar(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc,
                bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * 4);
    const float* arow = a + i * lda;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* brow = b + kk * ldb;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] = std::fmaf(aik, brow[j], crow[j]);
      }
    }
  }
}

}  // namespace

bool Avx2Enabled() {
  return HardwareAvx2() && !g_force_scalar.load(std::memory_order_relaxed);
}

const char* PathName() { return Avx2Enabled() ? "avx2" : "scalar"; }

void ForceScalar(bool force) { g_force_scalar.store(force); }

void Gemm(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
          const float* b, int64_t ldb, float* c, int64_t ldc,
          bool accumulate) {
  CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  CHECK(lda >= k && ldb >= n && ldc >= n);
  if (Avx2Enabled()) {
    detail::GemmAvx2(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  } else {
    GemmScalar(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  }
}

void Transpose(const float* src, int64_t rows, int64_t cols, int64_t ld_src,
               float* dst) {
  // Blocked copy keeps both access patterns within a few cache lines.
  constexpr int64_t kBlock = 32;
  for (int64_t i0 = 0; i0 < rows; i0 += kBlock) {
    const int64_t i1 = std::min(rows, i0 + kBlock);
    for (int64_t j0 = 0; j0 < cols; j0 += kBlock) {
      const int64_t j1 = std::min(cols, j0 + kBlock);
      for (int64_t i = i0; i < i1; ++i) {
        const float* srow = src + i * ld_src;
        for (int64_t j = j0; j < j1; ++j) {
          dst[j * rows + i] = srow[j];
        }
      }
    }
  }
}

void AddBiasRows(float* y, const float* bias, int64_t rows, int64_t n) {
  if (Avx2Enabled()) {
    detail::AddBiasRowsAvx2(y, bias, rows, n);
    return;
  }
  for (int64_t r = 0; r < rows; ++r) {
    float* row = y + r * n;
    for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void AddBiasReluRows(float* y, const float* bias, int64_t rows, int64_t n) {
  if (Avx2Enabled()) {
    detail::AddBiasReluRowsAvx2(y, bias, rows, n);
    return;
  }
  for (int64_t r = 0; r < rows; ++r) {
    float* row = y + r * n;
    for (int64_t j = 0; j < n; ++j) {
      const float v = row[j] + bias[j];
      row[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

void ReluInPlace(float* y, int64_t count) {
  if (Avx2Enabled()) {
    detail::ReluInPlaceAvx2(y, count);
    return;
  }
  for (int64_t i = 0; i < count; ++i) y[i] = y[i] > 0.0f ? y[i] : 0.0f;
}

void ColumnSumRows(const float* x, int64_t rows, int64_t n, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    for (int64_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

void SoftmaxRows(const float* x, float* y, int64_t rows, int64_t n) {
  CHECK_GT(n, 0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * n;
    float* yr = y + r * n;
    float max_v = xr[0];
    for (int64_t j = 1; j < n; ++j) max_v = std::max(max_v, xr[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      yr[j] = std::exp(xr[j] - max_v);
      denom += yr[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < n; ++j) yr[j] *= inv;
  }
}

void SoftmaxBackwardRows(const float* y, const float* gy, float* gx,
                         int64_t rows, int64_t n) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * n;
    const float* gyr = gy + r * n;
    float* gxr = gx + r * n;
    double dot = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      dot += static_cast<double>(gyr[j]) * yr[j];
    }
    const float dot_f = static_cast<float>(dot);
    for (int64_t j = 0; j < n; ++j) {
      gxr[j] += yr[j] * (gyr[j] - dot_f);
    }
  }
}

void LayerNormRows(const float* x, const float* gamma, const float* beta,
                   float eps, int64_t rows, int64_t n, float* y, float* mean,
                   float* inv_std) {
  CHECK_GT(n, 0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * n;
    double mu = 0.0;
    for (int64_t j = 0; j < n; ++j) mu += xr[j];
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (int64_t j = 0; j < n; ++j) var += (xr[j] - mu) * (xr[j] - mu);
    var /= static_cast<double>(n);
    mean[r] = static_cast<float>(mu);
    inv_std[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
    float* yr = y + r * n;
    for (int64_t j = 0; j < n; ++j) {
      yr[j] = gamma[j] * (xr[j] - mean[r]) * inv_std[r] + beta[j];
    }
  }
}

void LayerNormBackwardRows(const float* x, const float* gamma,
                           const float* gy, const float* mean,
                           const float* inv_std, int64_t rows, int64_t n,
                           float* gx, float* ggamma, float* gbeta) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * n;
    const float* gyr = gy + r * n;
    const float mu = mean[r];
    const float istd = inv_std[r];
    if (ggamma != nullptr || gbeta != nullptr) {
      for (int64_t j = 0; j < n; ++j) {
        const float xhat = (xr[j] - mu) * istd;
        if (ggamma != nullptr) ggamma[j] += gyr[j] * xhat;
        if (gbeta != nullptr) gbeta[j] += gyr[j];
      }
    }
    if (gx != nullptr) {
      // dL/dx = istd/n * (n*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat)),
      // dxhat_j = gy_j * gamma_j.
      double sum_dxhat = 0.0;
      double sum_dxhat_xhat = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        const float dxhat = gyr[j] * gamma[j];
        const float xhat = (xr[j] - mu) * istd;
        sum_dxhat += dxhat;
        sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
      }
      float* gxr = gx + r * n;
      const float nf = static_cast<float>(n);
      for (int64_t j = 0; j < n; ++j) {
        const float dxhat = gyr[j] * gamma[j];
        const float xhat = (xr[j] - mu) * istd;
        gxr[j] += istd * (dxhat - static_cast<float>(sum_dxhat) / nf -
                          xhat * static_cast<float>(sum_dxhat_xhat) / nf);
      }
    }
  }
}

// --- Buffer pool ------------------------------------------------------------

namespace {

/// Per-thread free lists bucketed by power-of-two capacity. Released
/// buffers land in the bucket of floor(log2(capacity)); acquisition looks
/// in ceil(log2(size)), so every pooled hit has sufficient capacity.
constexpr int kNumBuckets = 31;
constexpr size_t kMinPooled = 16;           // Tiny buffers: malloc is fine.
constexpr size_t kMaxPooled = 1u << 26;     // 256 MiB of floats per buffer.
constexpr size_t kMaxPerBucket = 24;

struct BufferPool {
  std::vector<std::vector<float>> buckets[kNumBuckets];
  int64_t reused = 0;
  int64_t allocated = 0;
  ~BufferPool();
};

// Trivially destructible thread-locals are never torn down, so these stay
// readable during and after the pool's own destruction at thread exit
// (tensors with static storage duration release their buffers then).
thread_local BufferPool* t_pool = nullptr;
thread_local bool t_pool_destroyed = false;

BufferPool::~BufferPool() {
  t_pool = nullptr;
  t_pool_destroyed = true;
}

BufferPool* Pool() {
  if (t_pool == nullptr && !t_pool_destroyed) {
    thread_local BufferPool storage;
    t_pool = &storage;
  }
  return t_pool;
}

int BucketFloor(size_t capacity) {
  int bucket = 0;
  while ((static_cast<size_t>(2) << bucket) <= capacity) ++bucket;
  return bucket;  // 2^bucket <= capacity < 2^(bucket+1)
}

int BucketCeil(size_t size) {
  int bucket = 0;
  while ((static_cast<size_t>(1) << bucket) < size) ++bucket;
  return bucket;  // 2^bucket >= size
}

}  // namespace

std::vector<float> AcquireBuffer(size_t size) {
  BufferPool* pool = Pool();
  if (pool != nullptr && size >= kMinPooled && size <= kMaxPooled) {
    const int bucket = BucketCeil(size);
    if (bucket < kNumBuckets && !pool->buckets[bucket].empty()) {
      std::vector<float> out = std::move(pool->buckets[bucket].back());
      pool->buckets[bucket].pop_back();
      ++pool->reused;
      out.assign(size, 0.0f);
      return out;
    }
    ++pool->allocated;
  }
  return std::vector<float>(size, 0.0f);
}

void ReleaseBuffer(std::vector<float>&& buffer) {
  const size_t capacity = buffer.capacity();
  if (capacity < kMinPooled || capacity > kMaxPooled) return;
  BufferPool* pool = Pool();
  if (pool == nullptr) return;
  const int bucket = BucketFloor(capacity);
  if (bucket >= kNumBuckets) return;
  if (pool->buckets[bucket].size() >= kMaxPerBucket) return;
  pool->buckets[bucket].push_back(std::move(buffer));
}

BufferPoolStats GetBufferPoolStats() {
  BufferPoolStats stats;
  if (BufferPool* pool = Pool(); pool != nullptr) {
    stats.reused = pool->reused;
    stats.allocated = pool->allocated;
  }
  return stats;
}

}  // namespace kernel
}  // namespace nn
}  // namespace dlinf
