#ifndef DLINF_NN_KERNELS_H_
#define DLINF_NN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlinf {
namespace nn {
namespace kernel {

/// \file
/// The compute-kernel layer under nn/ (DESIGN.md §12): cache-aware GEMM with
/// an AVX2/FMA microkernel behind runtime CPU dispatch, bias/activation
/// epilogues, row-wise softmax / layer-norm primitives, and a free-list
/// buffer pool for autograd temporaries. Everything above (nn/ops.cc,
/// nn/module.cc) routes its inner loops through these entry points; nothing
/// here records autograd tape state.
///
/// **Determinism contract.** The scalar and AVX2 paths produce bit-identical
/// results: every output element accumulates its k-products in the same
/// serial order, the scalar path uses the correctly rounded std::fmaf and
/// the vector path the hardware vfmadd (the same single-rounding fused
/// operation), and epilogues/softmax/layer-norm use only per-element ops
/// whose rounding does not depend on lane width. tests/kernel_test.cc
/// asserts the bit-identity on every shape it sweeps; the `simd-dispatch`
/// CI job asserts it end to end on the golden pipeline.

/// --- Dispatch -------------------------------------------------------------

/// True when the AVX2/FMA microkernel is active: compiled in (see
/// DLINF_DISABLE_AVX2 in src/nn/CMakeLists.txt), supported by this CPU, and
/// not disabled via the `DLINF_FORCE_SCALAR=1` environment variable or
/// ForceScalar().
bool Avx2Enabled();

/// "avx2" or "scalar" — for startup logs and bench labels.
const char* PathName();

/// Runtime override (test hook; also what DLINF_FORCE_SCALAR sets at static
/// init). Forcing scalar on an AVX2 machine must not change any result.
void ForceScalar(bool force);

/// --- GEMM -----------------------------------------------------------------

/// C[m,n] = (accumulate ? C : 0) + A[m,k] @ B[k,n].
///
/// Row-major with leading dimensions (elements between consecutive rows)
/// `lda`/`ldb`/`ldc`, so sub-blocks of larger matrices (e.g. one attention
/// head's columns) can be multiplied in place. k == 0 zeroes C (or leaves it
/// untouched when accumulating).
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
          const float* b, int64_t ldb, float* c, int64_t ldc,
          bool accumulate);

/// Contiguous convenience overload: lda = k, ldb = n, ldc = n.
inline void Gemm(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, bool accumulate) {
  Gemm(m, n, k, a, k, b, n, c, n, accumulate);
}

/// dst[cols, rows] = src[rows, cols]^T. `ld_src` is src's leading dimension;
/// dst is written contiguously (leading dimension rows). Exact (copy only).
void Transpose(const float* src, int64_t rows, int64_t cols, int64_t ld_src,
               float* dst);

/// --- Epilogues ------------------------------------------------------------

/// y[r, j] += bias[j] for every row. Exact per-element add.
void AddBiasRows(float* y, const float* bias, int64_t rows, int64_t n);

/// y[r, j] = max(y[r, j] + bias[j], 0).
void AddBiasReluRows(float* y, const float* bias, int64_t rows, int64_t n);

/// y[i] = max(y[i], 0) over a flat span.
void ReluInPlace(float* y, int64_t count);

/// out[j] += sum_r x[r, j], accumulated row by row in row-major order (the
/// order broadcast-add backward historically used for bias gradients).
void ColumnSumRows(const float* x, int64_t rows, int64_t n, float* out);

/// --- Softmax --------------------------------------------------------------

/// Numerically stable softmax over each contiguous row of `n` entries;
/// `x` and `y` may alias. Path-invariant by construction (serial exp and
/// double-precision denominator on both paths).
void SoftmaxRows(const float* x, float* y, int64_t rows, int64_t n);

/// gx[r, j] += y[r, j] * (gy[r, j] - sum_i gy[r, i] * y[r, i]) — the softmax
/// Jacobian product, given the forward result `y`.
void SoftmaxBackwardRows(const float* y, const float* gy, float* gx,
                         int64_t rows, int64_t n);

/// --- Layer norm -----------------------------------------------------------

/// y = gamma * (x - mean) * inv_std + beta per row; writes the per-row
/// `mean` / `inv_std` (length `rows`) for the backward pass.
void LayerNormRows(const float* x, const float* gamma, const float* beta,
                   float eps, int64_t rows, int64_t n, float* y, float* mean,
                   float* inv_std);

/// Accumulates layer-norm gradients. Any of gx / ggamma / gbeta may be null
/// to skip that output.
void LayerNormBackwardRows(const float* x, const float* gamma,
                           const float* gy, const float* mean,
                           const float* inv_std, int64_t rows, int64_t n,
                           float* gx, float* ggamma, float* gbeta);

/// --- Buffer pool ----------------------------------------------------------

/// Free-list recycling of float buffers. Training and batched inference
/// allocate and free tensor-sized buffers thousands of times per second;
/// AcquireBuffer pops a zero-filled vector with sufficient capacity from a
/// per-thread size-bucketed pool (falling back to a fresh allocation), and
/// ReleaseBuffer returns storage to the pool instead of freeing it.
/// TensorImpl's destructor releases its data/grad here, so the autograd
/// tape's temporaries stop hammering malloc (DESIGN.md §12).
std::vector<float> AcquireBuffer(size_t size);
void ReleaseBuffer(std::vector<float>&& buffer);

/// Pool observability (tests): buffers handed out from the pool vs fresh.
struct BufferPoolStats {
  int64_t reused = 0;
  int64_t allocated = 0;
};
BufferPoolStats GetBufferPoolStats();

/// RAII pooled buffer for kernel scratch and saved activations held by
/// backward closures. Copyable because std::function requires copyable
/// captures; every instance returns its storage to the pool on destruction.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  explicit PooledBuffer(size_t size) : v_(AcquireBuffer(size)) {}
  explicit PooledBuffer(std::vector<float>&& v) : v_(std::move(v)) {}
  PooledBuffer(const PooledBuffer& other) : v_(other.v_) {}
  PooledBuffer& operator=(const PooledBuffer& other) {
    v_ = other.v_;
    return *this;
  }
  PooledBuffer(PooledBuffer&& other) noexcept = default;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept = default;
  ~PooledBuffer() { ReleaseBuffer(std::move(v_)); }

  float* data() { return v_.data(); }
  const float* data() const { return v_.data(); }
  size_t size() const { return v_.size(); }
  std::vector<float>& vec() { return v_; }
  const std::vector<float>& vec() const { return v_; }

 private:
  std::vector<float> v_;
};

}  // namespace kernel
}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_KERNELS_H_
