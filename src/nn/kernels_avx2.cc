// AVX2/FMA microkernels, isolated in their own translation unit so only
// this file is built with -mavx2 -mfma (see src/nn/CMakeLists.txt). The
// dispatcher in kernels.cc only calls these after a runtime
// __builtin_cpu_supports check, so the rest of the binary stays runnable on
// baseline x86-64. Building with -DDLINF_DISABLE_AVX2=ON (or a compiler
// without AVX2) turns this file into stubs and pins dispatch to scalar.
//
// Determinism: each output element accumulates its k-products serially with
// vfmadd (one fused rounding per step) — exactly the std::fmaf sequence the
// scalar path performs — so the two paths are bit-identical (kernels.h).

#include <cstdint>

#include "common/check.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <cmath>
#include <cstring>
#endif

namespace dlinf {
namespace nn {
namespace kernel {
namespace detail {

#if defined(__AVX2__) && defined(__FMA__)

extern const bool kAvx2Compiled = true;

namespace {

/// 1xN register-tiled row kernel: holds up to 6 8-wide accumulators for one
/// C row across the whole k loop (48 columns per pass), then an 8-wide
/// pass, then a scalar fmaf tail. Every accumulator sees products in k
/// order, matching the scalar path lane for lane.
inline void GemmRow(int64_t n, int64_t k, const float* arow,
                    const float* b, int64_t ldb, float* crow,
                    bool accumulate) {
  int64_t j = 0;
  for (; j + 48 <= n; j += 48) {
    __m256 acc0, acc1, acc2, acc3, acc4, acc5;
    if (accumulate) {
      acc0 = _mm256_loadu_ps(crow + j);
      acc1 = _mm256_loadu_ps(crow + j + 8);
      acc2 = _mm256_loadu_ps(crow + j + 16);
      acc3 = _mm256_loadu_ps(crow + j + 24);
      acc4 = _mm256_loadu_ps(crow + j + 32);
      acc5 = _mm256_loadu_ps(crow + j + 40);
    } else {
      acc0 = acc1 = acc2 = acc3 = acc4 = acc5 = _mm256_setzero_ps();
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 av = _mm256_set1_ps(arow[kk]);
      const float* brow = b + kk * ldb + j;
      acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
      acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
      acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), acc2);
      acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), acc3);
      acc4 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 32), acc4);
      acc5 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 40), acc5);
    }
    _mm256_storeu_ps(crow + j, acc0);
    _mm256_storeu_ps(crow + j + 8, acc1);
    _mm256_storeu_ps(crow + j + 16, acc2);
    _mm256_storeu_ps(crow + j + 24, acc3);
    _mm256_storeu_ps(crow + j + 32, acc4);
    _mm256_storeu_ps(crow + j + 40, acc5);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc = accumulate ? _mm256_loadu_ps(crow + j) : _mm256_setzero_ps();
    for (int64_t kk = 0; kk < k; ++kk) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                            _mm256_loadu_ps(b + kk * ldb + j), acc);
    }
    _mm256_storeu_ps(crow + j, acc);
  }
  for (; j < n; ++j) {
    float acc = accumulate ? crow[j] : 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      // Compiled with -mfma this is a vfmadd — the same single rounding as
      // the vector lanes and the scalar path's std::fmaf.
      acc = std::fmaf(arow[kk], b[kk * ldb + j], acc);
    }
    crow[j] = acc;
  }
}

}  // namespace

void GemmAvx2(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
              const float* b, int64_t ldb, float* c, int64_t ldc,
              bool accumulate) {
  // Row-block the M dimension so the B panel (k x n, the shared operand)
  // streams from cache across consecutive rows. With the model widths used
  // here (k, n <= 64) the whole panel lives in L1; for the occasional
  // larger shapes it still fits L2.
  constexpr int64_t kRowBlock = 64;
  for (int64_t i0 = 0; i0 < m; i0 += kRowBlock) {
    const int64_t i1 = i0 + kRowBlock < m ? i0 + kRowBlock : m;
    for (int64_t i = i0; i < i1; ++i) {
      GemmRow(n, k, a + i * lda, b, ldb, c + i * ldc, accumulate);
    }
  }
}

void AddBiasRowsAvx2(float* y, const float* bias, int64_t rows, int64_t n) {
  for (int64_t r = 0; r < rows; ++r) {
    float* row = y + r * n;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      _mm256_storeu_ps(row + j, _mm256_add_ps(_mm256_loadu_ps(row + j),
                                              _mm256_loadu_ps(bias + j)));
    }
    for (; j < n; ++j) row[j] += bias[j];
  }
}

void AddBiasReluRowsAvx2(float* y, const float* bias, int64_t rows,
                         int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t r = 0; r < rows; ++r) {
    float* row = y + r * n;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 v = _mm256_add_ps(_mm256_loadu_ps(row + j),
                                     _mm256_loadu_ps(bias + j));
      _mm256_storeu_ps(row + j, _mm256_max_ps(v, zero));
    }
    for (; j < n; ++j) {
      const float v = row[j] + bias[j];
      row[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

void ReluInPlaceAvx2(float* y, int64_t count) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(y + i), zero));
  }
  for (; i < count; ++i) y[i] = y[i] > 0.0f ? y[i] : 0.0f;
}

#else  // !(__AVX2__ && __FMA__)

extern const bool kAvx2Compiled = false;

void GemmAvx2(int64_t, int64_t, int64_t, const float*, int64_t, const float*,
              int64_t, float*, int64_t, bool) {
  CHECK(false) << "AVX2 kernel called but not compiled in";
}
void AddBiasRowsAvx2(float*, const float*, int64_t, int64_t) {
  CHECK(false) << "AVX2 kernel called but not compiled in";
}
void AddBiasReluRowsAvx2(float*, const float*, int64_t, int64_t) {
  CHECK(false) << "AVX2 kernel called but not compiled in";
}
void ReluInPlaceAvx2(float*, int64_t) {
  CHECK(false) << "AVX2 kernel called but not compiled in";
}

#endif

}  // namespace detail
}  // namespace kernel
}  // namespace nn
}  // namespace dlinf
