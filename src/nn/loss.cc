#include "nn/loss.h"

#include <cmath>

namespace dlinf {
namespace nn {

Tensor MaskedCrossEntropy(const Tensor& logits, const std::vector<int>& valid,
                          const std::vector<int>& labels) {
  CHECK_EQ(logits.rank(), 2);
  const int batch = logits.dim(0);
  const int n = logits.dim(1);
  CHECK_EQ(static_cast<int>(valid.size()), batch);
  CHECK_EQ(static_cast<int>(labels.size()), batch);

  Tensor out = MakeResult({}, {logits});
  const std::vector<float>& lv = logits.data();
  // Cache the valid-prefix softmax for the backward pass.
  std::vector<float> probs(logits.numel(), 0.0f);
  double total = 0.0;
  for (int b = 0; b < batch; ++b) {
    const int nb = valid[b];
    CHECK(nb >= 1 && nb <= n);
    CHECK(labels[b] >= 0 && labels[b] < nb);
    const float* row = lv.data() + static_cast<int64_t>(b) * n;
    float* prow = probs.data() + static_cast<int64_t>(b) * n;
    float max_v = row[0];
    for (int j = 1; j < nb; ++j) max_v = std::max(max_v, row[j]);
    double denom = 0.0;
    for (int j = 0; j < nb; ++j) {
      prow[j] = std::exp(row[j] - max_v);
      denom += prow[j];
    }
    for (int j = 0; j < nb; ++j) prow[j] = static_cast<float>(prow[j] / denom);
    total += -std::log(std::max(1e-12, static_cast<double>(prow[labels[b]])));
  }
  out.data()[0] = static_cast<float>(total / batch);

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto logits_impl = logits.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, logits_impl, valid, labels, batch, n,
                             probs = std::move(probs)]() {
      const float g = self->grad[0] / static_cast<float>(batch);
      for (int b = 0; b < batch; ++b) {
        float* grow = logits_impl->grad.data() + static_cast<int64_t>(b) * n;
        const float* prow = probs.data() + static_cast<int64_t>(b) * n;
        for (int j = 0; j < valid[b]; ++j) {
          grow[j] += g * (prow[j] - (j == labels[b] ? 1.0f : 0.0f));
        }
      }
    };
  }
  return out;
}

Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets,
                     float pos_weight) {
  CHECK_EQ(logits.numel(), static_cast<int64_t>(targets.size()));
  CHECK_GT(pos_weight, 0.0f);
  const int64_t n = logits.numel();
  CHECK_GT(n, 0);

  Tensor out = MakeResult({}, {logits});
  const std::vector<float>& lv = logits.data();
  std::vector<float> sig(n);
  double total = 0.0;
  double weight_sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double s = 1.0 / (1.0 + std::exp(-static_cast<double>(lv[i])));
    sig[i] = static_cast<float>(s);
    const double t = targets[i];
    const double w = t * pos_weight + (1.0 - t);
    weight_sum += w;
    total += -w * (t * std::log(std::max(1e-12, s)) +
                   (1.0 - t) * std::log(std::max(1e-12, 1.0 - s)));
  }
  out.data()[0] = static_cast<float>(total / weight_sum);

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto logits_impl = logits.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, logits_impl, targets, pos_weight, n,
                             weight_sum, sig = std::move(sig)]() {
      const float g = self->grad[0] / static_cast<float>(weight_sum);
      for (int64_t i = 0; i < n; ++i) {
        const float t = targets[i];
        const float w = t * pos_weight + (1.0f - t);
        logits_impl->grad[i] += g * w * (sig[i] - t);
      }
    };
  }
  return out;
}

}  // namespace nn
}  // namespace dlinf
