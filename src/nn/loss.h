#ifndef DLINF_NN_LOSS_H_
#define DLINF_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// Cross-entropy over variable-length candidate sets.
///
/// `logits` is [B, N] where row b scores the candidates of sample b; only the
/// first `valid[b]` positions are real candidates, the rest is padding.
/// `labels[b]` is the index of the positive candidate (< valid[b]).
/// Returns the mean over the batch of -log softmax(logits_b)[label_b], with
/// the softmax normalized over the valid prefix only — exactly the training
/// objective of LocMatcher (Eq. 4 + cross-entropy).
Tensor MaskedCrossEntropy(const Tensor& logits, const std::vector<int>& valid,
                          const std::vector<int>& labels);

/// Mean binary cross-entropy with logits; `targets[i]` in {0, 1} (or soft).
/// `pos_weight` scales the loss of positive targets, implementing the 8:2
/// class weighting the paper applies to the classification variants.
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets,
                     float pos_weight = 1.0f);

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_LOSS_H_
