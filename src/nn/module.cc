#include "nn/module.h"

#include <cmath>

#include "nn/ops.h"

namespace dlinf {
namespace nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> all = own_parameters_;
  for (const Module* child : children_) {
    const std::vector<Tensor> child_params = child->Parameters();
    all.insert(all.end(), child_params.begin(), child_params.end());
  }
  return all;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Tensor& p : Parameters()) total += p.numel();
  return total;
}

Tensor Module::AddParameter(Tensor parameter) {
  CHECK(parameter.defined());
  CHECK(parameter.requires_grad());
  own_parameters_.push_back(parameter);
  return parameter;
}

void Module::AddChild(Module* child) {
  CHECK(child != nullptr);
  children_.push_back(child);
}

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = AddParameter(Tensor::GlorotUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = AddParameter(
        Tensor::Zeros({out_features}, /*requires_grad=*/true));
  }
}

Tensor Linear::Forward(const Tensor& x, Activation act) const {
  CHECK_EQ(x.dim(x.rank() - 1), in_features_);
  return LinearEx(x, weight_, bias_, act);
}

Embedding::Embedding(int vocab_size, int embed_dim, Rng* rng)
    : embed_dim_(embed_dim) {
  // Small uniform init, as is conventional for embedding tables.
  table_ = AddParameter(Tensor::RandomUniform(
      {vocab_size, embed_dim}, -0.05f, 0.05f, rng, /*requires_grad=*/true));
}

Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return EmbeddingLookup(table_, indices);
}

LayerNorm::LayerNorm(int features) {
  gamma_ = AddParameter(Tensor::Full({features}, 1.0f, /*requires_grad=*/true));
  beta_ = AddParameter(Tensor::Zeros({features}, /*requires_grad=*/true));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int model_dim, int num_heads,
                                               float dropout, Rng* rng)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      dropout_(dropout),
      wq_(model_dim, model_dim, rng),
      wk_(model_dim, model_dim, rng),
      wv_(model_dim, model_dim, rng),
      wo_(model_dim, model_dim, rng) {
  CHECK_EQ(head_dim_ * num_heads, model_dim)
      << "model_dim must be divisible by num_heads";
  AddChild(&wq_);
  AddChild(&wk_);
  AddChild(&wv_);
  AddChild(&wo_);
}

Tensor MakePaddingMask(const std::vector<int>& valid, int n) {
  const int batch = static_cast<int>(valid.size());
  std::vector<float> mask(static_cast<size_t>(batch) * n, 0.0f);
  for (int b = 0; b < batch; ++b) {
    CHECK(valid[b] >= 1 && valid[b] <= n);
    for (int j = valid[b]; j < n; ++j) {
      mask[static_cast<size_t>(b) * n + j] = -1e9f;
    }
  }
  return Tensor::FromVector({batch, 1, 1, n}, std::move(mask));
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const Tensor& additive_mask,
                                       const FwdCtx& ctx) const {
  CHECK_EQ(x.rank(), 3);
  CHECK_EQ(x.dim(2), model_dim_);
  // Whole block — projections, score/softmax/weighted-sum per head, output
  // projection — as one fused autograd node over kernel-layer GEMMs; no
  // split/merge-head Permute copies and no [B,H,N,N] intermediate tensors.
  return FusedSelfAttention(x, wq_.weight(), wq_.bias(), wk_.weight(),
                            wk_.bias(), wv_.weight(), wv_.bias(), wo_.weight(),
                            wo_.bias(), additive_mask, num_heads_, dropout_,
                            ctx.training, ctx.rng);
}

TransformerEncoderLayer::TransformerEncoderLayer(int model_dim, int num_heads,
                                                 int ff_dim, float dropout,
                                                 Rng* rng)
    : dropout_(dropout),
      attention_(model_dim, num_heads, dropout, rng),
      ff1_(model_dim, ff_dim, rng),
      ff2_(ff_dim, model_dim, rng),
      norm1_(model_dim),
      norm2_(model_dim) {
  AddChild(&attention_);
  AddChild(&ff1_);
  AddChild(&ff2_);
  AddChild(&norm1_);
  AddChild(&norm2_);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x,
                                        const Tensor& additive_mask,
                                        const FwdCtx& ctx) const {
  Tensor attn_out = attention_.Forward(x, additive_mask, ctx);
  attn_out = Dropout(attn_out, dropout_, ctx.training, ctx.rng);
  Tensor h = norm1_.Forward(Add(x, attn_out));

  Tensor ff_out = ff2_.Forward(ff1_.Forward(h, Activation::kRelu));
  ff_out = Dropout(ff_out, dropout_, ctx.training, ctx.rng);
  return norm2_.Forward(Add(h, ff_out));
}

TransformerEncoder::TransformerEncoder(int num_layers, int model_dim,
                                       int num_heads, int ff_dim,
                                       float dropout, Rng* rng) {
  CHECK_GE(num_layers, 1);
  for (int i = 0; i < num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        model_dim, num_heads, ff_dim, dropout, rng));
    AddChild(layers_.back().get());
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x,
                                   const Tensor& additive_mask,
                                   const FwdCtx& ctx) const {
  Tensor h = x;
  for (const auto& layer : layers_) {
    h = layer->Forward(h, additive_mask, ctx);
  }
  return h;
}

Lstm::Lstm(int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_ih_ = AddParameter(Tensor::GlorotUniform(input_dim, 4 * hidden_dim, rng));
  w_hh_ = AddParameter(Tensor::GlorotUniform(hidden_dim, 4 * hidden_dim, rng));
  bias_ = AddParameter(Tensor::Zeros({4 * hidden_dim}, /*requires_grad=*/true));
}

Tensor Lstm::Forward(const Tensor& x) const {
  CHECK_EQ(x.rank(), 3);
  const int batch = x.dim(0);
  const int steps = x.dim(1);
  CHECK_EQ(x.dim(2), input_dim_);

  Tensor h = Tensor::Zeros({batch, hidden_dim_});
  Tensor c = Tensor::Zeros({batch, hidden_dim_});
  std::vector<Tensor> outputs;
  outputs.reserve(steps);
  for (int t = 0; t < steps; ++t) {
    const Tensor x_t =
        Reshape(SliceAxis(x, 1, t, 1), {batch, input_dim_});
    Tensor gates = Add(Add(MatMul(x_t, w_ih_), MatMul(h, w_hh_)), bias_);
    const Tensor i_gate =
        Sigmoid(SliceAxis(gates, 1, 0, hidden_dim_));
    const Tensor f_gate =
        Sigmoid(SliceAxis(gates, 1, hidden_dim_, hidden_dim_));
    const Tensor g_gate =
        Tanh(SliceAxis(gates, 1, 2 * hidden_dim_, hidden_dim_));
    const Tensor o_gate =
        Sigmoid(SliceAxis(gates, 1, 3 * hidden_dim_, hidden_dim_));
    c = Add(Mul(f_gate, c), Mul(i_gate, g_gate));
    h = Mul(o_gate, Tanh(c));
    outputs.push_back(Reshape(h, {batch, 1, hidden_dim_}));
  }
  return Concat(outputs, /*axis=*/1);
}

Mlp::Mlp(const std::vector<int>& dims, Rng* rng) {
  CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    AddChild(layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool hidden = i + 1 < layers_.size();
    h = layers_[i]->Forward(h,
                            hidden ? Activation::kRelu : Activation::kNone);
  }
  return h;
}

}  // namespace nn
}  // namespace dlinf
