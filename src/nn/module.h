#ifndef DLINF_NN_MODULE_H_
#define DLINF_NN_MODULE_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// Per-forward-call context: training mode toggles dropout, `rng` supplies
/// its randomness. Inference uses the default (eval mode).
struct FwdCtx {
  bool training = false;
  Rng* rng = nullptr;
};

/// Base class for parameterized network components.
///
/// Subclasses register their own tensors with AddParameter and nested
/// modules with AddChild; Parameters() then yields every trainable tensor in
/// the subtree, which is what optimizers and the save/load functions consume.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable tensors of this module and its descendants, in a stable
  /// registration order.
  std::vector<Tensor> Parameters() const;

  /// Total scalar parameter count (for logging / sanity checks).
  int64_t NumParameters() const;

 protected:
  Module() = default;

  Tensor AddParameter(Tensor parameter);
  void AddChild(Module* child);

 private:
  std::vector<Tensor> own_parameters_;
  std::vector<Module*> children_;
};

/// Fully connected layer: y = x @ w + b, acting on the last axis.
class Linear : public Module {
 public:
  /// Glorot-uniform weight init; zero bias. `bias` = false omits the bias
  /// (used for the attention score projection v in Eq. 3 of the paper).
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  /// `x` is [..., in_features]; result is [..., out_features]. Runs as one
  /// fused LinearEx node; `act` folds a ReLU into the GEMM epilogue.
  Tensor Forward(const Tensor& x, Activation act = Activation::kNone) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }
  /// Undefined when constructed with bias = false.
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined.
};

/// Lookup table mapping categorical ids to dense vectors (POI category
/// embedding in LocMatcher).
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int embed_dim, Rng* rng);

  /// Result is [indices.size(), embed_dim].
  Tensor Forward(const std::vector<int>& indices) const;

  int embed_dim() const { return embed_dim_; }

 private:
  int embed_dim_;
  Tensor table_;
};

/// Layer normalization over the last axis with learnable gain and bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int features);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Multi-head self-attention over a set of candidate embeddings.
///
/// Since candidates are a *set*, no positional encoding is used (the paper
/// notes there is no temporal dependency among location candidates).
class MultiHeadSelfAttention : public Module {
 public:
  /// `model_dim` must be divisible by `num_heads`.
  MultiHeadSelfAttention(int model_dim, int num_heads, float dropout,
                         Rng* rng);

  /// `x` is [B, N, model_dim]. `additive_mask` (optional, may be undefined)
  /// is broadcastable to [B, H, N, N] with large negative entries at padded
  /// key positions — build it with MakePaddingMask below.
  Tensor Forward(const Tensor& x, const Tensor& additive_mask,
                 const FwdCtx& ctx) const;

 private:
  int model_dim_;
  int num_heads_;
  int head_dim_;
  float dropout_;
  Linear wq_, wk_, wv_, wo_;
};

/// Builds a [B, 1, 1, N] additive attention mask from per-sample valid
/// lengths: 0 at real positions, -1e9 at padding.
Tensor MakePaddingMask(const std::vector<int>& valid, int n);

/// One post-LN transformer encoder layer: self-attention and a position-wise
/// feed-forward network, each wrapped in residual + layer norm (Section IV-B).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int model_dim, int num_heads, int ff_dim,
                          float dropout, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor& additive_mask,
                 const FwdCtx& ctx) const;

 private:
  float dropout_;
  MultiHeadSelfAttention attention_;
  Linear ff1_, ff2_;
  LayerNorm norm1_, norm2_;
};

/// A stack of encoder layers (N = 3, 2 heads, 32-unit FF in the paper).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int num_layers, int model_dim, int num_heads, int ff_dim,
                     float dropout, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor& additive_mask,
                 const FwdCtx& ctx) const;

 private:
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

/// Single-layer LSTM used by the DLInfMA-PN variant (pointer-network style
/// encoder, replacing the transformer as in [18]).
class Lstm : public Module {
 public:
  Lstm(int input_dim, int hidden_dim, Rng* rng);

  /// `x` is [B, N, input_dim]; returns the hidden state sequence
  /// [B, N, hidden_dim]. Zero initial state.
  Tensor Forward(const Tensor& x) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Tensor w_ih_;  // [input, 4*hidden], gate order: i, f, g, o.
  Tensor w_hh_;  // [hidden, 4*hidden]
  Tensor bias_;  // [4*hidden]
};

/// Plain multi-layer perceptron with ReLU activations between layers (used
/// by DLInfMA-MLP and DLInfMA-RkNet: one hidden layer of 16 units).
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<int>& dims, Rng* rng);

  Tensor Forward(const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_MODULE_H_
