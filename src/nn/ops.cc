#include "nn/ops.h"

#include <algorithm>
#include <cmath>

namespace dlinf {
namespace nn {
namespace {

/// Row-major strides for a contiguous tensor of this shape.
std::vector<int64_t> ContiguousStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

/// NumPy-style broadcast of two shapes; aborts on incompatibility.
Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (int i = 0; i < rank; ++i) {
    const int da = i < rank - static_cast<int>(a.size())
                       ? 1
                       : a[i - (rank - static_cast<int>(a.size()))];
    const int db = i < rank - static_cast<int>(b.size())
                       ? 1
                       : b[i - (rank - static_cast<int>(b.size()))];
    CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast" << ShapeToString(a) << "with"
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

/// Strides for reading an input of shape `in` as if it had shape `out`
/// (stride 0 on stretched axes).
std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  const int out_rank = static_cast<int>(out.size());
  const int offset = out_rank - static_cast<int>(in.size());
  const std::vector<int64_t> in_strides = ContiguousStrides(in);
  std::vector<int64_t> strides(out_rank, 0);
  for (int i = 0; i < out_rank; ++i) {
    if (i < offset) continue;
    const int in_dim = in[i - offset];
    if (in_dim == out[i]) {
      strides[i] = in_strides[i - offset];
    } else {
      CHECK_EQ(in_dim, 1);
      strides[i] = 0;
    }
  }
  return strides;
}

/// Walks every output element of `out_shape` computing the mapped flat
/// offsets into two broadcast inputs.
template <typename Fn>
void ForEachBroadcast(const Shape& out_shape,
                      const std::vector<int64_t>& a_strides,
                      const std::vector<int64_t>& b_strides, Fn&& fn) {
  const int rank = static_cast<int>(out_shape.size());
  const int64_t total = NumElements(out_shape);
  std::vector<int> index(rank, 0);
  int64_t a_off = 0;
  int64_t b_off = 0;
  for (int64_t flat = 0; flat < total; ++flat) {
    fn(flat, a_off, b_off);
    // Increment the multi-index (odometer) and the mapped offsets.
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++index[axis];
      a_off += a_strides[axis];
      b_off += b_strides[axis];
      if (index[axis] < out_shape[axis]) break;
      index[axis] = 0;
      a_off -= a_strides[axis] * out_shape[axis];
      b_off -= b_strides[axis] * out_shape[axis];
    }
  }
}

/// Shared implementation of broadcasting binary elementwise ops.
/// `fwd(a,b)` computes the value; `da(a,b)`/`db(a,b)` the partials.
template <typename FwdFn, typename DaFn, typename DbFn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, FwdFn fwd, DaFn da,
                         DbFn db) {
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  const std::vector<int64_t> a_strides =
      BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> b_strides =
      BroadcastStrides(b.shape(), out_shape);
  Tensor out = MakeResult(out_shape, {a, b});
  {
    const std::vector<float>& av = a.data();
    const std::vector<float>& bv = b.data();
    std::vector<float>& ov = out.data();
    ForEachBroadcast(out_shape, a_strides, b_strides,
                     [&](int64_t flat, int64_t ai, int64_t bi) {
                       ov[flat] = fwd(av[ai], bv[bi]);
                     });
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, a_impl, b_impl, out_shape, a_strides,
                             b_strides, da, db]() {
      const std::vector<float>& gout = self->grad;
      ForEachBroadcast(out_shape, a_strides, b_strides,
                       [&](int64_t flat, int64_t ai, int64_t bi) {
                         const float g = gout[flat];
                         if (a_impl->requires_grad) {
                           a_impl->grad[ai] +=
                               g * da(a_impl->data[ai], b_impl->data[bi]);
                         }
                         if (b_impl->requires_grad) {
                           b_impl->grad[bi] +=
                               g * db(a_impl->data[ai], b_impl->data[bi]);
                         }
                       });
    };
  }
  return out;
}

/// Shared implementation of unary elementwise ops. `dfn` receives the input
/// value and the output value (so e.g. tanh' can reuse the forward result).
template <typename FwdFn, typename DFn>
Tensor ElementwiseUnary(const Tensor& x, FwdFn fwd, DFn dfn) {
  Tensor out = MakeResult(x.shape(), {x});
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  for (size_t i = 0; i < xv.size(); ++i) ov[i] = fwd(xv[i]);
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, dfn]() {
      for (size_t i = 0; i < x_impl->data.size(); ++i) {
        x_impl->grad[i] +=
            self->grad[i] * dfn(x_impl->data[i], self->data[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor AddScalar(const Tensor& x, float c) {
  return ElementwiseUnary(
      x, [c](float v) { return v + c; }, [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& x, float c) {
  return ElementwiseUnary(
      x, [c](float v) { return v * c; }, [c](float, float) { return c; });
}

Tensor Relu(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return v > 0 ? v : 0.0f; },
      [](float v, float) { return v > 0 ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::log(v); },
      [](float v, float) { return 1.0f / v; });
}

Tensor Reshape(const Tensor& x, const Shape& new_shape) {
  CHECK_EQ(NumElements(new_shape), x.numel())
      << "reshape" << ShapeToString(x.shape()) << "to"
      << ShapeToString(new_shape);
  Tensor out = MakeResult(new_shape, {x});
  out.data() = x.data();
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl]() {
      for (size_t i = 0; i < x_impl->grad.size(); ++i) {
        x_impl->grad[i] += self->grad[i];
      }
    };
  }
  return out;
}

Tensor Permute(const Tensor& x, const std::vector<int>& axes) {
  const int rank = x.rank();
  CHECK_EQ(static_cast<int>(axes.size()), rank);
  Shape out_shape(rank);
  for (int i = 0; i < rank; ++i) {
    CHECK(axes[i] >= 0 && axes[i] < rank);
    out_shape[i] = x.dim(axes[i]);
  }
  const std::vector<int64_t> in_strides = ContiguousStrides(x.shape());
  // Stride of output axis i in the input buffer.
  std::vector<int64_t> mapped(rank);
  for (int i = 0; i < rank; ++i) mapped[i] = in_strides[axes[i]];

  Tensor out = MakeResult(out_shape, {x});
  const int64_t total = x.numel();
  std::vector<int> index(rank, 0);
  {
    const std::vector<float>& xv = x.data();
    std::vector<float>& ov = out.data();
    int64_t in_off = 0;
    for (int64_t flat = 0; flat < total; ++flat) {
      ov[flat] = xv[in_off];
      for (int axis = rank - 1; axis >= 0; --axis) {
        ++index[axis];
        in_off += mapped[axis];
        if (index[axis] < out_shape[axis]) break;
        index[axis] = 0;
        in_off -= mapped[axis] * out_shape[axis];
      }
    }
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, out_shape, mapped, rank,
                             total]() {
      std::vector<int> idx(rank, 0);
      int64_t in_off = 0;
      for (int64_t flat = 0; flat < total; ++flat) {
        x_impl->grad[in_off] += self->grad[flat];
        for (int axis = rank - 1; axis >= 0; --axis) {
          ++idx[axis];
          in_off += mapped[axis];
          if (idx[axis] < out_shape[axis]) break;
          idx[axis] = 0;
          in_off -= mapped[axis] * out_shape[axis];
        }
      }
    };
  }
  return out;
}

Tensor TransposeLast2(const Tensor& x) {
  const int rank = x.rank();
  CHECK_GE(rank, 2);
  std::vector<int> axes(rank);
  for (int i = 0; i < rank; ++i) axes[i] = i;
  std::swap(axes[rank - 1], axes[rank - 2]);
  return Permute(x, axes);
}

Tensor Concat(const std::vector<Tensor>& tensors, int axis) {
  CHECK(!tensors.empty());
  const int rank = tensors[0].rank();
  if (axis < 0) axis += rank;
  CHECK(axis >= 0 && axis < rank);
  Shape out_shape = tensors[0].shape();
  out_shape[axis] = 0;
  for (const Tensor& t : tensors) {
    CHECK_EQ(t.rank(), rank);
    for (int i = 0; i < rank; ++i) {
      if (i != axis) CHECK_EQ(t.dim(i), out_shape[i]);
    }
    out_shape[axis] += t.dim(axis);
  }

  // View each input as [outer, t.dim(axis) * inner] blocks.
  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= out_shape[i];
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= out_shape[i];

  Tensor out = MakeResult(out_shape, tensors);
  std::vector<float>& ov = out.data();
  const int64_t out_row = static_cast<int64_t>(out_shape[axis]) * inner;
  int64_t col_offset = 0;
  for (const Tensor& t : tensors) {
    const std::vector<float>& tv = t.data();
    const int64_t t_row = static_cast<int64_t>(t.dim(axis)) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(tv.begin() + o * t_row, tv.begin() + (o + 1) * t_row,
                ov.begin() + o * out_row + col_offset);
    }
    col_offset += t_row;
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    std::vector<std::shared_ptr<internal::TensorImpl>> inputs;
    std::vector<int64_t> rows;
    for (const Tensor& t : tensors) {
      inputs.push_back(t.impl());
      rows.push_back(static_cast<int64_t>(t.dim(axis)) * inner);
    }
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, inputs, rows, outer, out_row]() {
      int64_t col = 0;
      for (size_t k = 0; k < inputs.size(); ++k) {
        if (inputs[k]->requires_grad) {
          for (int64_t o = 0; o < outer; ++o) {
            for (int64_t j = 0; j < rows[k]; ++j) {
              inputs[k]->grad[o * rows[k] + j] +=
                  self->grad[o * out_row + col + j];
            }
          }
        }
        col += rows[k];
      }
    };
  }
  return out;
}

Tensor SliceAxis(const Tensor& x, int axis, int start, int length) {
  const int rank = x.rank();
  if (axis < 0) axis += rank;
  CHECK(axis >= 0 && axis < rank);
  CHECK(start >= 0 && length >= 0 && start + length <= x.dim(axis));
  Shape out_shape = x.shape();
  out_shape[axis] = length;

  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= x.dim(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= x.dim(i);
  const int64_t in_row = static_cast<int64_t>(x.dim(axis)) * inner;
  const int64_t out_row = static_cast<int64_t>(length) * inner;
  const int64_t skip = static_cast<int64_t>(start) * inner;

  Tensor out = MakeResult(out_shape, {x});
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(xv.begin() + o * in_row + skip,
              xv.begin() + o * in_row + skip + out_row,
              ov.begin() + o * out_row);
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, outer, in_row, out_row,
                             skip]() {
      for (int64_t o = 0; o < outer; ++o) {
        for (int64_t j = 0; j < out_row; ++j) {
          x_impl->grad[o * in_row + skip + j] += self->grad[o * out_row + j];
        }
      }
    };
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK_GE(a.rank(), 2);
  const int m = a.dim(a.rank() - 2);
  const int k = a.dim(a.rank() - 1);
  int64_t batch = 1;
  for (int i = 0; i < a.rank() - 2; ++i) batch *= a.dim(i);

  const bool shared_b = b.rank() == 2;
  if (shared_b) {
    CHECK_EQ(b.dim(0), k) << "matmul inner dims" << ShapeToString(a.shape())
                          << ShapeToString(b.shape());
  } else {
    CHECK_EQ(a.rank(), b.rank());
    for (int i = 0; i < a.rank() - 2; ++i) CHECK_EQ(a.dim(i), b.dim(i));
    CHECK_EQ(b.dim(b.rank() - 2), k);
  }
  const int n = b.dim(b.rank() - 1);

  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  out_shape.push_back(n);
  Tensor out = MakeResult(out_shape, {a, b});

  const std::vector<float>& av = a.data();
  const std::vector<float>& bv = b.data();
  std::vector<float>& ov = out.data();
  const int64_t a_stride = static_cast<int64_t>(m) * k;
  const int64_t b_stride = shared_b ? 0 : static_cast<int64_t>(k) * n;
  const int64_t o_stride = static_cast<int64_t>(m) * n;
  for (int64_t p = 0; p < batch; ++p) {
    const float* ap = av.data() + p * a_stride;
    const float* bp = bv.data() + p * b_stride;
    float* op = ov.data() + p * o_stride;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) op[i * n + j] = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        const float aik = ap[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = bp + kk * n;
        float* orow = op + i * n;
        for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  }

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, a_impl, b_impl, batch, m, n, k,
                             a_stride, b_stride, o_stride]() {
      for (int64_t p = 0; p < batch; ++p) {
        const float* gp = self->grad.data() + p * o_stride;
        const float* ap = a_impl->data.data() + p * a_stride;
        const float* bp = b_impl->data.data() + p * b_stride;
        if (a_impl->requires_grad) {
          float* gap = a_impl->grad.data() + p * a_stride;
          // dA = dC @ B^T
          for (int i = 0; i < m; ++i) {
            for (int kk = 0; kk < k; ++kk) {
              float acc = 0.0f;
              const float* grow = gp + i * n;
              const float* brow = bp + kk * n;
              for (int j = 0; j < n; ++j) acc += grow[j] * brow[j];
              gap[i * k + kk] += acc;
            }
          }
        }
        if (b_impl->requires_grad) {
          float* gbp = b_impl->grad.data() + p * b_stride;
          // dB = A^T @ dC (accumulates across batches when B is shared).
          for (int kk = 0; kk < k; ++kk) {
            for (int i = 0; i < m; ++i) {
              const float aik = ap[i * k + kk];
              if (aik == 0.0f) continue;
              const float* grow = gp + i * n;
              float* gbrow = gbp + kk * n;
              for (int j = 0; j < n; ++j) gbrow[j] += aik * grow[j];
            }
          }
        }
      }
    };
  }
  return out;
}

Tensor Sum(const Tensor& x) {
  Tensor out = MakeResult({}, {x});
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  out.data()[0] = static_cast<float>(acc);
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl]() {
      const float g = self->grad[0];
      for (float& gx : x_impl->grad) gx += g;
    };
  }
  return out;
}

Tensor Mean(const Tensor& x) {
  CHECK_GT(x.numel(), 0);
  return MulScalar(Sum(x), 1.0f / static_cast<float>(x.numel()));
}

Tensor Softmax(const Tensor& x) {
  CHECK_GE(x.rank(), 1);
  const int n = x.dim(x.rank() - 1);
  const int64_t rows = x.numel() / n;
  Tensor out = MakeResult(x.shape(), {x});
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = xv.data() + r * n;
    float* orow = ov.data() + r * n;
    float max_v = xr[0];
    for (int j = 1; j < n; ++j) max_v = std::max(max_v, xr[j]);
    double denom = 0.0;
    for (int j = 0; j < n; ++j) {
      orow[j] = std::exp(xr[j] - max_v);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < n; ++j) orow[j] *= inv;
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, rows, n]() {
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = self->data.data() + r * n;
        const float* gy = self->grad.data() + r * n;
        float* gx = x_impl->grad.data() + r * n;
        double dot = 0.0;
        for (int j = 0; j < n; ++j) dot += static_cast<double>(gy[j]) * y[j];
        for (int j = 0; j < n; ++j) {
          gx[j] += y[j] * (gy[j] - static_cast<float>(dot));
        }
      }
    };
  }
  return out;
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& indices) {
  CHECK_EQ(table.rank(), 2);
  const int vocab = table.dim(0);
  const int width = table.dim(1);
  Tensor out =
      MakeResult({static_cast<int>(indices.size()), width}, {table});
  const std::vector<float>& tv = table.data();
  std::vector<float>& ov = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    CHECK(indices[i] >= 0 && indices[i] < vocab)
        << "embedding index" << indices[i] << "out of range" << vocab;
    std::copy(tv.begin() + static_cast<int64_t>(indices[i]) * width,
              tv.begin() + static_cast<int64_t>(indices[i] + 1) * width,
              ov.begin() + static_cast<int64_t>(i) * width);
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto table_impl = table.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, table_impl, indices, width]() {
      for (size_t i = 0; i < indices.size(); ++i) {
        for (int j = 0; j < width; ++j) {
          table_impl->grad[static_cast<int64_t>(indices[i]) * width + j] +=
              self->grad[static_cast<int64_t>(i) * width + j];
        }
      }
    };
  }
  return out;
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return x;
  CHECK(rng != nullptr);
  Tensor out = MakeResult(x.shape(), {x});
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(x.numel());
  for (float& m : mask) m = rng->Bernoulli(p) ? 0.0f : scale;
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  for (size_t i = 0; i < xv.size(); ++i) ov[i] = xv[i] * mask[i];
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, mask = std::move(mask)]() {
      for (size_t i = 0; i < mask.size(); ++i) {
        x_impl->grad[i] += self->grad[i] * mask[i];
      }
    };
  }
  return out;
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  CHECK_GE(x.rank(), 1);
  const int n = x.dim(x.rank() - 1);
  CHECK_EQ(gamma.numel(), n);
  CHECK_EQ(beta.numel(), n);
  const int64_t rows = x.numel() / n;
  Tensor out = MakeResult(x.shape(), {x, gamma, beta});

  // Cache per-row statistics for backward.
  std::vector<float> inv_std(rows);
  std::vector<float> means(rows);
  const std::vector<float>& xv = x.data();
  const std::vector<float>& gv = gamma.data();
  const std::vector<float>& bv = beta.data();
  std::vector<float>& ov = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = xv.data() + r * n;
    double mean = 0.0;
    for (int j = 0; j < n; ++j) mean += xr[j];
    mean /= n;
    double var = 0.0;
    for (int j = 0; j < n; ++j) var += (xr[j] - mean) * (xr[j] - mean);
    var /= n;
    means[r] = static_cast<float>(mean);
    inv_std[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
    float* orow = ov.data() + r * n;
    for (int j = 0; j < n; ++j) {
      orow[j] = gv[j] * (xr[j] - means[r]) * inv_std[r] + bv[j];
    }
  }

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    auto g_impl = gamma.impl();
    auto b_impl = beta.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, g_impl, b_impl, rows, n,
                             means = std::move(means),
                             inv_std = std::move(inv_std)]() {
      for (int64_t r = 0; r < rows; ++r) {
        const float* xr = x_impl->data.data() + r * n;
        const float* gy = self->grad.data() + r * n;
        const float mu = means[r];
        const float istd = inv_std[r];
        // xhat_j = (x_j - mu) * istd
        if (g_impl->requires_grad || b_impl->requires_grad) {
          for (int j = 0; j < n; ++j) {
            const float xhat = (xr[j] - mu) * istd;
            if (g_impl->requires_grad) g_impl->grad[j] += gy[j] * xhat;
            if (b_impl->requires_grad) b_impl->grad[j] += gy[j];
          }
        }
        if (x_impl->requires_grad) {
          // dL/dx = istd/n * (n*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
          // where dxhat_j = gy_j * gamma_j.
          double sum_dxhat = 0.0;
          double sum_dxhat_xhat = 0.0;
          for (int j = 0; j < n; ++j) {
            const float dxhat = gy[j] * g_impl->data[j];
            const float xhat = (xr[j] - mu) * istd;
            sum_dxhat += dxhat;
            sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
          }
          float* gx = x_impl->grad.data() + r * n;
          for (int j = 0; j < n; ++j) {
            const float dxhat = gy[j] * g_impl->data[j];
            const float xhat = (xr[j] - mu) * istd;
            gx[j] += istd *
                     (dxhat - static_cast<float>(sum_dxhat) / n -
                      xhat * static_cast<float>(sum_dxhat_xhat) / n);
          }
        }
      }
    };
  }
  return out;
}

}  // namespace nn
}  // namespace dlinf
