#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/kernels.h"

namespace dlinf {
namespace nn {
namespace {

/// Row-major strides for a contiguous tensor of this shape.
std::vector<int64_t> ContiguousStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

/// NumPy-style broadcast of two shapes; aborts on incompatibility.
Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (int i = 0; i < rank; ++i) {
    const int da = i < rank - static_cast<int>(a.size())
                       ? 1
                       : a[i - (rank - static_cast<int>(a.size()))];
    const int db = i < rank - static_cast<int>(b.size())
                       ? 1
                       : b[i - (rank - static_cast<int>(b.size()))];
    CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast" << ShapeToString(a) << "with"
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

/// Strides for reading an input of shape `in` as if it had shape `out`
/// (stride 0 on stretched axes).
std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  const int out_rank = static_cast<int>(out.size());
  const int offset = out_rank - static_cast<int>(in.size());
  const std::vector<int64_t> in_strides = ContiguousStrides(in);
  std::vector<int64_t> strides(out_rank, 0);
  for (int i = 0; i < out_rank; ++i) {
    if (i < offset) continue;
    const int in_dim = in[i - offset];
    if (in_dim == out[i]) {
      strides[i] = in_strides[i - offset];
    } else {
      CHECK_EQ(in_dim, 1);
      strides[i] = 0;
    }
  }
  return strides;
}

/// Walks every output element of `out_shape` computing the mapped flat
/// offsets into two broadcast inputs.
template <typename Fn>
void ForEachBroadcast(const Shape& out_shape,
                      const std::vector<int64_t>& a_strides,
                      const std::vector<int64_t>& b_strides, Fn&& fn) {
  const int rank = static_cast<int>(out_shape.size());
  const int64_t total = NumElements(out_shape);
  std::vector<int> index(rank, 0);
  int64_t a_off = 0;
  int64_t b_off = 0;
  for (int64_t flat = 0; flat < total; ++flat) {
    fn(flat, a_off, b_off);
    // Increment the multi-index (odometer) and the mapped offsets.
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++index[axis];
      a_off += a_strides[axis];
      b_off += b_strides[axis];
      if (index[axis] < out_shape[axis]) break;
      index[axis] = 0;
      a_off -= a_strides[axis] * out_shape[axis];
      b_off -= b_strides[axis] * out_shape[axis];
    }
  }
}

/// Shared implementation of broadcasting binary elementwise ops.
/// `fwd(a,b)` computes the value; `da(a,b)`/`db(a,b)` the partials.
template <typename FwdFn, typename DaFn, typename DbFn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, FwdFn fwd, DaFn da,
                         DbFn db) {
  // Same-shape fast path: a straight flat loop, no odometer walk.
  if (a.shape() == b.shape()) {
    Tensor out = MakeResult(a.shape(), {a, b});
    const float* av = a.data().data();
    const float* bv = b.data().data();
    float* ov = out.data().data();
    const int64_t total = out.numel();
    for (int64_t i = 0; i < total; ++i) ov[i] = fwd(av[i], bv[i]);
    if (out.requires_grad()) {
      auto out_impl = out.impl();
      auto a_impl = a.impl();
      auto b_impl = b.impl();
      internal::TensorImpl* const self = out_impl.get();
      out_impl->backward_fn = [self, a_impl, b_impl, total, da, db]() {
        const float* g = self->grad.data();
        const float* ad = a_impl->data.data();
        const float* bd = b_impl->data.data();
        if (a_impl->requires_grad) {
          float* ga = a_impl->grad.data();
          for (int64_t i = 0; i < total; ++i) {
            ga[i] += g[i] * da(ad[i], bd[i]);
          }
        }
        if (b_impl->requires_grad) {
          float* gb = b_impl->grad.data();
          for (int64_t i = 0; i < total; ++i) {
            gb[i] += g[i] * db(ad[i], bd[i]);
          }
        }
      };
    }
    return out;
  }

  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  const std::vector<int64_t> a_strides =
      BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> b_strides =
      BroadcastStrides(b.shape(), out_shape);
  Tensor out = MakeResult(out_shape, {a, b});
  {
    const std::vector<float>& av = a.data();
    const std::vector<float>& bv = b.data();
    std::vector<float>& ov = out.data();
    ForEachBroadcast(out_shape, a_strides, b_strides,
                     [&](int64_t flat, int64_t ai, int64_t bi) {
                       ov[flat] = fwd(av[ai], bv[bi]);
                     });
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, a_impl, b_impl, out_shape, a_strides,
                             b_strides, da, db]() {
      const std::vector<float>& gout = self->grad;
      ForEachBroadcast(out_shape, a_strides, b_strides,
                       [&](int64_t flat, int64_t ai, int64_t bi) {
                         const float g = gout[flat];
                         if (a_impl->requires_grad) {
                           a_impl->grad[ai] +=
                               g * da(a_impl->data[ai], b_impl->data[bi]);
                         }
                         if (b_impl->requires_grad) {
                           b_impl->grad[bi] +=
                               g * db(a_impl->data[ai], b_impl->data[bi]);
                         }
                       });
    };
  }
  return out;
}

/// Shared implementation of unary elementwise ops. `dfn` receives the input
/// value and the output value (so e.g. tanh' can reuse the forward result).
template <typename FwdFn, typename DFn>
Tensor ElementwiseUnary(const Tensor& x, FwdFn fwd, DFn dfn) {
  Tensor out = MakeResult(x.shape(), {x});
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  for (size_t i = 0; i < xv.size(); ++i) ov[i] = fwd(xv[i]);
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, dfn]() {
      for (size_t i = 0; i < x_impl->data.size(); ++i) {
        x_impl->grad[i] +=
            self->grad[i] * dfn(x_impl->data[i], self->data[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor AddScalar(const Tensor& x, float c) {
  return ElementwiseUnary(
      x, [c](float v) { return v + c; }, [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& x, float c) {
  return ElementwiseUnary(
      x, [c](float v) { return v * c; }, [c](float, float) { return c; });
}

Tensor Relu(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return v > 0 ? v : 0.0f; },
      [](float v, float) { return v > 0 ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::log(v); },
      [](float v, float) { return 1.0f / v; });
}

Tensor Reshape(const Tensor& x, const Shape& new_shape) {
  CHECK_EQ(NumElements(new_shape), x.numel())
      << "reshape" << ShapeToString(x.shape()) << "to"
      << ShapeToString(new_shape);
  Tensor out = MakeResult(new_shape, {x});
  out.data() = x.data();
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl]() {
      for (size_t i = 0; i < x_impl->grad.size(); ++i) {
        x_impl->grad[i] += self->grad[i];
      }
    };
  }
  return out;
}

Tensor Permute(const Tensor& x, const std::vector<int>& axes) {
  const int rank = x.rank();
  CHECK_EQ(static_cast<int>(axes.size()), rank);
  Shape out_shape(rank);
  for (int i = 0; i < rank; ++i) {
    CHECK(axes[i] >= 0 && axes[i] < rank);
    out_shape[i] = x.dim(axes[i]);
  }
  const std::vector<int64_t> in_strides = ContiguousStrides(x.shape());
  // Stride of output axis i in the input buffer.
  std::vector<int64_t> mapped(rank);
  for (int i = 0; i < rank; ++i) mapped[i] = in_strides[axes[i]];

  Tensor out = MakeResult(out_shape, {x});
  const int64_t total = x.numel();
  std::vector<int> index(rank, 0);
  {
    const std::vector<float>& xv = x.data();
    std::vector<float>& ov = out.data();
    int64_t in_off = 0;
    for (int64_t flat = 0; flat < total; ++flat) {
      ov[flat] = xv[in_off];
      for (int axis = rank - 1; axis >= 0; --axis) {
        ++index[axis];
        in_off += mapped[axis];
        if (index[axis] < out_shape[axis]) break;
        index[axis] = 0;
        in_off -= mapped[axis] * out_shape[axis];
      }
    }
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, out_shape, mapped, rank,
                             total]() {
      std::vector<int> idx(rank, 0);
      int64_t in_off = 0;
      for (int64_t flat = 0; flat < total; ++flat) {
        x_impl->grad[in_off] += self->grad[flat];
        for (int axis = rank - 1; axis >= 0; --axis) {
          ++idx[axis];
          in_off += mapped[axis];
          if (idx[axis] < out_shape[axis]) break;
          idx[axis] = 0;
          in_off -= mapped[axis] * out_shape[axis];
        }
      }
    };
  }
  return out;
}

Tensor TransposeLast2(const Tensor& x) {
  const int rank = x.rank();
  CHECK_GE(rank, 2);
  std::vector<int> axes(rank);
  for (int i = 0; i < rank; ++i) axes[i] = i;
  std::swap(axes[rank - 1], axes[rank - 2]);
  return Permute(x, axes);
}

Tensor Concat(const std::vector<Tensor>& tensors, int axis) {
  CHECK(!tensors.empty());
  const int rank = tensors[0].rank();
  if (axis < 0) axis += rank;
  CHECK(axis >= 0 && axis < rank);
  Shape out_shape = tensors[0].shape();
  out_shape[axis] = 0;
  for (const Tensor& t : tensors) {
    CHECK_EQ(t.rank(), rank);
    for (int i = 0; i < rank; ++i) {
      if (i != axis) CHECK_EQ(t.dim(i), out_shape[i]);
    }
    out_shape[axis] += t.dim(axis);
  }

  // View each input as [outer, t.dim(axis) * inner] blocks.
  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= out_shape[i];
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= out_shape[i];

  Tensor out = MakeResult(out_shape, tensors);
  std::vector<float>& ov = out.data();
  const int64_t out_row = static_cast<int64_t>(out_shape[axis]) * inner;
  int64_t col_offset = 0;
  for (const Tensor& t : tensors) {
    const std::vector<float>& tv = t.data();
    const int64_t t_row = static_cast<int64_t>(t.dim(axis)) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(tv.begin() + o * t_row, tv.begin() + (o + 1) * t_row,
                ov.begin() + o * out_row + col_offset);
    }
    col_offset += t_row;
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    std::vector<std::shared_ptr<internal::TensorImpl>> inputs;
    std::vector<int64_t> rows;
    for (const Tensor& t : tensors) {
      inputs.push_back(t.impl());
      rows.push_back(static_cast<int64_t>(t.dim(axis)) * inner);
    }
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, inputs, rows, outer, out_row]() {
      int64_t col = 0;
      for (size_t k = 0; k < inputs.size(); ++k) {
        if (inputs[k]->requires_grad) {
          for (int64_t o = 0; o < outer; ++o) {
            for (int64_t j = 0; j < rows[k]; ++j) {
              inputs[k]->grad[o * rows[k] + j] +=
                  self->grad[o * out_row + col + j];
            }
          }
        }
        col += rows[k];
      }
    };
  }
  return out;
}

Tensor SliceAxis(const Tensor& x, int axis, int start, int length) {
  const int rank = x.rank();
  if (axis < 0) axis += rank;
  CHECK(axis >= 0 && axis < rank);
  CHECK(start >= 0 && length >= 0 && start + length <= x.dim(axis));
  Shape out_shape = x.shape();
  out_shape[axis] = length;

  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= x.dim(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= x.dim(i);
  const int64_t in_row = static_cast<int64_t>(x.dim(axis)) * inner;
  const int64_t out_row = static_cast<int64_t>(length) * inner;
  const int64_t skip = static_cast<int64_t>(start) * inner;

  Tensor out = MakeResult(out_shape, {x});
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(xv.begin() + o * in_row + skip,
              xv.begin() + o * in_row + skip + out_row,
              ov.begin() + o * out_row);
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, outer, in_row, out_row,
                             skip]() {
      for (int64_t o = 0; o < outer; ++o) {
        for (int64_t j = 0; j < out_row; ++j) {
          x_impl->grad[o * in_row + skip + j] += self->grad[o * out_row + j];
        }
      }
    };
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK_GE(a.rank(), 2);
  const int m = a.dim(a.rank() - 2);
  const int k = a.dim(a.rank() - 1);
  int64_t batch = 1;
  for (int i = 0; i < a.rank() - 2; ++i) batch *= a.dim(i);

  const bool shared_b = b.rank() == 2;
  if (shared_b) {
    CHECK_EQ(b.dim(0), k) << "matmul inner dims" << ShapeToString(a.shape())
                          << ShapeToString(b.shape());
  } else {
    CHECK_EQ(a.rank(), b.rank());
    for (int i = 0; i < a.rank() - 2; ++i) CHECK_EQ(a.dim(i), b.dim(i));
    CHECK_EQ(b.dim(b.rank() - 2), k);
  }
  const int n = b.dim(b.rank() - 1);

  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  out_shape.push_back(n);
  Tensor out = MakeResult(out_shape, {a, b});

  const std::vector<float>& av = a.data();
  const std::vector<float>& bv = b.data();
  std::vector<float>& ov = out.data();
  const int64_t a_stride = static_cast<int64_t>(m) * k;
  const int64_t b_stride = shared_b ? 0 : static_cast<int64_t>(k) * n;
  const int64_t o_stride = static_cast<int64_t>(m) * n;
  if (shared_b) {
    // Shared weight: every batch multiplies the same B, so the whole thing
    // is one [batch * m, k] x [k, n] GEMM.
    kernel::Gemm(batch * m, n, k, av.data(), bv.data(), ov.data(),
                 /*accumulate=*/false);
  } else {
    for (int64_t p = 0; p < batch; ++p) {
      kernel::Gemm(m, n, k, av.data() + p * a_stride, bv.data() + p * b_stride,
                   ov.data() + p * o_stride, /*accumulate=*/false);
    }
  }

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, a_impl, b_impl, shared_b, batch, m, n, k,
                             a_stride, b_stride, o_stride]() {
      const int64_t rows = shared_b ? batch * m : m;
      const int64_t nbatch = shared_b ? 1 : batch;
      for (int64_t p = 0; p < nbatch; ++p) {
        const float* gp = self->grad.data() + p * o_stride;
        const float* ap = a_impl->data.data() + p * a_stride;
        const float* bp = b_impl->data.data() + p * b_stride;
        if (a_impl->requires_grad) {
          // dA += dC @ B^T.
          kernel::PooledBuffer bt(static_cast<size_t>(k) * n);
          kernel::Transpose(bp, k, n, n, bt.data());
          kernel::Gemm(rows, k, n, gp, n, bt.data(), k,
                       a_impl->grad.data() + p * a_stride, k,
                       /*accumulate=*/true);
        }
        if (b_impl->requires_grad) {
          // dB += A^T @ dC (one flattened GEMM when B is shared).
          kernel::PooledBuffer at(static_cast<size_t>(rows) * k);
          kernel::Transpose(ap, rows, k, k, at.data());
          kernel::Gemm(k, n, rows, at.data(), rows, gp, n,
                       b_impl->grad.data() + p * b_stride, n,
                       /*accumulate=*/true);
        }
      }
    };
  }
  return out;
}

Tensor Sum(const Tensor& x) {
  Tensor out = MakeResult({}, {x});
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  out.data()[0] = static_cast<float>(acc);
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl]() {
      const float g = self->grad[0];
      for (float& gx : x_impl->grad) gx += g;
    };
  }
  return out;
}

Tensor Mean(const Tensor& x) {
  CHECK_GT(x.numel(), 0);
  return MulScalar(Sum(x), 1.0f / static_cast<float>(x.numel()));
}

Tensor Softmax(const Tensor& x) {
  CHECK_GE(x.rank(), 1);
  const int n = x.dim(x.rank() - 1);
  const int64_t rows = x.numel() / n;
  Tensor out = MakeResult(x.shape(), {x});
  kernel::SoftmaxRows(x.data().data(), out.data().data(), rows, n);
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, rows, n]() {
      kernel::SoftmaxBackwardRows(self->data.data(), self->grad.data(),
                                  x_impl->grad.data(), rows, n);
    };
  }
  return out;
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& indices) {
  CHECK_EQ(table.rank(), 2);
  const int vocab = table.dim(0);
  const int width = table.dim(1);
  Tensor out =
      MakeResult({static_cast<int>(indices.size()), width}, {table});
  const std::vector<float>& tv = table.data();
  std::vector<float>& ov = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    CHECK(indices[i] >= 0 && indices[i] < vocab)
        << "embedding index" << indices[i] << "out of range" << vocab;
    std::copy(tv.begin() + static_cast<int64_t>(indices[i]) * width,
              tv.begin() + static_cast<int64_t>(indices[i] + 1) * width,
              ov.begin() + static_cast<int64_t>(i) * width);
  }
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto table_impl = table.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, table_impl, indices, width]() {
      for (size_t i = 0; i < indices.size(); ++i) {
        for (int j = 0; j < width; ++j) {
          table_impl->grad[static_cast<int64_t>(indices[i]) * width + j] +=
              self->grad[static_cast<int64_t>(i) * width + j];
        }
      }
    };
  }
  return out;
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return x;
  CHECK(rng != nullptr);
  Tensor out = MakeResult(x.shape(), {x});
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(x.numel());
  for (float& m : mask) m = rng->Bernoulli(p) ? 0.0f : scale;
  const std::vector<float>& xv = x.data();
  std::vector<float>& ov = out.data();
  for (size_t i = 0; i < xv.size(); ++i) ov[i] = xv[i] * mask[i];
  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, mask = std::move(mask)]() {
      for (size_t i = 0; i < mask.size(); ++i) {
        x_impl->grad[i] += self->grad[i] * mask[i];
      }
    };
  }
  return out;
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  CHECK_GE(x.rank(), 1);
  const int n = x.dim(x.rank() - 1);
  CHECK_EQ(gamma.numel(), n);
  CHECK_EQ(beta.numel(), n);
  const int64_t rows = x.numel() / n;
  Tensor out = MakeResult(x.shape(), {x, gamma, beta});

  // Cache per-row statistics (pooled) for backward.
  kernel::PooledBuffer means(static_cast<size_t>(rows));
  kernel::PooledBuffer inv_std(static_cast<size_t>(rows));
  kernel::LayerNormRows(x.data().data(), gamma.data().data(),
                        beta.data().data(), eps, rows, n, out.data().data(),
                        means.data(), inv_std.data());

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    auto g_impl = gamma.impl();
    auto b_impl = beta.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, g_impl, b_impl, rows, n,
                             means = std::move(means),
                             inv_std = std::move(inv_std)]() {
      kernel::LayerNormBackwardRows(
          x_impl->data.data(), g_impl->data.data(), self->grad.data(),
          means.data(), inv_std.data(), rows, n,
          x_impl->requires_grad ? x_impl->grad.data() : nullptr,
          g_impl->requires_grad ? g_impl->grad.data() : nullptr,
          b_impl->requires_grad ? b_impl->grad.data() : nullptr);
    };
  }
  return out;
}

Tensor LinearEx(const Tensor& x, const Tensor& w, const Tensor& b,
                Activation act) {
  CHECK_GE(x.rank(), 2);
  CHECK_EQ(w.rank(), 2);
  const int k = x.dim(x.rank() - 1);
  CHECK_EQ(w.dim(0), k) << "linear" << ShapeToString(x.shape())
                        << ShapeToString(w.shape());
  const int n = w.dim(1);
  const bool has_bias = b.defined();
  if (has_bias) CHECK_EQ(b.numel(), n);
  const int64_t rows = x.numel() / k;

  Shape out_shape(x.shape().begin(), x.shape().end() - 1);
  out_shape.push_back(n);
  std::vector<Tensor> inputs = {x, w};
  if (has_bias) inputs.push_back(b);
  Tensor out = MakeResult(out_shape, inputs);

  float* y = out.data().data();
  kernel::Gemm(rows, n, k, x.data().data(), w.data().data(), y,
               /*accumulate=*/false);
  if (has_bias) {
    if (act == Activation::kRelu) {
      kernel::AddBiasReluRows(y, b.data().data(), rows, n);
    } else {
      kernel::AddBiasRows(y, b.data().data(), rows, n);
    }
  } else if (act == Activation::kRelu) {
    kernel::ReluInPlace(y, rows * static_cast<int64_t>(n));
  }

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    auto x_impl = x.impl();
    auto w_impl = w.impl();
    auto b_impl = has_bias ? b.impl() : nullptr;
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn = [self, x_impl, w_impl, b_impl, rows, n, k,
                             act]() {
      const float* gy = self->grad.data();
      kernel::PooledBuffer gpre_buf;
      // Relu gate: y > 0 iff the pre-activation was > 0 (relu is identity
      // there), so the saved output doubles as the mask.
      if (act == Activation::kRelu) {
        gpre_buf = kernel::PooledBuffer(static_cast<size_t>(rows) * n);
        const float* y = self->data.data();
        float* gp = gpre_buf.data();
        for (int64_t i = 0; i < rows * n; ++i) {
          gp[i] = y[i] > 0.0f ? gy[i] : 0.0f;
        }
        gy = gp;
      }
      if (b_impl != nullptr && b_impl->requires_grad) {
        kernel::ColumnSumRows(gy, rows, n, b_impl->grad.data());
      }
      if (w_impl->requires_grad) {
        // dW += x^T @ gy.
        kernel::PooledBuffer xt(static_cast<size_t>(rows) * k);
        kernel::Transpose(x_impl->data.data(), rows, k, k, xt.data());
        kernel::Gemm(k, n, rows, xt.data(), rows, gy, n, w_impl->grad.data(),
                     n, /*accumulate=*/true);
      }
      if (x_impl->requires_grad) {
        // dx += gy @ W^T.
        kernel::PooledBuffer wt(static_cast<size_t>(k) * n);
        kernel::Transpose(w_impl->data.data(), k, n, n, wt.data());
        kernel::Gemm(rows, k, n, gy, n, wt.data(), k, x_impl->grad.data(), k,
                     /*accumulate=*/true);
      }
    };
  }
  return out;
}

Tensor FusedSelfAttention(const Tensor& x, const Tensor& wq, const Tensor& bq,
                          const Tensor& wk, const Tensor& bk,
                          const Tensor& wv, const Tensor& bv,
                          const Tensor& wo, const Tensor& bo,
                          const Tensor& mask, int num_heads, float dropout_p,
                          bool training, Rng* rng) {
  CHECK_EQ(x.rank(), 3);
  const int B = x.dim(0);
  const int N = x.dim(1);
  const int D = x.dim(2);
  const int H = num_heads;
  CHECK_GT(H, 0);
  CHECK_EQ(D % H, 0) << "model dim" << D << "not divisible by heads" << H;
  const int dh = D / H;
  const int64_t R = static_cast<int64_t>(B) * N;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (const Tensor* w : {&wq, &wk, &wv, &wo}) {
    CHECK_EQ(w->rank(), 2);
    CHECK_EQ(w->dim(0), D);
    CHECK_EQ(w->dim(1), D);
  }
  for (const Tensor* bias : {&bq, &bk, &bv, &bo}) CHECK_EQ(bias->numel(), D);
  if (mask.defined()) {
    CHECK_EQ(mask.rank(), 4);
    CHECK(mask.dim(0) == B && mask.dim(1) == 1 && mask.dim(2) == 1 &&
          mask.dim(3) == N)
        << "attention mask must be [B,1,1,N], got"
        << ShapeToString(mask.shape());
  }

  // Projections: three [R, D] GEMMs with fused bias, into pooled buffers
  // the backward closure keeps.
  kernel::PooledBuffer q(static_cast<size_t>(R) * D);
  kernel::PooledBuffer kbuf(static_cast<size_t>(R) * D);
  kernel::PooledBuffer v(static_cast<size_t>(R) * D);
  const float* xd = x.data().data();
  kernel::Gemm(R, D, D, xd, wq.data().data(), q.data(), false);
  kernel::AddBiasRows(q.data(), bq.data().data(), R, D);
  kernel::Gemm(R, D, D, xd, wk.data().data(), kbuf.data(), false);
  kernel::AddBiasRows(kbuf.data(), bk.data().data(), R, D);
  kernel::Gemm(R, D, D, xd, wv.data().data(), v.data(), false);
  kernel::AddBiasRows(v.data(), bv.data().data(), R, D);

  // Scores -> scale -> mask -> softmax, one [N, N] panel per (batch, head).
  const int64_t nn = static_cast<int64_t>(N) * N;
  kernel::PooledBuffer probs(static_cast<size_t>(B) * H * nn);
  {
    kernel::PooledBuffer kt(static_cast<size_t>(dh) * N);
    for (int b = 0; b < B; ++b) {
      const float* mrow =
          mask.defined() ? mask.data().data() + static_cast<int64_t>(b) * N
                         : nullptr;
      for (int h = 0; h < H; ++h) {
        const int64_t head_off = static_cast<int64_t>(b) * N * D + h * dh;
        float* prow = probs.data() + (static_cast<int64_t>(b) * H + h) * nn;
        kernel::Transpose(kbuf.data() + head_off, N, dh, D, kt.data());
        kernel::Gemm(N, N, dh, q.data() + head_off, D, kt.data(), N, prow, N,
                     false);
        for (int64_t i = 0; i < N; ++i) {
          float* srow = prow + i * N;
          for (int64_t j = 0; j < N; ++j) {
            float s = srow[j] * scale;
            if (mrow != nullptr) s += mrow[j];
            srow[j] = s;
          }
        }
        kernel::SoftmaxRows(prow, prow, N, N);
      }
    }
  }

  // Inverted-dropout keep/scale mask, drawn flat over [B, H, N, N] — the
  // exact RNG order of the Dropout op this fuses.
  kernel::PooledBuffer dmask;
  if (training && dropout_p > 0.0f) {
    CHECK(rng != nullptr);
    CHECK_LT(dropout_p, 1.0f);
    dmask = kernel::PooledBuffer(static_cast<size_t>(B) * H * nn);
    const float keep = 1.0f / (1.0f - dropout_p);
    float* dm = dmask.data();
    const int64_t total = static_cast<int64_t>(B) * H * nn;
    for (int64_t i = 0; i < total; ++i) {
      dm[i] = rng->Bernoulli(dropout_p) ? 0.0f : keep;
    }
  }

  // Context: concat_heads(Pd @ V) written straight into a [R, D] panel via
  // ldc = D (pre-dropout probs are kept for softmax backward; the dropped
  // copy is forward-local scratch).
  kernel::PooledBuffer ctx(static_cast<size_t>(R) * D);
  {
    const float* psrc = probs.data();
    kernel::PooledBuffer dropped;
    if (dmask.size() > 0) {
      dropped = kernel::PooledBuffer(static_cast<size_t>(B) * H * nn);
      const float* dm = dmask.data();
      float* pd = dropped.data();
      const int64_t total = static_cast<int64_t>(B) * H * nn;
      for (int64_t i = 0; i < total; ++i) pd[i] = psrc[i] * dm[i];
      psrc = pd;
    }
    for (int b = 0; b < B; ++b) {
      for (int h = 0; h < H; ++h) {
        const int64_t head_off = static_cast<int64_t>(b) * N * D + h * dh;
        kernel::Gemm(N, dh, N,
                     psrc + (static_cast<int64_t>(b) * H + h) * nn, N,
                     v.data() + head_off, D, ctx.data() + head_off, D, false);
      }
    }
  }

  Tensor out = MakeResult(x.shape(), {x, wq, bq, wk, bk, wv, bv, wo, bo});
  kernel::Gemm(R, D, D, ctx.data(), wo.data().data(), out.data().data(),
               false);
  kernel::AddBiasRows(out.data().data(), bo.data().data(), R, D);

  if (out.requires_grad()) {
    auto out_impl = out.impl();
    internal::TensorImpl* const self = out_impl.get();
    out_impl->backward_fn =
        [self, x_impl = x.impl(), wq_impl = wq.impl(), bq_impl = bq.impl(),
         wk_impl = wk.impl(), bk_impl = bk.impl(), wv_impl = wv.impl(),
         bv_impl = bv.impl(), wo_impl = wo.impl(), bo_impl = bo.impl(),
         q = std::move(q), kbuf = std::move(kbuf), v = std::move(v),
         probs = std::move(probs), dmask = std::move(dmask),
         ctx = std::move(ctx), B, N, D, H, dh, R, nn, scale]() {
          const float* gy = self->grad.data();
          // Output projection.
          if (bo_impl->requires_grad) {
            kernel::ColumnSumRows(gy, R, D, bo_impl->grad.data());
          }
          if (wo_impl->requires_grad) {
            kernel::PooledBuffer ctxt(static_cast<size_t>(R) * D);
            kernel::Transpose(ctx.data(), R, D, D, ctxt.data());
            kernel::Gemm(D, D, R, ctxt.data(), R, gy, D,
                         wo_impl->grad.data(), D, true);
          }
          kernel::PooledBuffer dctx(static_cast<size_t>(R) * D);
          {
            kernel::PooledBuffer wot(static_cast<size_t>(D) * D);
            kernel::Transpose(wo_impl->data.data(), D, D, D, wot.data());
            kernel::Gemm(R, D, D, gy, D, wot.data(), D, dctx.data(), D,
                         false);
          }
          // Per-(batch, head) attention backward into projection grads.
          kernel::PooledBuffer dq(static_cast<size_t>(R) * D);
          kernel::PooledBuffer dk(static_cast<size_t>(R) * D);
          kernel::PooledBuffer dv(static_cast<size_t>(R) * D);
          kernel::PooledBuffer vt(static_cast<size_t>(dh) * N);
          kernel::PooledBuffer pd(static_cast<size_t>(nn));
          kernel::PooledBuffer dpd(static_cast<size_t>(nn));
          kernel::PooledBuffer ds(static_cast<size_t>(nn));
          kernel::PooledBuffer tmp_t(static_cast<size_t>(nn));
          for (int b = 0; b < B; ++b) {
            for (int h = 0; h < H; ++h) {
              const int64_t head_off =
                  static_cast<int64_t>(b) * N * D + h * dh;
              const int64_t p_off = (static_cast<int64_t>(b) * H + h) * nn;
              const float* p_bh = probs.data() + p_off;
              const float* dctx_bh = dctx.data() + head_off;
              // Re-derive the dropped probabilities (bit-exact re-multiply).
              const float* pd_bh = p_bh;
              if (dmask.size() > 0) {
                const float* dm = dmask.data() + p_off;
                for (int64_t i = 0; i < nn; ++i) {
                  pd.data()[i] = p_bh[i] * dm[i];
                }
                pd_bh = pd.data();
              }
              // dPd = dctx @ V^T; dV += Pd^T @ dctx.
              kernel::Transpose(v.data() + head_off, N, dh, D, vt.data());
              kernel::Gemm(N, N, dh, dctx_bh, D, vt.data(), N, dpd.data(), N,
                           false);
              kernel::Transpose(pd_bh, N, N, N, tmp_t.data());
              kernel::Gemm(N, dh, N, tmp_t.data(), N, dctx_bh, D,
                           dv.data() + head_off, D, true);
              // Through dropout and softmax, then the 1/sqrt(dh) scale.
              if (dmask.size() > 0) {
                const float* dm = dmask.data() + p_off;
                for (int64_t i = 0; i < nn; ++i) dpd.data()[i] *= dm[i];
              }
              std::memset(ds.data(), 0, static_cast<size_t>(nn) * 4);
              kernel::SoftmaxBackwardRows(p_bh, dpd.data(), ds.data(), N, N);
              for (int64_t i = 0; i < nn; ++i) ds.data()[i] *= scale;
              // dQ += dS @ K; dK += dS^T @ Q.
              kernel::Gemm(N, dh, N, ds.data(), N, kbuf.data() + head_off, D,
                           dq.data() + head_off, D, true);
              kernel::Transpose(ds.data(), N, N, N, tmp_t.data());
              kernel::Gemm(N, dh, N, tmp_t.data(), N, q.data() + head_off, D,
                           dk.data() + head_off, D, true);
            }
          }
          // Input projections: dX += dP @ W^T, dW += X^T @ dP, db += colsum.
          kernel::PooledBuffer xt;
          const bool need_xt = wq_impl->requires_grad ||
                               wk_impl->requires_grad ||
                               wv_impl->requires_grad;
          if (need_xt) {
            xt = kernel::PooledBuffer(static_cast<size_t>(R) * D);
            kernel::Transpose(x_impl->data.data(), R, D, D, xt.data());
          }
          const struct {
            kernel::PooledBuffer* dproj;
            internal::TensorImpl* w;
            internal::TensorImpl* bias;
          } branches[] = {{&dq, wq_impl.get(), bq_impl.get()},
                          {&dk, wk_impl.get(), bk_impl.get()},
                          {&dv, wv_impl.get(), bv_impl.get()}};
          kernel::PooledBuffer wt(static_cast<size_t>(D) * D);
          for (const auto& br : branches) {
            if (br.bias->requires_grad) {
              kernel::ColumnSumRows(br.dproj->data(), R, D,
                                    br.bias->grad.data());
            }
            if (br.w->requires_grad) {
              kernel::Gemm(D, D, R, xt.data(), R, br.dproj->data(), D,
                           br.w->grad.data(), D, true);
            }
            if (x_impl->requires_grad) {
              kernel::Transpose(br.w->data.data(), D, D, D, wt.data());
              kernel::Gemm(R, D, D, br.dproj->data(), D, wt.data(), D,
                           x_impl->grad.data(), D, true);
            }
          }
        };
  }
  return out;
}

}  // namespace nn
}  // namespace dlinf
