#ifndef DLINF_NN_OPS_H_
#define DLINF_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// \file
/// Differentiable tensor operations. Every function returns a fresh tensor
/// recorded on the autograd tape (when any input requires grad).
///
/// Broadcasting follows NumPy semantics: shapes are right-aligned and a
/// dimension of size 1 stretches. Gradients reduce back over stretched
/// dimensions.

/// --- Elementwise arithmetic (broadcasting) -----------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// x + c and x * c with a compile-time-constant scalar (not differentiable
/// w.r.t. the scalar).
Tensor AddScalar(const Tensor& x, float c);
Tensor MulScalar(const Tensor& x, float c);

/// --- Elementwise nonlinearities ----------------------------------------
Tensor Relu(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Exp(const Tensor& x);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& x);

/// --- Shape manipulation --------------------------------------------------
/// Reinterprets the data with a new shape of equal element count.
Tensor Reshape(const Tensor& x, const Shape& new_shape);

/// General axis permutation, e.g. Permute(x, {0, 2, 1, 3}).
Tensor Permute(const Tensor& x, const std::vector<int>& axes);

/// Swaps the last two axes (batched matrix transpose).
Tensor TransposeLast2(const Tensor& x);

/// Concatenates along `axis` (negative axes count from the end). All inputs
/// must agree on every other dimension.
Tensor Concat(const std::vector<Tensor>& tensors, int axis);

/// Slice along `axis`: keeps indices [start, start+length).
Tensor SliceAxis(const Tensor& x, int axis, int start, int length);

/// --- Linear algebra ------------------------------------------------------
/// Matrix product. `a` is [..., M, K]. `b` is either [K, N] (a shared weight
/// applied to every leading batch of `a`) or [..., K, N] with leading dims
/// identical to `a`'s (a batched product). A shared [K, N] weight is applied
/// as ONE flattened [batch * M, K] x [K, N] GEMM through nn/kernels.h.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// --- Fused layers ---------------------------------------------------------
/// Epilogue applied inside LinearEx's GEMM kernel call.
enum class Activation { kNone, kRelu };

/// Fused y = act(x @ w [+ b]) as a single autograd node: one GEMM over the
/// flattened [..., K] rows plus a fused bias/activation epilogue — no
/// intermediate tensors, no broadcast walk. `b` may be undefined (no bias).
/// `x` is [..., K] (rank >= 2), `w` is [K, N], `b` is [N].
Tensor LinearEx(const Tensor& x, const Tensor& w, const Tensor& b,
                Activation act = Activation::kNone);

/// Fused multi-head self-attention block as a single autograd node:
///   q,k,v = x@Wq+bq, x@Wk+bk, x@Wv+bv           (three [B*N, D] GEMMs)
///   P     = dropout(softmax(q k^T / sqrt(dh) + mask))  (per batch & head)
///   out   = concat_heads(P v) @ Wo + bo
/// `x` is [B, N, D]; weights are [D, D], biases [D]; `mask` (optional,
/// additive, e.g. -1e9 at padding) is [B, 1, 1, N]. Score -> softmax ->
/// weighted-sum runs on kernel-layer GEMM/softmax primitives over pooled
/// scratch; the RNG draw order for dropout matches the unfused
/// Dropout-on-[B,H,N,N] op it replaces, element for element.
Tensor FusedSelfAttention(const Tensor& x, const Tensor& wq, const Tensor& bq,
                          const Tensor& wk, const Tensor& bk,
                          const Tensor& wv, const Tensor& bv,
                          const Tensor& wo, const Tensor& bo,
                          const Tensor& mask, int num_heads, float dropout_p,
                          bool training, Rng* rng);

/// --- Reductions -----------------------------------------------------------
/// Sum / mean of all elements into a scalar (rank-0) tensor.
Tensor Sum(const Tensor& x);
Tensor Mean(const Tensor& x);

/// --- Softmax ---------------------------------------------------------------
/// Numerically stable softmax over the last axis. Callers implement masking
/// by adding a large negative value to masked logits beforehand.
Tensor Softmax(const Tensor& x);

/// --- Lookup ----------------------------------------------------------------
/// Rows of `table` ([V, E]) selected by `indices`; result is [n, E].
/// Gradient scatters into the selected rows.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& indices);

/// --- Regularization ----------------------------------------------------------
/// Inverted dropout: during training each element is zeroed with probability
/// p and survivors are scaled by 1/(1-p); identity when `training` is false.
Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng);

/// --- Normalization -----------------------------------------------------------
/// Layer normalization over the last axis with learnable gain/bias
/// (both shaped [last_dim]).
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_OPS_H_
