#include "nn/optimizer.h"

#include <cmath>

namespace dlinf {
namespace nn {

Optimizer::Optimizer(std::vector<Tensor> parameters, float learning_rate)
    : parameters_(std::move(parameters)), learning_rate_(learning_rate) {
  for (const Tensor& p : parameters_) {
    CHECK(p.defined());
    CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate)
    : Optimizer(std::move(parameters), learning_rate) {}

void Sgd::Step() {
  for (Tensor& p : parameters_) {
    std::vector<float>& data = p.data();
    const std::vector<float>& grad = p.grad();
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] -= learning_rate_ * grad[i];
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(parameters), learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    m_[i].assign(parameters_[i].numel(), 0.0f);
    v_[i].assign(parameters_[i].numel(), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    std::vector<float>& data = parameters_[i].data();
    const std::vector<float>& grad = parameters_[i].grad();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step = t_;
  state.m = m_;
  state.v = v_;
  return state;
}

bool Adam::RestoreState(const AdamState& state) {
  if (state.step < 0) return false;
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) return false;
  for (size_t i = 0; i < m_.size(); ++i) {
    if (state.m[i].size() != m_[i].size() ||
        state.v[i].size() != v_[i].size()) {
      return false;
    }
  }
  t_ = state.step;
  m_ = state.m;
  v_ = state.v;
  return true;
}

HalvingSchedule::HalvingSchedule(Optimizer* optimizer, int step_epochs)
    : optimizer_(optimizer), step_epochs_(step_epochs) {
  CHECK(optimizer != nullptr);
  CHECK_GE(step_epochs, 1);
}

void HalvingSchedule::OnEpochEnd() {
  ++epoch_;
  if (epoch_ % step_epochs_ == 0) {
    optimizer_->set_learning_rate(optimizer_->learning_rate() * 0.5f);
  }
}

}  // namespace nn
}  // namespace dlinf
