#ifndef DLINF_NN_OPTIMIZER_H_
#define DLINF_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// Base gradient-descent optimizer over an explicit parameter list.
class Optimizer {
 public:
  Optimizer(std::vector<Tensor> parameters, float learning_rate);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the gradients currently stored on parameters.
  virtual void Step() = 0;

  /// Clears every parameter gradient; call between batches.
  void ZeroGrad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 protected:
  std::vector<Tensor> parameters_;
  float learning_rate_;
};

/// Plain SGD (reference optimizer for tests).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate);

  void Step() override;
};

/// Adam [27] with the paper's settings (beta1 = 0.9, beta2 = 0.999).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// The paper's schedule: the learning rate halves every `step_epochs` epochs.
/// Call OnEpochEnd() once per epoch.
class HalvingSchedule {
 public:
  HalvingSchedule(Optimizer* optimizer, int step_epochs);

  void OnEpochEnd();

 private:
  Optimizer* optimizer_;
  int step_epochs_;
  int epoch_ = 0;
};

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_OPTIMIZER_H_
