#ifndef DLINF_NN_OPTIMIZER_H_
#define DLINF_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// Base gradient-descent optimizer over an explicit parameter list.
class Optimizer {
 public:
  Optimizer(std::vector<Tensor> parameters, float learning_rate);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the gradients currently stored on parameters.
  virtual void Step() = 0;

  /// Clears every parameter gradient; call between batches.
  void ZeroGrad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 protected:
  std::vector<Tensor> parameters_;
  float learning_rate_;
};

/// Plain SGD (reference optimizer for tests).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate);

  void Step() override;
};

/// Complete mutable state of an Adam instance — everything beyond the
/// constructor arguments that the update rule depends on. Exported for
/// crash-safe training checkpoints (io/checkpoint.h): restoring it into an
/// Adam built over the same parameter shapes makes subsequent Step() calls
/// bit-identical to an uninterrupted run.
struct AdamState {
  int64_t step = 0;                    ///< t: completed Step() calls.
  std::vector<std::vector<float>> m;   ///< First-moment estimate per tensor.
  std::vector<std::vector<float>> v;   ///< Second-moment estimate per tensor.
};

/// Adam [27] with the paper's settings (beta1 = 0.9, beta2 = 0.999).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  /// Snapshot of the moment vectors and step count (checkpointing).
  AdamState ExportState() const;

  /// Installs a previously exported state. The per-tensor moment shapes must
  /// match this instance's parameters exactly; returns false (leaving the
  /// optimizer untouched) on any mismatch or a negative step count.
  bool RestoreState(const AdamState& state);

  int64_t step() const { return t_; }

 private:
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// The paper's schedule: the learning rate halves every `step_epochs` epochs.
/// Call OnEpochEnd() once per epoch.
class HalvingSchedule {
 public:
  HalvingSchedule(Optimizer* optimizer, int step_epochs);

  void OnEpochEnd();

  /// Epochs seen so far — the only mutable state; persisted by training
  /// checkpoints so a resumed run keeps halving on the original cadence.
  int epoch() const { return epoch_; }

  /// Restores the epoch counter (checkpoint resume). The learning rate
  /// itself lives on the optimizer and is restored separately.
  void set_epoch(int epoch) {
    CHECK_GE(epoch, 0);
    epoch_ = epoch;
  }

 private:
  Optimizer* optimizer_;
  int step_epochs_;
  int epoch_ = 0;
};

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_OPTIMIZER_H_
