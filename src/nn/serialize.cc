#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

namespace dlinf {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0x444c4e46;  // "DLNF"

}  // namespace

bool SaveParameters(const std::string& path,
                    const std::vector<Tensor>& parameters) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint32_t magic = kMagic;
  const uint32_t count = static_cast<uint32_t>(parameters.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : parameters) {
    const uint32_t rank = static_cast<uint32_t>(p.rank());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int i = 0; i < p.rank(); ++i) {
      const int32_t d = p.dim(i);
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool LoadParameters(const std::string& path, std::vector<Tensor>* parameters) {
  CHECK(parameters != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint32_t magic = 0;
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic ||
      count != static_cast<uint32_t>(parameters->size())) {
    return false;
  }
  for (Tensor& p : *parameters) {
    uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in || rank != static_cast<uint32_t>(p.rank())) return false;
    for (int i = 0; i < p.rank(); ++i) {
      int32_t d = 0;
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (!in || d != p.dim(i)) return false;
    }
    in.read(reinterpret_cast<char*>(p.data().data()),
            static_cast<std::streamsize>(p.numel() * sizeof(float)));
    if (!in) return false;
  }
  return true;
}

}  // namespace nn
}  // namespace dlinf
