#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace dlinf {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0x444c4e46;  // "DLNF"

void Append(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

/// Sequential reader over a blob; returns false on underflow.
struct BlobReader {
  std::string_view blob;
  size_t offset = 0;

  bool Take(void* out, size_t size) {
    if (blob.size() - offset < size) return false;
    std::memcpy(out, blob.data() + offset, size);
    offset += size;
    return true;
  }
};

}  // namespace

std::string EncodeParameters(const std::vector<Tensor>& parameters) {
  std::string blob;
  const uint32_t magic = kMagic;
  const uint32_t count = static_cast<uint32_t>(parameters.size());
  Append(&blob, &magic, sizeof(magic));
  Append(&blob, &count, sizeof(count));
  for (const Tensor& p : parameters) {
    const uint32_t rank = static_cast<uint32_t>(p.rank());
    Append(&blob, &rank, sizeof(rank));
    for (int i = 0; i < p.rank(); ++i) {
      const int32_t d = p.dim(i);
      Append(&blob, &d, sizeof(d));
    }
    Append(&blob, p.data().data(), p.numel() * sizeof(float));
  }
  return blob;
}

bool DecodeParameters(std::string_view blob,
                      std::vector<Tensor>* parameters) {
  CHECK(parameters != nullptr);
  BlobReader reader{blob};
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!reader.Take(&magic, sizeof(magic)) ||
      !reader.Take(&count, sizeof(count)) || magic != kMagic ||
      count != static_cast<uint32_t>(parameters->size())) {
    return false;
  }
  for (Tensor& p : *parameters) {
    uint32_t rank = 0;
    if (!reader.Take(&rank, sizeof(rank)) ||
        rank != static_cast<uint32_t>(p.rank())) {
      return false;
    }
    for (int i = 0; i < p.rank(); ++i) {
      int32_t d = 0;
      if (!reader.Take(&d, sizeof(d)) || d != p.dim(i)) return false;
    }
    if (!reader.Take(p.data().data(), p.numel() * sizeof(float))) {
      return false;
    }
  }
  return reader.offset == blob.size();
}

bool SaveParameters(const std::string& path,
                    const std::vector<Tensor>& parameters) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string blob = EncodeParameters(parameters);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

bool LoadParameters(const std::string& path, std::vector<Tensor>* parameters) {
  CHECK(parameters != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return DecodeParameters(blob, parameters);
}

}  // namespace nn
}  // namespace dlinf
