#ifndef DLINF_NN_SERIALIZE_H_
#define DLINF_NN_SERIALIZE_H_

#include <string>
#include <string_view>
#include <vector>

#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// Serializes the parameter list to an in-memory blob (magic + count, then
/// shape + float32 payload per tensor) — the unit the artifact layer
/// (src/io) embeds inside checksummed model artifacts. The blob is exactly
/// the byte stream SaveParameters writes to disk.
std::string EncodeParameters(const std::vector<Tensor>& parameters);

/// Restores parameter data in place from an EncodeParameters blob. The list
/// must have the same length and per-tensor shapes as at encode time;
/// returns false on any mismatch or short/overlong blob (parameters may be
/// partially updated on failure).
bool DecodeParameters(std::string_view blob, std::vector<Tensor>* parameters);

/// Writes the parameter list to a binary file (shape + float32 payload per
/// tensor). Returns false on I/O failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Tensor>& parameters);

/// Restores parameter data in place. The list must have the same length and
/// per-tensor shapes as at save time; returns false on any mismatch or I/O
/// failure (parameters may be partially updated on failure).
bool LoadParameters(const std::string& path, std::vector<Tensor>* parameters);

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_SERIALIZE_H_
