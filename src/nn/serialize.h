#ifndef DLINF_NN_SERIALIZE_H_
#define DLINF_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace dlinf {
namespace nn {

/// Writes the parameter list to a binary file (shape + float32 payload per
/// tensor). Returns false on I/O failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Tensor>& parameters);

/// Restores parameter data in place. The list must have the same length and
/// per-tensor shapes as at save time; returns false on any mismatch or I/O
/// failure (parameters may be partially updated on failure).
bool LoadParameters(const std::string& path, std::vector<Tensor>* parameters);

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_SERIALIZE_H_
