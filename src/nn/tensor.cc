#include "nn/tensor.h"

#include <malloc.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "nn/kernels.h"

namespace dlinf {
namespace nn {
namespace {

/// Tensor training loops allocate and free buffers just above glibc's
/// default 128 KiB mmap threshold thousands of times per second; each such
/// cycle is an mmap/munmap syscall pair, which was measured to make training
/// ~20x slower (wall clock dominated by sys time). Raising the thresholds
/// keeps these buffers on the regular heap. Runs once when the library is
/// loaded.
struct MallocTuner {
  MallocTuner() {
    mallopt(M_MMAP_THRESHOLD, 512 * 1024 * 1024);
    mallopt(M_TRIM_THRESHOLD, 512 * 1024 * 1024);
  }
};
const MallocTuner g_malloc_tuner;

}  // namespace

namespace internal {

TensorImpl::~TensorImpl() {
  kernel::ReleaseBuffer(std::move(data));
  kernel::ReleaseBuffer(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  if (grad.size() != data.size()) {
    if (grad.capacity() < data.size()) {
      kernel::ReleaseBuffer(std::move(grad));
      grad = kernel::AcquireBuffer(data.size());
    } else {
      grad.assign(data.size(), 0.0f);
    }
  }
}

}  // namespace internal

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int d : shape) {
    CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = shape;
  impl->data = kernel::AcquireBuffer(NumElements(shape));
  if (value != 0.0f) {
    std::fill(impl->data.begin(), impl->data.end(), value);
  }
  impl->requires_grad = requires_grad;
  if (requires_grad) impl->EnsureGrad();
  return Wrap(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  if (requires_grad) impl->EnsureGrad();
  return Wrap(std::move(impl));
}

Tensor Tensor::RandomUniform(const Shape& shape, float lo, float hi, Rng* rng,
                             bool requires_grad) {
  CHECK(rng != nullptr);
  std::vector<float> values(NumElements(shape));
  for (float& v : values) v = static_cast<float>(rng->Uniform(lo, hi));
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::GlorotUniform(int fan_in, int fan_out, Rng* rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_in, fan_out}, -limit, limit, rng,
                       /*requires_grad=*/true);
}

int Tensor::dim(int i) const {
  CHECK(i >= 0 && i < rank()) << "dim" << i << "of" << ShapeToString(shape());
  return impl_->shape[i];
}

std::vector<float>& Tensor::grad() {
  CHECK(impl_->requires_grad);
  impl_->EnsureGrad();
  return impl_->grad;
}

const std::vector<float>& Tensor::grad() const {
  CHECK(impl_->requires_grad);
  CHECK_EQ(impl_->grad.size(), impl_->data.size());
  return impl_->grad;
}

float Tensor::item() const {
  CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

void Tensor::ZeroGrad() {
  if (impl_->requires_grad) {
    impl_->EnsureGrad();
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

namespace {

void TopoSort(const std::shared_ptr<internal::TensorImpl>& node,
              std::unordered_set<internal::TensorImpl*>* visited,
              std::vector<std::shared_ptr<internal::TensorImpl>>* order) {
  if (visited->count(node.get()) > 0) return;
  visited->insert(node.get());
  for (const auto& input : node->inputs) {
    TopoSort(input, visited, order);
  }
  order->push_back(node);
}

}  // namespace

void Tensor::Backward() {
  CHECK(defined());
  CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";
  CHECK(impl_->requires_grad) << "loss does not depend on any parameter";

  std::unordered_set<internal::TensorImpl*> visited;
  std::vector<std::shared_ptr<internal::TensorImpl>> order;
  TopoSort(impl_, &visited, &order);

  // Seed and ensure gradient buffers exist on the whole reachable graph so
  // backward closures can accumulate unconditionally.
  for (const auto& node : order) {
    if (node->requires_grad) node->EnsureGrad();
  }
  impl_->grad[0] += 1.0f;

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn && (*it)->requires_grad) {
      (*it)->backward_fn();
    }
  }
}

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

bool GradModeEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(t_grad_enabled) { t_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { t_grad_enabled = prev_; }

Tensor MakeResult(const Shape& shape, const std::vector<Tensor>& inputs) {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = shape;
  impl->data = kernel::AcquireBuffer(NumElements(shape));
  if (t_grad_enabled) {
    for (const Tensor& input : inputs) {
      CHECK(input.defined());
      impl->inputs.push_back(input.impl());
      if (input.requires_grad()) impl->requires_grad = true;
    }
    if (impl->requires_grad) impl->EnsureGrad();
  }
  return Tensor::Wrap(std::move(impl));
}

}  // namespace nn
}  // namespace dlinf
