#ifndef DLINF_NN_TENSOR_H_
#define DLINF_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace dlinf {
namespace nn {

/// Shape of a tensor; rank 0 (scalar) through 4 are supported.
using Shape = std::vector<int>;

/// Number of elements implied by a shape.
int64_t NumElements(const Shape& shape);

/// Human-readable "[2, 3, 4]" form for error messages.
std::string ShapeToString(const Shape& shape);

class Tensor;

namespace internal {

/// Reference-counted tensor storage plus its position in the autograd tape.
///
/// Forward ops record their inputs and a backward closure here; Backward()
/// (tensor.cc) topologically sorts the reachable graph and runs the closures
/// in reverse. Gradients accumulate (+=) so shared subexpressions are
/// handled naturally.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // Same length as data when requires_grad.
  bool requires_grad = false;

  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::function<void()> backward_fn;  // May be empty (leaf).

  TensorImpl() = default;
  /// Returns data/grad storage to the kernel-layer buffer pool
  /// (nn/kernels.h) so forward/backward stop hammering malloc.
  ~TensorImpl();

  void EnsureGrad();
};

}  // namespace internal

/// A dense float32 tensor with reverse-mode autodiff.
///
/// Tensor is a cheap value-semantic handle (shared_ptr inside); copying a
/// Tensor aliases its storage. All shaping is row-major. Ops live in
/// nn/ops.h; modules composing them live in nn/module.h.
class Tensor {
 public:
  /// Null handle; most APIs CHECK against using one.
  Tensor() = default;

  /// --- Factories -----------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  /// I.i.d. uniform in [lo, hi).
  static Tensor RandomUniform(const Shape& shape, float lo, float hi, Rng* rng,
                              bool requires_grad = false);
  /// Glorot/Xavier-uniform for a [fan_in, fan_out] weight matrix.
  static Tensor GlorotUniform(int fan_in, int fan_out, Rng* rng);

  /// --- Introspection --------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int rank() const { return static_cast<int>(impl_->shape.size()); }
  int dim(int i) const;
  int64_t numel() const { return static_cast<int64_t>(impl_->data.size()); }
  bool requires_grad() const { return impl_->requires_grad; }

  std::vector<float>& data() { return impl_->data; }
  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& grad();
  const std::vector<float>& grad() const;

  /// The single value of a scalar (rank-0 or one-element) tensor.
  float item() const;

  /// --- Autograd -------------------------------------------------------

  /// Seeds d(this)/d(this) = 1 and back-propagates through the recorded
  /// graph, accumulating into .grad() of every reachable tensor that
  /// requires grad. `this` must be scalar.
  void Backward();

  /// Zeroes this tensor's gradient buffer (if any).
  void ZeroGrad();

  /// Internal: wraps an impl. Used by ops.
  static Tensor Wrap(std::shared_ptr<internal::TensorImpl> impl) {
    Tensor t;
    t.impl_ = std::move(impl);
    return t;
  }
  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Creates a non-leaf result tensor: requires_grad if any input does, records
/// inputs for the tape. The caller fills data and sets backward_fn.
/// Under NoGradGuard the result is a detached leaf (no inputs, no grad).
Tensor MakeResult(const Shape& shape, const std::vector<Tensor>& inputs);

/// True unless a NoGradGuard is live on this thread.
bool GradModeEnabled();

/// RAII scope that turns off autograd tape recording on this thread: ops
/// inside it build no backward closures, record no input edges, and allocate
/// no gradient buffers. This is the batched-inference hot path — forward
/// cost only. Calling Backward() on a tensor produced inside the guard is an
/// error (it has no tape).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace nn
}  // namespace dlinf

#endif  // DLINF_NN_TENSOR_H_
