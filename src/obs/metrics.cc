#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include "common/check.h"

namespace dlinf {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Lock-free add for pre-C++20-fetch_add-on-double portability.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// Metric names are dot/slash/underscore identifiers, but escape defensively
/// so the snapshot is always valid JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Prometheus metric names allow only [a-zA-Z0-9_:]; we keep `:` reserved
/// for recording rules and fold everything else to `_`.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

/// Expands the registry's label convention into an exposition series name:
/// `base#k1=v1#k2=v2` becomes `base{k1="v1",k2="v2"}` (with `base` folded
/// through PrometheusName). `*base_out` receives the folded base so callers
/// can dedupe `# TYPE` lines across the base series and its labeled
/// variants. A plain name passes through unchanged.
std::string PrometheusLabelEscape(const std::string& s);
std::string PrometheusSeries(const std::string& name, std::string* base_out) {
  const size_t hash = name.find('#');
  if (hash == std::string::npos) {
    *base_out = PrometheusName(name);
    return *base_out;
  }
  *base_out = PrometheusName(name.substr(0, hash));
  std::string labels;
  size_t pos = hash;
  while (pos != std::string::npos) {
    const size_t next = name.find('#', pos + 1);
    const std::string pair =
        name.substr(pos + 1, next == std::string::npos
                                 ? std::string::npos
                                 : next - pos - 1);
    const size_t eq = pair.find('=');
    const std::string key = eq == std::string::npos ? pair : pair.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : pair.substr(eq + 1);
    if (!labels.empty()) labels += ",";
    labels += PrometheusName(key) + "=\"" + PrometheusLabelEscape(value) +
              "\"";
    pos = next;
  }
  return *base_out + "{" + labels + "}";
}

/// Label values escape `\`, `"` and newline per the exposition format.
std::string PrometheusLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

double Histogram::BucketUpperBound(int i) {
  CHECK(i >= 0 && i < kNumBuckets);
  if (i == kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinBound * std::pow(kGrowth, i);
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  int bucket = 0;
  if (value > kMinBound) {
    bucket = 1 + static_cast<int>(std::log(value / kMinBound) /
                                  std::log(kGrowth));
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const int64_t total = count();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based ceil, so q=1 -> total).
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * total)));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // Clamp the open-ended bounds to observed extrema for usable numbers.
      if (i == kNumBuckets - 1) return max();
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric" << name << "already registered with a different kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric" << name << "already registered with a different kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric" << name << "already registered with a different kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RecordSpan(const std::string& path, double seconds) {
  if (!MetricsEnabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& stats = spans_[path];
  if (stats.count == 0) {
    stats.min_seconds = seconds;
    stats.max_seconds = seconds;
  } else {
    stats.min_seconds = std::min(stats.min_seconds, seconds);
    stats.max_seconds = std::max(stats.max_seconds, seconds);
  }
  ++stats.count;
  stats.total_seconds += seconds;
}

std::string MetricsRegistry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "counter " + name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "gauge " + name + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += "histogram " + name + " count=" + std::to_string(hist->count()) +
           " sum=" + FormatDouble(hist->sum()) +
           " min=" + FormatDouble(hist->min()) +
           " max=" + FormatDouble(hist->max()) +
           " p50=" + FormatDouble(hist->Quantile(0.50)) +
           " p95=" + FormatDouble(hist->Quantile(0.95)) +
           " p99=" + FormatDouble(hist->Quantile(0.99)) + "\n";
  }
  for (const auto& [path, stats] : spans_) {
    out += "span " + path + " count=" + std::to_string(stats.count) +
           " total_seconds=" + FormatDouble(stats.total_seconds) + "\n";
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + FormatDouble(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(hist->count()) +
           ", \"sum\": " + FormatDouble(hist->sum()) +
           ", \"min\": " + FormatDouble(hist->min()) +
           ", \"max\": " + FormatDouble(hist->max()) +
           ", \"p50\": " + FormatDouble(hist->Quantile(0.50)) +
           ", \"p95\": " + FormatDouble(hist->Quantile(0.95)) +
           ", \"p99\": " + FormatDouble(hist->Quantile(0.99)) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  first = true;
  for (const auto& [path, stats] : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(path) + "\": {\"count\": " +
           std::to_string(stats.count) +
           ", \"total_seconds\": " + FormatDouble(stats.total_seconds) +
           ", \"min_seconds\": " + FormatDouble(stats.min_seconds) +
           ", \"max_seconds\": " + FormatDouble(stats.max_seconds) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::SnapshotPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // One # TYPE line per exposition family: a labeled series
  // (`base#shard=0`) shares its family with the plain `base` series, so the
  // TYPE line is emitted only on the family's first appearance.
  std::set<std::string> typed;
  for (const auto& [name, counter] : counters_) {
    std::string base;
    const std::string series = PrometheusSeries(name, &base);
    if (typed.insert(base).second) out += "# TYPE " + base + " counter\n";
    out += series + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string base;
    const std::string series = PrometheusSeries(name, &base);
    if (typed.insert(base).second) out += "# TYPE " + base + " gauge\n";
    out += series + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative bucket counts; per-bucket relaxed loads may lag each other
    // under concurrent observation, which Prometheus tolerates (counts are
    // monotone per scrape).
    int64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += hist->BucketCount(i);
      const std::string le =
          i == Histogram::kNumBuckets - 1
              ? "+Inf"
              : FormatDouble(Histogram::BucketUpperBound(i));
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + FormatDouble(hist->sum()) + "\n";
    out += prom + "_count " + std::to_string(hist->count()) + "\n";
  }
  if (!spans_.empty()) {
    out += "# TYPE dlinf_span_count counter\n";
    for (const auto& [path, stats] : spans_) {
      out += "dlinf_span_count{path=\"" + PrometheusLabelEscape(path) +
             "\"} " + std::to_string(stats.count) + "\n";
    }
    out += "# TYPE dlinf_span_seconds_total counter\n";
    for (const auto& [path, stats] : spans_) {
      out += "dlinf_span_seconds_total{path=\"" + PrometheusLabelEscape(path) +
             "\"} " + FormatDouble(stats.total_seconds) + "\n";
    }
  }
  return out;
}

bool MetricsRegistry::DumpJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = SnapshotJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  spans_.clear();
}

}  // namespace obs
}  // namespace dlinf
