#ifndef DLINF_OBS_METRICS_H_
#define DLINF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

/// \file
/// Lock-cheap process metrics: counters, gauges, log-bucketed histograms and
/// a process-wide registry with text/JSON snapshot export.
///
/// Design rules (see DESIGN.md §5 "Observability"):
///  - Hot-path updates are single relaxed atomics; the registry mutex is only
///    taken on metric *registration* and on snapshot export.
///  - Metric objects are never destroyed once registered, so call sites may
///    cache the returned pointer (typically in a function-local static).
///  - Collection is globally switchable at runtime (`SetMetricsEnabled`);
///    when disabled every update is a load+branch, so instrumentation can
///    stay compiled in on release binaries.
///  - Names are dot-separated `subsystem.metric` (e.g. `service.query.hits`),
///    lowercase, with units suffixed where ambiguous (`_seconds`, `_bytes`).

namespace dlinf {
namespace obs {

/// Returns whether metric collection is currently on (default: on).
bool MetricsEnabled();

/// Turns metric collection on/off process-wide. Off makes every update a
/// near-no-op (used to measure instrumentation overhead and by benches that
/// want a quiet baseline).
void SetMetricsEnabled(bool enabled);

/// Monotonic event counter.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  /// Lock-free increment via a CAS loop: `std::atomic<double>::fetch_add`
  /// only gained portable semantics in C++20 and is still not lock-free on
  /// every toolchain we build with, so concurrent adds go through
  /// compare_exchange — lossless under contention (see the concurrent-adds
  /// test in obs_test.cc).
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    double expected = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-scale-bucket histogram for positive measurements (latencies in
/// seconds, sizes). Buckets are geometric: bucket 0 is (-inf, kMinBound];
/// bucket i covers (bound(i-1), bound(i)]; the last bucket is open-ended.
/// With 64 buckets and ~1.56x growth the range 1e-6..1e6 is covered with
/// <= ~28% relative quantile error. All updates are relaxed atomics.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr double kMinBound = 1e-6;
  static constexpr double kGrowth = 1.5625;  ///< 2^(log2(1e12)/62) ~= 1.561.

  /// Upper bound of bucket `i` (the last bucket reports +inf).
  static double BucketUpperBound(int i);

  void Observe(double value);

  /// Observations recorded in bucket `i` (for cumulative exposition; see
  /// MetricsRegistry::SnapshotPrometheus).
  int64_t BucketCount(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty.
  double max() const;  ///< 0 when empty.

  /// Quantile estimate for q in [0, 1]: the upper bound of the bucket that
  /// contains the q-th ranked observation (0 when empty). Deterministic and
  /// monotone in q.
  double Quantile(double q) const;

  void Reset();

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +-inf sentinels make concurrent first observations race-free; the
  // accessors report 0 while empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Aggregated statistics of one span path in the trace tree (see trace.h).
struct SpanStats {
  int64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Process-wide metric registry. `Global()` is the instance all library
/// instrumentation uses; independent instances exist only for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Returns the metric registered under `name`, creating it on first use.
  /// The returned pointer is stable for the registry's lifetime; hot paths
  /// should cache it. Registering the same name with two different metric
  /// kinds is a programmer error (CHECK).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Records one completed trace span under its slash-separated path
  /// ("build_dataset/candidate_generation"). Called by obs::Span.
  void RecordSpan(const std::string& path, double seconds);

  /// Plain-text snapshot: one `kind name value...` line per metric, sorted
  /// by name (stable across identical runs; parse-friendly).
  std::string SnapshotText() const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count,sum,min,max,p50,p95,p99}}, "spans": {path:
  /// {count,total_seconds,min_seconds,max_seconds}}}.
  std::string SnapshotJson() const;

  /// Prometheus text exposition (format 0.0.4), served by the telemetry
  /// server's /metrics endpoint (DESIGN.md §10). Metric names are the
  /// registry names with every non-[a-zA-Z0-9_] character mapped to `_`;
  /// histograms expose cumulative `_bucket{le="..."}` series (ending in
  /// le="+Inf") plus `_sum` and `_count`; span statistics are exported as
  /// `dlinf_span_count{path="..."}` and
  /// `dlinf_span_seconds_total{path="..."}`.
  ///
  /// Label convention: a counter or gauge registered as `base#k=v` (e.g.
  /// `service.shard.hits#shard=0`) is exported as the labeled series
  /// `base{k="v"}`, sharing one `# TYPE` line with the plain `base` series.
  /// Multiple labels chain with further `#k=v` suffixes. Histogram names do
  /// not use the convention (their `le` label is reserved).
  std::string SnapshotPrometheus() const;

  /// Writes SnapshotJson() to `path`; false on I/O failure.
  bool DumpJson(const std::string& path) const;

  /// Zeroes every registered metric and clears span stats without
  /// invalidating pointers handed out by the getters (tests only).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, SpanStats> spans_;
};

}  // namespace obs
}  // namespace dlinf

#endif  // DLINF_OBS_METRICS_H_
