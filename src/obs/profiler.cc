#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/trace_log.h"

// SIGEV_THREAD_ID and its sigevent field are Linux-specific; older glibc
// headers spell the field through the union only.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace dlinf {
namespace obs {
namespace prof {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One captured stack. POD so the signal handler's write is a plain memcpy
/// of pointers — no construction, no allocation.
struct Sample {
  double ts_s = 0.0;
  int32_t depth = 0;
  void* pcs[CpuProfiler::kMaxFrames];
};

/// Per-thread profiler state. The handler touches only `slots` (via the
/// thread-local pointer) and `head`; everything else is control-plane,
/// guarded by ControlMutex().
struct ThreadEntry {
  uint32_t tid = 0;            ///< OS tid (gettid), for SIGEV_THREAD_ID.
  std::string name;            ///< RegisterCurrentThread name ("" = unnamed).
  bool alive = true;           ///< False once the owning thread exited.
  uint64_t generation = 0;     ///< Capture generation the ring belongs to.
  timer_t timer{};             ///< Valid while timer_armed.
  bool timer_armed = false;
  clockid_t cpu_clock{};       ///< pthread_getcpuclockid result.
  bool has_cpu_clock = false;
  std::atomic<uint64_t> head{0};        ///< Samples written this generation.
  std::atomic<Sample*> slots{nullptr};  ///< kRingCapacity once allocated.
};

std::atomic<uint64_t> g_generation{0};
std::atomic<int64_t> g_samples{0};
std::atomic<int64_t> g_dropped{0};
std::atomic<int> g_in_handler{0};
std::atomic<int> g_hz{0};
std::atomic<double> g_origin_seconds{0.0};

thread_local ThreadEntry* t_entry = nullptr;

/// One mutex for the registry and the arm/disarm lifecycle; the signal
/// handler never takes it (it only reads t_entry and atomics).
std::mutex& ControlMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// Leaked like the trace rings: a thread may exit while its samples are
/// still exportable, and t_entry must stay valid for the handler until the
/// thread's last instruction.
std::vector<ThreadEntry*>& Entries() {
  static std::vector<ThreadEntry*>* entries = new std::vector<ThreadEntry*>();
  return *entries;
}

void SigprofHandler(int, siginfo_t*, void*);

/// Deletes the timer; pending-but-undelivered signals may still fire after
/// this, which is why the handler re-checks the armed flag before writing.
void DisarmTimerLocked(ThreadEntry* entry) {
  if (!entry->timer_armed) return;
  timer_delete(entry->timer);
  entry->timer_armed = false;
}

/// Creates + arms the per-thread CPU-time timer. Caller holds ControlMutex
/// and has ensured `slots` is allocated.
bool ArmTimerLocked(ThreadEntry* entry, int hz, std::string* error) {
  if (entry->timer_armed || !entry->has_cpu_clock) return true;
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = static_cast<pid_t>(entry->tid);
  timer_t timer{};
  if (timer_create(entry->cpu_clock, &sev, &timer) != 0) {
    // A thread can exit between registration and Start; its CPU clock is
    // then gone. Not an error — it simply contributes no samples.
    if (error != nullptr && errno != EINVAL && errno != ESRCH) {
      *error = std::string("timer_create: ") + strerror(errno);
      return false;
    }
    return true;
  }
  const long interval_ns = 1000000000L / hz;
  itimerspec spec{};
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(timer, 0, &spec, nullptr) != 0) {
    timer_delete(timer);
    if (error != nullptr) {
      *error = std::string("timer_settime: ") + strerror(errno);
    }
    return false;
  }
  entry->timer = timer;
  entry->timer_armed = true;
  return true;
}

void EnsureSlotsLocked(ThreadEntry* entry) {
  if (entry->slots.load(std::memory_order_relaxed) == nullptr) {
    entry->slots.store(new Sample[CpuProfiler::kRingCapacity],
                       std::memory_order_release);
  }
  entry->generation = g_generation.load(std::memory_order_relaxed);
  entry->head.store(0, std::memory_order_relaxed);
}

/// Unregisters on thread exit: the timer must die with the thread (its CPU
/// clock does), but the entry and its samples stay exportable.
struct ThreadExitGuard {
  ~ThreadExitGuard() {
    std::lock_guard<std::mutex> lock(ControlMutex());
    if (t_entry != nullptr) {
      DisarmTimerLocked(t_entry);
      t_entry->alive = false;
      t_entry = nullptr;
    }
  }
};

void SigprofHandler(int, siginfo_t*, void*) {
  // Async-signal-safe: atomics, TLS reads, clock_gettime, backtrace (warmed
  // up off-signal in Start so its lazy libgcc init never runs here).
  const int saved_errno = errno;
  g_in_handler.fetch_add(1, std::memory_order_acquire);
  if (internal::g_profiling_armed.load(std::memory_order_relaxed)) {
    ThreadEntry* entry = t_entry;
    Sample* slots =
        entry != nullptr ? entry->slots.load(std::memory_order_acquire)
                         : nullptr;
    if (slots != nullptr) {
      const uint64_t head = entry->head.load(std::memory_order_relaxed);
      Sample& sample =
          slots[head % static_cast<uint64_t>(CpuProfiler::kRingCapacity)];
      timespec now{};
      clock_gettime(CLOCK_MONOTONIC, &now);
      sample.ts_s = static_cast<double>(now.tv_sec) +
                    1e-9 * static_cast<double>(now.tv_nsec);
      sample.depth = backtrace(sample.pcs, CpuProfiler::kMaxFrames);
      entry->head.store(head + 1, std::memory_order_release);
      g_samples.fetch_add(1, std::memory_order_relaxed);
      if (head >= static_cast<uint64_t>(CpuProfiler::kRingCapacity)) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  g_in_handler.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

/// dladdr + demangle, with the argument list stripped for folded
/// readability. Falls back to the raw address.
std::string SymbolizePc(void* pc) {
  Dl_info info{};
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    std::string out;
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      out = demangled;
    } else {
      out = info.dli_sname;
    }
    std::free(demangled);
    const size_t paren = out.find('(');
    if (paren != std::string::npos && paren > 0) out.resize(paren);
    // ';' is the folded-format frame separator; symbols must not smuggle it.
    std::replace(out.begin(), out.end(), ';', ':');
    return out;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%p", pc);
  return buffer;
}

/// Identifies the handler's own frames so exports can trim them: the stack
/// as captured is [SigprofHandler, __restore_rt (signal trampoline),
/// interrupted-leaf, ...].
bool IsHandlerFrame(void* pc) {
  Dl_info info{};
  if (dladdr(pc, &info) == 0) return false;
  if (info.dli_saddr == reinterpret_cast<void*>(&SigprofHandler)) return true;
  return info.dli_sname != nullptr &&
         std::strcmp(info.dli_sname, "__restore_rt") == 0;
}

/// Copies out every sample of the current generation. Caller holds
/// ControlMutex; safe while armed (a slot being overwritten concurrently
/// yields one bogus stack at worst, and exports normally run after Stop).
struct ThreadSamples {
  uint32_t tid = 0;
  std::string name;
  std::vector<Sample> samples;
};

std::vector<ThreadSamples> CollectLocked() {
  std::vector<ThreadSamples> out;
  const uint64_t generation = g_generation.load(std::memory_order_relaxed);
  for (ThreadEntry* entry : Entries()) {
    if (entry->generation != generation) continue;
    Sample* slots = entry->slots.load(std::memory_order_acquire);
    if (slots == nullptr) continue;
    const uint64_t capacity =
        static_cast<uint64_t>(CpuProfiler::kRingCapacity);
    const uint64_t head = entry->head.load(std::memory_order_acquire);
    const uint64_t count = std::min(head, capacity);
    if (count == 0) continue;
    ThreadSamples thread;
    thread.tid = entry->tid;
    thread.name = entry->name.empty()
                      ? "thread-" + std::to_string(entry->tid)
                      : entry->name;
    thread.samples.reserve(count);
    const uint64_t begin = head - count;
    for (uint64_t i = 0; i < count; ++i) {
      const Sample& sample = slots[(begin + i) % capacity];
      if (sample.depth <= 0 ||
          sample.depth > CpuProfiler::kMaxFrames) {
        continue;  // Torn concurrent write; drop defensively.
      }
      thread.samples.push_back(sample);
    }
    out.push_back(std::move(thread));
  }
  return out;
}

/// Leading handler/trampoline frames to skip for `sample`.
int TrimFrames(const Sample& sample) {
  int start = 0;
  const int scan = std::min<int>(sample.depth, 4);
  for (int i = 0; i < scan; ++i) {
    if (IsHandlerFrame(sample.pcs[i])) start = i + 1;
  }
  return start;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('?');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Memoized symbolization across one export: profiles repeat the same hot
/// frames thousands of times.
class SymbolCache {
 public:
  const std::string& Name(void* pc) {
    auto it = cache_.find(pc);
    if (it == cache_.end()) {
      it = cache_.emplace(pc, SymbolizePc(pc)).first;
    }
    return it->second;
  }

 private:
  std::unordered_map<void*, std::string> cache_;
};

}  // namespace

namespace internal {
std::atomic<bool> g_profiling_armed{false};
}  // namespace internal

void RegisterCurrentThread(const std::string& name) {
  // Names the thread everywhere at once: the kernel (top/gdb), the trace
  // ring (Chrome thread_name metadata), and the profiler registry.
  SetCurrentThreadName(name);
  thread_local ThreadExitGuard exit_guard;
  (void)exit_guard;
  std::lock_guard<std::mutex> lock(ControlMutex());
  ThreadEntry* entry = t_entry;
  if (entry == nullptr) {
    entry = new ThreadEntry();
    entry->tid = static_cast<uint32_t>(syscall(SYS_gettid));
    entry->has_cpu_clock =
        pthread_getcpuclockid(pthread_self(), &entry->cpu_clock) == 0;
    Entries().push_back(entry);
    t_entry = entry;
  }
  entry->name = name;
  if (internal::g_profiling_armed.load(std::memory_order_relaxed)) {
    // Late joiner while a capture runs: sample it from now on.
    EnsureSlotsLocked(entry);
    ArmTimerLocked(entry, g_hz.load(std::memory_order_relaxed), nullptr);
  }
}

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

bool CpuProfiler::Start(const Options& options, std::string* error) {
  std::lock_guard<std::mutex> lock(ControlMutex());
  if (internal::g_profiling_armed.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "profiler already armed";
    return false;
  }
  const int hz = std::clamp(options.hz, 1, 1000);

  struct sigaction action{};
  action.sa_sigaction = &SigprofHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, nullptr) != 0) {
    if (error != nullptr) {
      *error = std::string("sigaction: ") + strerror(errno);
    }
    return false;
  }
  // backtrace() lazily dlopens libgcc (which allocates) on its first call —
  // force that here, off-signal, so the handler never hits it.
  void* warmup[4];
  backtrace(warmup, 4);

  g_generation.fetch_add(1, std::memory_order_relaxed);
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_hz.store(hz, std::memory_order_relaxed);
  g_origin_seconds.store(NowSeconds(), std::memory_order_relaxed);
  internal::g_profiling_armed.store(true, std::memory_order_release);
  for (ThreadEntry* entry : Entries()) {
    if (!entry->alive) continue;
    EnsureSlotsLocked(entry);
    if (!ArmTimerLocked(entry, hz, error)) {
      // Roll back to disarmed rather than half-armed.
      for (ThreadEntry* armed : Entries()) DisarmTimerLocked(armed);
      internal::g_profiling_armed.store(false, std::memory_order_release);
      return false;
    }
  }
  return true;
}

void CpuProfiler::Stop() {
  std::lock_guard<std::mutex> lock(ControlMutex());
  if (!internal::g_profiling_armed.exchange(false,
                                            std::memory_order_acq_rel)) {
    return;
  }
  for (ThreadEntry* entry : Entries()) DisarmTimerLocked(entry);
  // Quiesce: a signal already delivered may still be mid-handler; once
  // g_in_handler drains, no handler will write again (the armed re-check
  // rejects late deliveries of pending signals).
  while (g_in_handler.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
}

int CpuProfiler::hz() const { return g_hz.load(std::memory_order_relaxed); }

int64_t CpuProfiler::sample_count() const {
  return g_samples.load(std::memory_order_relaxed);
}

int64_t CpuProfiler::dropped_samples() const {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string CpuProfiler::ExportFolded() const {
  std::lock_guard<std::mutex> lock(ControlMutex());
  const std::vector<ThreadSamples> threads = CollectLocked();
  SymbolCache symbols;
  std::string out;
  for (const ThreadSamples& thread : threads) {
    // Aggregate identical stacks: key on the raw pc sequence, symbolize
    // each unique stack once.
    std::map<std::vector<void*>, int64_t> stacks;
    for (const Sample& sample : thread.samples) {
      const int start = TrimFrames(sample);
      std::vector<void*> key(sample.pcs + start, sample.pcs + sample.depth);
      if (key.empty()) continue;
      ++stacks[key];
    }
    for (const auto& [pcs, count] : stacks) {
      std::string line = thread.name;
      // backtrace() is leaf-first; folded format wants root-first.
      for (auto it = pcs.rbegin(); it != pcs.rend(); ++it) {
        line += ';';
        // Non-leaf frames hold return addresses: step back one byte so the
        // call site's symbol resolves, not the instruction after it.
        void* pc = *it;
        const bool leaf = (it + 1 == pcs.rend());
        if (!leaf) pc = static_cast<char*>(pc) - 1;
        line += symbols.Name(pc);
      }
      line += ' ';
      line += std::to_string(count);
      line += '\n';
      out += line;
    }
  }
  return out;
}

bool CpuProfiler::ExportFolded(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string folded = ExportFolded();
  const bool ok =
      std::fwrite(folded.data(), 1, folded.size(), file) == folded.size();
  return std::fclose(file) == 0 && ok;
}

void CpuProfiler::AppendChromeEvents(std::string* out, bool* first,
                                     double origin_seconds) const {
  std::lock_guard<std::mutex> lock(ControlMutex());
  const std::vector<ThreadSamples> threads = CollectLocked();
  const double origin =
      origin_seconds > 0.0 ? origin_seconds
                           : g_origin_seconds.load(std::memory_order_relaxed);
  SymbolCache symbols;
  char buffer[128];
  // pid 2 is the synthetic "cpu-profile" process; pid 1 is the span
  // timeline. Metadata names the process and each sampled thread.
  if (!threads.empty()) {
    if (!*first) *out += ",\n";
    *first = false;
    *out +=
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"cpu-profile\"}}";
  }
  for (const ThreadSamples& thread : threads) {
    *out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" +
            std::to_string(thread.tid) + ",\"args\":{\"name\":\"" +
            JsonEscape(thread.name) + "\"}}";
    for (const Sample& sample : thread.samples) {
      const int start = TrimFrames(sample);
      if (start >= sample.depth) continue;
      std::string stack;
      for (int i = sample.depth - 1; i >= start; --i) {
        void* pc = sample.pcs[i];
        if (i != start) pc = static_cast<char*>(pc) - 1;
        if (!stack.empty()) stack += ';';
        stack += symbols.Name(pc);
      }
      const std::string& leaf = symbols.Name(sample.pcs[start]);
      *out += ",\n{\"name\":\"" + JsonEscape(leaf) +
              "\",\"ph\":\"i\",\"s\":\"t\",";
      std::snprintf(buffer, sizeof(buffer), "\"ts\":%.3f,\"pid\":2,\"tid\":%u,",
                    (sample.ts_s - origin) * 1e6, thread.tid);
      *out += buffer;
      *out += "\"args\":{\"stack\":\"" + JsonEscape(stack) + "\"}}";
    }
  }
}

std::string CpuProfiler::ExportChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  AppendChromeEvents(&out, &first);
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string ExportCombinedChromeJson() {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  TraceLog::Global().AppendChromeEvents(&out, &first);
  // Align the sample clock with the span clock when a trace recording
  // established an origin; otherwise fall back to the capture start.
  CpuProfiler::Global().AppendChromeEvents(
      &out, &first, TraceLog::Global().origin_seconds());
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

// --- CaptureManager ---------------------------------------------------------

namespace {

struct CaptureState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool running = false;
  bool cancel = false;
};

CaptureState& State() {
  static CaptureState* state = new CaptureState();
  return *state;
}

}  // namespace

CaptureManager& CaptureManager::Global() {
  static CaptureManager* manager = new CaptureManager();
  return *manager;
}

bool CaptureManager::Begin(double seconds, int hz, bool chrome,
                           Respond respond) {
  seconds = std::clamp(seconds, 0.1, 60.0);
  hz = std::clamp(hz, 1, 1000);
  CaptureState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running) return false;
  // A --profile-out style capture owns the profiler for the whole run;
  // /profilez yields to it rather than stealing its samples.
  if (ProfilingArmed()) return false;
  // The previous capture (if any) has finished its lambda body; joining
  // here cannot deadlock because it no longer needs state.mu.
  if (state.worker.joinable()) state.worker.join();
  state.running = true;
  state.cancel = false;
  state.worker = std::thread([seconds, hz, chrome,
                              respond = std::move(respond), &state] {
    std::string error;
    CpuProfiler::Options options;
    options.hz = hz;
    if (!CpuProfiler::Global().Start(options, &error)) {
      respond(503, "text/plain", "profiler start failed: " + error + "\n");
    } else {
      {
        std::unique_lock<std::mutex> wait_lock(state.mu);
        state.cv.wait_for(wait_lock,
                          std::chrono::duration<double>(seconds),
                          [&state] { return state.cancel; });
      }
      CpuProfiler::Global().Stop();
      if (chrome) {
        respond(200, "application/json", ExportCombinedChromeJson());
      } else {
        respond(200, "text/plain", CpuProfiler::Global().ExportFolded());
      }
    }
    std::lock_guard<std::mutex> done_lock(state.mu);
    state.running = false;
  });
  return true;
}

void CaptureManager::CancelAndJoin() {
  CaptureState& state = State();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.cancel = true;
    if (state.worker.joinable()) worker = std::move(state.worker);
  }
  state.cv.notify_all();
  if (worker.joinable()) worker.join();
}

}  // namespace prof
}  // namespace obs
}  // namespace dlinf
