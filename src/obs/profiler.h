#ifndef DLINF_OBS_PROFILER_H_
#define DLINF_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

/// \file
/// In-process sampling CPU profiler (DESIGN.md §15).
///
/// While armed, every registered thread owns a POSIX per-thread CPU-time
/// timer (`timer_create` on the clock from `pthread_getcpuclockid`) that
/// delivers SIGPROF to that thread at the configured rate. The handler —
/// written to the async-signal-safety rules in DESIGN.md §15 — captures a
/// `backtrace()` stack into the thread's pre-allocated lock-free ring
/// buffer. Because the timers count *CPU* time, idle threads (parked
/// workers, the epoll loop in `epoll_wait`) generate no samples and no
/// wakeups: the profile is a picture of where cycles go, not where threads
/// sleep.
///
/// Symbolization is lazy and always off-signal: the exporters resolve
/// program counters through `dladdr` + `abi::__cxa_demangle` (executables
/// link with `ENABLE_EXPORTS` so their own symbols resolve) and aggregate
/// identical stacks. Two export formats:
///  - **Folded** ("collapsed stack"): one line per unique stack,
///    `thread;outer;...;leaf count` — feed directly to flamegraph.pl or
///    speedscope.
///  - **Chrome trace events**: each aggregated stack becomes instant events
///    on a `cpu-profile` process track, mergeable with the TraceLog span
///    timeline (`ExportCombinedChromeJson`) so spans and samples land in one
///    Perfetto view.
///
/// Cost contract (bench-gated by bench/profiler_overhead.cc):
///  - **Disarmed** (the default): no timers exist, no signals fire, and
///    registered threads pay nothing on any hot path. The only residual is
///    ~100 bytes of registry state per thread; sample rings are not even
///    allocated until the first Start().
///  - **Armed at 99 Hz**: each thread takes ~99 signal deliveries per
///    CPU-second; one delivery is a `backtrace()` walk (~1-3 us). The gate
///    holds `pipeline.train.dlinfma` and the serving path within 5%.
///
/// Threading: Start/Stop/exporters serialize on an internal control mutex
/// and may be called from any thread. Stop() quiesces: it disarms, deletes
/// every timer, then waits until no handler is still in flight, so the
/// rings are stable for export when it returns. Threads register via
/// `RegisterCurrentThread` (idempotent; also names the thread for trace
/// exports); threads created before Start are picked up at Start, threads
/// registering while armed are timer-armed immediately.

namespace dlinf {
namespace obs {
namespace prof {

namespace internal {
extern std::atomic<bool> g_profiling_armed;
}  // namespace internal

/// True while CpuProfiler::Global().Start() is in effect. One relaxed load.
inline bool ProfilingArmed() {
  return internal::g_profiling_armed.load(std::memory_order_relaxed);
}

/// Names the calling thread (pthread_setname_np, truncated to the kernel's
/// 15-char limit; full name kept for exports) and registers it for SIGPROF
/// sampling. Idempotent — re-registering renames. Only registered threads
/// are sampled; an unregistered thread contributes no samples. Also
/// attaches the name to the thread's TraceLog ring so Chrome exports label
/// the track (thread_name metadata).
void RegisterCurrentThread(const std::string& name);

/// The process-wide sampling profiler.
class CpuProfiler {
 public:
  struct Options {
    int hz = 99;  ///< Samples per CPU-second per thread, clamped to [1,1000].
  };

  static constexpr int kMaxFrames = 48;       ///< Deepest captured stack.
  static constexpr int kRingCapacity = 4096;  ///< Samples kept per thread.

  static CpuProfiler& Global();

  /// Arms sampling on every registered thread. False (reason in *error)
  /// when already armed or when the signal/timer setup fails. Clears the
  /// previous capture.
  bool Start(const Options& options, std::string* error = nullptr);
  bool Start() { return Start(Options()); }

  /// Disarms, deletes all timers and waits for in-flight handlers to drain.
  /// Captured samples stay exportable until the next Start. Idempotent.
  void Stop();

  bool armed() const { return ProfilingArmed(); }
  int hz() const;

  /// Samples captured in the current (or last) capture, across threads.
  int64_t sample_count() const;

  /// Samples that overwrote an older ring slot (capture longer than the
  /// ring; the export keeps the newest kRingCapacity per thread).
  int64_t dropped_samples() const;

  /// Collapsed-stack text: `thread;outer;...;leaf count\n` per unique
  /// stack, symbolized via dladdr. Safe to call while armed (a sample
  /// being written concurrently may be skipped).
  std::string ExportFolded() const;

  /// Standalone Chrome trace JSON of the samples only.
  std::string ExportChromeJson() const;

  /// Writes ExportFolded() to `path`; false on I/O failure.
  bool ExportFolded(const std::string& path) const;

  /// Appends the samples as Chrome trace event objects (no envelope) with
  /// timestamps relative to `origin_seconds` — used by
  /// ExportCombinedChromeJson to merge onto the TraceLog span timeline.
  /// Pass a non-positive origin to use the profiler's own capture start.
  void AppendChromeEvents(std::string* out, bool* first,
                          double origin_seconds = 0.0) const;

 private:
  CpuProfiler() = default;
};

/// One JSON timeline holding both the TraceLog spans (pid 1) and the
/// profiler samples (pid 2), on a shared time origin.
std::string ExportCombinedChromeJson();

/// Orchestrates on-demand `/profilez` captures without blocking the HTTP
/// event loop: Begin() spawns a capture thread that arms the profiler,
/// sleeps `seconds` (cancellably), stops, exports, and answers through the
/// supplied callback. One capture at a time per process.
class CaptureManager {
 public:
  /// status / content-type / body, exactly once per Begin.
  using Respond =
      std::function<void(int status, const std::string& content_type,
                         const std::string& body)>;

  static CaptureManager& Global();

  /// Starts an asynchronous capture. `seconds` clamped to [0.1, 60],
  /// `hz` to [1, 1000]. `chrome` selects the Chrome-trace merge export
  /// instead of folded text. False when a capture is already running or the
  /// profiler is armed by someone else (the caller should answer 409);
  /// `respond` is NOT called in that case.
  bool Begin(double seconds, int hz, bool chrome, Respond respond);

  /// Cancels any in-flight capture (it responds early with the samples
  /// gathered so far) and joins the capture thread. Servers call this
  /// before stopping so no capture outlives them. Idempotent.
  void CancelAndJoin();

 private:
  CaptureManager() = default;
};

}  // namespace prof
}  // namespace obs
}  // namespace dlinf

#endif  // DLINF_OBS_PROFILER_H_
