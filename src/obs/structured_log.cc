#include "obs/structured_log.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace dlinf {
namespace obs {

namespace {

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug: return "debug";
    case LogSeverity::kInfo: return "info";
    case LogSeverity::kWarn: return "warn";
    case LogSeverity::kError: return "error";
  }
  return "info";
}

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RateBucket {
  double window_start = 0.0;
  int lines = 0;
};

/// Everything mutable behind the emit mutex.
struct SinkState {
  std::mutex mu;
  std::FILE* file = nullptr;  ///< Owned unless `is_stderr`.
  bool is_stderr = false;
  LogSeverity min_severity = LogSeverity::kInfo;
  int max_lines_per_window = 200;
  double window_seconds = 1.0;
  std::map<std::string, RateBucket, std::less<>> buckets;
  int64_t emitted = 0;
  int64_t suppressed = 0;
};

SinkState& Sink() {
  static SinkState* state = new SinkState();
  return *state;
}

void CloseLocked(SinkState& state) {
  if (state.file != nullptr && !state.is_stderr) std::fclose(state.file);
  state.file = nullptr;
  state.is_stderr = false;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

namespace internal {

std::atomic<bool> g_structured_log_enabled{false};

void EmitLine(LogSeverity severity, std::string_view event,
              const std::string& fields_json) {
  // Snapshot the trace correlation outside the lock (thread-local).
  const uint64_t trace_id = TraceScope::CurrentTraceId();
  const double wall = WallSeconds();

  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file == nullptr) return;  // Closed since the enabled check.
  if (severity < state.min_severity) return;

  if (state.max_lines_per_window > 0) {
    const auto it = state.buckets.find(event);
    RateBucket& bucket =
        it != state.buckets.end()
            ? it->second
            : state.buckets.emplace(std::string(event), RateBucket{})
                  .first->second;
    const double now = SteadySeconds();
    if (now - bucket.window_start >= state.window_seconds) {
      bucket.window_start = now;
      bucket.lines = 0;
    }
    if (bucket.lines >= state.max_lines_per_window) {
      ++state.suppressed;
      MetricsRegistry::Global().GetCounter("obs.log.suppressed")->Add(1);
      return;
    }
    ++bucket.lines;
  }

  std::fprintf(state.file, "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\"",
               wall, SeverityName(severity),
               JsonEscape(event).c_str());
  if (trace_id != 0) {
    std::fprintf(state.file, ",\"trace_id\":%llu",
                 static_cast<unsigned long long>(trace_id));
  }
  std::fwrite(fields_json.data(), 1, fields_json.size(), state.file);
  std::fputs("}\n", state.file);
  std::fflush(state.file);
  ++state.emitted;
  MetricsRegistry::Global().GetCounter("obs.log.lines")->Add(1);
}

}  // namespace internal

StructuredLog& StructuredLog::Global() {
  static StructuredLog* log = new StructuredLog();
  return *log;
}

bool StructuredLog::OpenFile(const std::string& path) {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  CloseLocked(state);
  state.file = std::fopen(path.c_str(), "w");
  if (state.file == nullptr) {
    internal::g_structured_log_enabled.store(false,
                                             std::memory_order_release);
    return false;
  }
  state.buckets.clear();
  internal::g_structured_log_enabled.store(true, std::memory_order_release);
  return true;
}

void StructuredLog::UseStderr() {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  CloseLocked(state);
  state.file = stderr;
  state.is_stderr = true;
  state.buckets.clear();
  internal::g_structured_log_enabled.store(true, std::memory_order_release);
}

void StructuredLog::Close() {
  SinkState& state = Sink();
  internal::g_structured_log_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(state.mu);
  CloseLocked(state);
}

void StructuredLog::SetMinSeverity(LogSeverity severity) {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  state.min_severity = severity;
}

LogSeverity StructuredLog::min_severity() const {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.min_severity;
}

void StructuredLog::SetRateLimit(int max_lines, double window_seconds) {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  state.max_lines_per_window = max_lines;
  state.window_seconds = window_seconds > 0.0 ? window_seconds : 1.0;
  state.buckets.clear();
}

int64_t StructuredLog::emitted_lines() const {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.emitted;
}

int64_t StructuredLog::suppressed_lines() const {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.suppressed;
}

LogLine::LogLine(LogSeverity severity, std::string_view event)
    : active_(StructuredLogEnabled()), severity_(severity) {
  if (active_) event_ = std::string(event);
}

LogLine::~LogLine() {
  if (active_) internal::EmitLine(severity_, event_, fields_);
}

LogLine& LogLine::Str(std::string_view key, std::string_view value) {
  if (active_) {
    fields_ += ",\"";
    fields_ += key;
    fields_ += "\":\"";
    fields_ += JsonEscape(value);
    fields_ += "\"";
  }
  return *this;
}

LogLine& LogLine::Num(std::string_view key, double value) {
  if (active_) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    fields_ += ",\"";
    fields_ += key;
    fields_ += "\":";
    fields_ += buffer;
  }
  return *this;
}

LogLine& LogLine::Int(std::string_view key, int64_t value) {
  if (active_) {
    fields_ += ",\"";
    fields_ += key;
    fields_ += "\":";
    fields_ += std::to_string(value);
  }
  return *this;
}

LogLine& LogLine::Bool(std::string_view key, bool value) {
  if (active_) {
    fields_ += ",\"";
    fields_ += key;
    fields_ += "\":";
    fields_ += value ? "true" : "false";
  }
  return *this;
}

}  // namespace obs
}  // namespace dlinf
