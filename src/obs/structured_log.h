#ifndef DLINF_OBS_STRUCTURED_LOG_H_
#define DLINF_OBS_STRUCTURED_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// Leveled, rate-limited JSON-lines logging (DESIGN.md §10).
///
/// Each emitted line is one flat JSON object:
///
///   {"ts":1723018511.482331,"level":"info","event":"train.epoch",
///    "trace_id":42,"epoch":3,"train_loss":0.412,"lr":0.002}
///
/// `ts` is wall-clock seconds since the UNIX epoch; `trace_id` appears when
/// the calling thread is inside an armed `obs::TraceScope`, correlating log
/// lines with the /tracez timeline. Lines go to a file
/// (`StructuredLog::Global().OpenFile`) or stderr (`UseStderr`); while no
/// sink is open every `LogLine` is a single relaxed load and nothing else,
/// so instrumentation stays compiled into release binaries.
///
/// Rate limiting is per event name per window (default 200 lines/second):
/// the first N lines of a window pass, the rest are dropped and counted on
/// the `obs.log.suppressed` metric — a misbehaving hot loop cannot turn the
/// log into the bottleneck.
///
/// Emission takes one global mutex; this is a telemetry path (per epoch,
/// per reload, per degradation incident), not a per-query hot path.

namespace dlinf {
namespace obs {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace internal {
extern std::atomic<bool> g_structured_log_enabled;
void EmitLine(LogSeverity severity, std::string_view event,
              const std::string& fields_json);
}  // namespace internal

/// True while a sink is open. One relaxed load.
inline bool StructuredLogEnabled() {
  return internal::g_structured_log_enabled.load(std::memory_order_relaxed);
}

/// Process-wide JSON-lines sink configuration.
class StructuredLog {
 public:
  static StructuredLog& Global();

  /// Opens (truncates) `path` as the sink and enables logging; false on
  /// I/O failure (logging stays disabled). Closes any previous sink.
  bool OpenFile(const std::string& path);

  /// Routes lines to stderr and enables logging.
  void UseStderr();

  /// Flushes, closes the sink, disables logging.
  void Close();

  /// Lines below `severity` are dropped at the emit step.
  void SetMinSeverity(LogSeverity severity);
  LogSeverity min_severity() const;

  /// At most `max_lines` per event name per `window_seconds` (the rest are
  /// suppressed and counted). max_lines <= 0 disables the limit.
  void SetRateLimit(int max_lines, double window_seconds = 1.0);

  int64_t emitted_lines() const;
  int64_t suppressed_lines() const;

 private:
  StructuredLog() = default;
};

/// One log statement, built fluently and emitted on destruction:
///
///   obs::LogLine(obs::LogSeverity::kInfo, "reload.rollback")
///       .Str("reason", why).Int("generation", gen);
///
/// Keys must be JSON-identifier-ish (no escaping is applied to keys);
/// string values are escaped. Inactive (disabled sink) construction is one
/// relaxed load and every Add is a no-op.
class LogLine {
 public:
  LogLine(LogSeverity severity, std::string_view event);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& Str(std::string_view key, std::string_view value);
  LogLine& Num(std::string_view key, double value);
  LogLine& Int(std::string_view key, int64_t value);
  LogLine& Bool(std::string_view key, bool value);

 private:
  bool active_;
  LogSeverity severity_;
  std::string event_;
  std::string fields_;  ///< ",\"key\":value" fragments.
};

}  // namespace obs
}  // namespace dlinf

#endif  // DLINF_OBS_STRUCTURED_LOG_H_
