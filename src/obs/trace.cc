#include "obs/trace.h"

#include <chrono>

namespace dlinf {
namespace obs {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string& ThreadPath() {
  thread_local std::string path;
  return path;
}

}  // namespace

ScopedTimer::ScopedTimer(Histogram* histogram)
    : histogram_(MetricsEnabled() ? histogram : nullptr) {
  if (histogram_ != nullptr) start_seconds_ = NowSeconds();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ != nullptr) {
    histogram_->Observe(NowSeconds() - start_seconds_);
  }
}

Span::Span(const std::string& name) : active_(MetricsEnabled()) {
  if (!active_) return;
  std::string& path = ThreadPath();
  parent_length_ = path.size();
  if (!path.empty()) path += '/';
  path += name;
  start_seconds_ = NowSeconds();
}

Span::~Span() {
  if (!active_) return;
  const double elapsed = NowSeconds() - start_seconds_;
  std::string& path = ThreadPath();
  MetricsRegistry::Global().RecordSpan(path, elapsed);
  path.resize(parent_length_);
}

const std::string& Span::CurrentPath() { return ThreadPath(); }

}  // namespace obs
}  // namespace dlinf
