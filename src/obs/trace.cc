#include "obs/trace.h"

#include <chrono>
#include <string_view>

#include "obs/trace_log.h"

namespace dlinf {
namespace obs {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string& ThreadPath() {
  thread_local std::string path;
  return path;
}

}  // namespace

ScopedTimer::ScopedTimer(Histogram* histogram)
    : histogram_(MetricsEnabled() ? histogram : nullptr) {
  if (histogram_ != nullptr) start_seconds_ = NowSeconds();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ != nullptr) {
    histogram_->Observe(NowSeconds() - start_seconds_);
  }
}

Span::Span(const std::string& name) : active_(MetricsEnabled()) {
  if (!active_) return;
  std::string& path = ThreadPath();
  parent_length_ = path.size();
  if (!path.empty()) path += '/';
  path += name;
  if (TracingArmed()) internal::RecordEvent('B', name);
  start_seconds_ = NowSeconds();
}

Span::~Span() {
  if (!active_) return;
  const double elapsed = NowSeconds() - start_seconds_;
  std::string& path = ThreadPath();
  if (TracingArmed()) {
    // The span's own name is the path tail past the parent prefix.
    internal::RecordEvent(
        'E', std::string_view(path).substr(
                 parent_length_ == 0 ? 0 : parent_length_ + 1));
  }
  MetricsRegistry::Global().RecordSpan(path, elapsed);
  path.resize(parent_length_);
}

const std::string& Span::CurrentPath() { return ThreadPath(); }

}  // namespace obs
}  // namespace dlinf
