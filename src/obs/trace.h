#ifndef DLINF_OBS_TRACE_H_
#define DLINF_OBS_TRACE_H_

#include <string>

#include "obs/metrics.h"

/// \file
/// RAII stage timers. `ScopedTimer` records one duration into a Histogram;
/// `Span` additionally nests: spans opened while another span is live on the
/// same thread record under a slash-joined path, so the registry snapshot
/// carries a stage-level trace tree ("build_dataset/candidate_generation/
/// stay_point_extraction"). Spans are for coarse pipeline stages — each
/// completion takes the registry mutex once — not for per-item inner loops
/// (use a Histogram + ScopedTimer there).

namespace dlinf {
namespace obs {

/// Records the scope's wall-clock duration (seconds) into a histogram.
/// A null histogram or disabled metrics makes it a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  Histogram* histogram_;
  double start_seconds_ = 0.0;
};

/// One node of the per-thread trace tree. Construction pushes `name` onto
/// the calling thread's span stack; destruction records the elapsed seconds
/// for the full path into `MetricsRegistry::Global()` and pops.
class Span {
 public:
  explicit Span(const std::string& name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// The slash-joined path of the innermost live span on this thread
  /// ("" when none) — exposed for tests and log annotation.
  static const std::string& CurrentPath();

 private:
  bool active_;  ///< False when metrics were disabled at construction.
  size_t parent_length_ = 0;  ///< Path prefix length to restore on close.
  double start_seconds_ = 0.0;
};

}  // namespace obs
}  // namespace dlinf

#endif  // DLINF_OBS_TRACE_H_
