#include "obs/trace_log.h"

#include <pthread.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

namespace dlinf {
namespace obs {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One recorded event. Fixed-size name copy keeps slots POD and recording
/// free of allocation; longer names truncate (kMaxNameLength).
struct TraceEvent {
  double ts_us = 0.0;
  uint64_t trace_id = 0;
  char phase = 'B';
  char name[TraceLog::kMaxNameLength + 1] = {0};
};

/// One thread's ring. The mutex is effectively private to the owning thread
/// (exporters are the only other lockers), so recording stays lock-light.
struct ThreadRing {
  std::mutex mu;
  uint32_t tid = 0;
  uint64_t generation = 0;  ///< Recording generation the ring belongs to.
  uint64_t next = 0;        ///< Events written this generation.
  char name[64] = {0};      ///< SetCurrentThreadName; "" until named.
  std::vector<TraceEvent> slots;
};

struct TraceContext {
  uint64_t trace_id = 0;
  bool sampled = false;
  bool has_scope = false;
};

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_generation{1};
std::atomic<double> g_sample_rate{1.0};
std::atomic<double> g_origin_seconds{0.0};
std::atomic<int64_t> g_dropped{0};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// Rings are registered once per thread and never freed: a thread may exit
/// while its events are still exportable, and thread_local pointers into
/// the registry must stay valid for the process lifetime.
std::vector<ThreadRing*>& Rings() {
  static std::vector<ThreadRing*>* rings = new std::vector<ThreadRing*>();
  return *rings;
}

TraceContext& ThreadTraceContext() {
  thread_local TraceContext context;
  return context;
}

ThreadRing* ThisThreadRing() {
  thread_local ThreadRing* ring = [] {
    auto* fresh = new ThreadRing();
    std::lock_guard<std::mutex> lock(RegistryMutex());
    fresh->tid = static_cast<uint32_t>(Rings().size());
    Rings().push_back(fresh);
    return fresh;
  }();
  return ring;
}

/// Deterministic per-trace sampling: a splitmix64 hash of the trace id
/// against the rate threshold, so the same id draws the same decision on
/// every thread and every run.
bool SampleTrace(uint64_t trace_id, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  uint64_t x = trace_id + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x) <
         rate * 18446744073709551616.0;  // 2^64.
}

std::string JsonEscapeName(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('?');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

namespace internal {

std::atomic<bool> g_tracing_armed{false};

bool CurrentTraceSampled() {
  const TraceContext& context = ThreadTraceContext();
  return context.has_scope ? context.sampled : true;
}

void RecordEvent(char phase, std::string_view name) {
  if (!CurrentTraceSampled()) return;
  ThreadRing* ring = ThisThreadRing();
  const double ts_us =
      (NowSeconds() - g_origin_seconds.load(std::memory_order_relaxed)) * 1e6;
  const uint64_t trace_id = ThreadTraceContext().trace_id;

  std::lock_guard<std::mutex> lock(ring->mu);
  const uint64_t generation = g_generation.load(std::memory_order_acquire);
  if (ring->generation != generation) {
    // Lazily join the current recording: stale events from the previous
    // Start() are dropped wholesale (the exporter skips stale rings).
    ring->generation = generation;
    ring->next = 0;
    ring->slots.clear();
  }
  if (ring->slots.size() <
      static_cast<size_t>(TraceLog::kRingCapacity)) {
    ring->slots.emplace_back();
  } else if (ring->next >= static_cast<uint64_t>(TraceLog::kRingCapacity)) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  TraceEvent& slot =
      ring->slots[ring->next % static_cast<uint64_t>(TraceLog::kRingCapacity)];
  slot.ts_us = ts_us;
  slot.trace_id = trace_id;
  slot.phase = phase;
  const size_t length = std::min(name.size(),
                                 static_cast<size_t>(TraceLog::kMaxNameLength));
  std::memcpy(slot.name, name.data(), length);
  slot.name[length] = '\0';
  ++ring->next;
}

}  // namespace internal

uint64_t NextTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void SetCurrentThreadName(std::string_view name) {
  // The kernel limit is 15 chars + NUL; keep the full name for exports.
  char kernel_name[16];
  const size_t kernel_length = std::min(name.size(), sizeof(kernel_name) - 1);
  std::memcpy(kernel_name, name.data(), kernel_length);
  kernel_name[kernel_length] = '\0';
  pthread_setname_np(pthread_self(), kernel_name);

  ThreadRing* ring = ThisThreadRing();
  std::lock_guard<std::mutex> lock(ring->mu);
  const size_t length = std::min(name.size(), sizeof(ring->name) - 1);
  std::memcpy(ring->name, name.data(), length);
  ring->name[length] = '\0';
}

TraceScope::TraceScope() : TraceScope(0) {}

TraceScope::TraceScope(uint64_t trace_id) {
  if (!TracingArmed()) return;
  active_ = true;
  trace_id_ = trace_id != 0 ? trace_id : NextTraceId();
  sampled_ = SampleTrace(trace_id_,
                         g_sample_rate.load(std::memory_order_relaxed));
  TraceContext& context = ThreadTraceContext();
  parent_id_ = context.trace_id;
  parent_sampled_ = context.sampled;
  context.trace_id = trace_id_;
  context.sampled = sampled_;
  context.has_scope = true;
}

TraceScope::~TraceScope() {
  if (!active_) return;
  TraceContext& context = ThreadTraceContext();
  context.trace_id = parent_id_;
  context.sampled = parent_sampled_;
  context.has_scope = parent_id_ != 0;
}

uint64_t TraceScope::CurrentTraceId() {
  return ThreadTraceContext().trace_id;
}

TraceLog& TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

void TraceLog::Start(double sample_rate) {
  g_sample_rate.store(sample_rate, std::memory_order_relaxed);
  g_origin_seconds.store(NowSeconds(), std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  // Bumping the generation invalidates every ring's prior contents without
  // touching them here: each thread resets its own ring on its next record,
  // and the exporter skips rings still on an old generation.
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  internal::g_tracing_armed.store(true, std::memory_order_release);
}

void TraceLog::Stop() {
  internal::g_tracing_armed.store(false, std::memory_order_release);
}

void TraceLog::SetSampleRate(double sample_rate) {
  g_sample_rate.store(sample_rate, std::memory_order_relaxed);
}

double TraceLog::sample_rate() const {
  return g_sample_rate.load(std::memory_order_relaxed);
}

void TraceLog::AppendChromeEvents(std::string* out, bool* first) const {
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    rings = Rings();
  }
  const uint64_t generation = g_generation.load(std::memory_order_acquire);

  // Metadata first: named tracks render labeled in Perfetto. Unnamed-only
  // processes emit no metadata at all, keeping legacy exports byte-stable.
  bool any_named = false;
  for (ThreadRing* ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->name[0] != '\0') any_named = true;
  }
  if (any_named) {
    if (!*first) *out += ",\n";
    *first = false;
    *out +=
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"dlinf\"}}";
    for (ThreadRing* ring : rings) {
      std::lock_guard<std::mutex> lock(ring->mu);
      if (ring->name[0] == '\0') continue;
      *out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
              std::to_string(ring->tid) + ",\"args\":{\"name\":\"" +
              JsonEscapeName(ring->name) + "\"}}";
    }
  }

  char buffer[192];
  for (ThreadRing* ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->generation != generation) continue;  // Pre-Start leftovers.
    const uint64_t capacity = static_cast<uint64_t>(kRingCapacity);
    const uint64_t count = std::min(ring->next, capacity);
    const uint64_t begin = ring->next - count;
    for (uint64_t i = 0; i < count; ++i) {
      const TraceEvent& event = ring->slots[(begin + i) % capacity];
      if (!*first) *out += ",\n";
      *first = false;
      *out += "{\"name\":\"" + JsonEscapeName(event.name) + "\",\"ph\":\"";
      out->push_back(event.phase);
      *out += "\",";
      if (event.phase == 'i') *out += "\"s\":\"t\",";
      std::snprintf(buffer, sizeof(buffer),
                    "\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"trace_id\":%llu}}",
                    event.ts_us, ring->tid,
                    static_cast<unsigned long long>(event.trace_id));
      *out += buffer;
    }
  }
}

double TraceLog::origin_seconds() const {
  return g_origin_seconds.load(std::memory_order_relaxed);
}

std::string TraceLog::ExportChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  AppendChromeEvents(&out, &first);
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceLog::ExportChromeJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = ExportChromeJson();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

int64_t TraceLog::recorded_events() const {
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    rings = Rings();
  }
  const uint64_t generation = g_generation.load(std::memory_order_acquire);
  int64_t total = 0;
  for (ThreadRing* ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->generation != generation) continue;
    total += static_cast<int64_t>(
        std::min(ring->next, static_cast<uint64_t>(kRingCapacity)));
  }
  return total;
}

int64_t TraceLog::dropped_events() const {
  return g_dropped.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace dlinf
