#ifndef DLINF_OBS_TRACE_LOG_H_
#define DLINF_OBS_TRACE_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// Live trace-event recording (DESIGN.md §10).
///
/// `TraceLog` turns the existing `obs::Span` RAII stage markers into a
/// per-event timeline: while armed, every span begin/end (and explicit
/// instant event) is appended to a lock-light per-thread ring buffer and can
/// be exported as Chrome trace-event JSON — the format Perfetto and
/// chrome://tracing load directly. Recording is sampled per *trace*: a
/// `TraceScope` (one query, one reload, one training run) draws a
/// deterministic sampling decision from its trace id, so at rate 0.01 one
/// query in a hundred contributes its full nested span tree and the rest
/// cost nothing beyond the armed check.
///
/// Cost contract (bench-gated, like disarmed fault points):
///  - **Disarmed** (the default), a span's tracing hook is one relaxed
///    atomic load and a predictable branch. `bench/telemetry_overhead.cc`
///    holds this next to the disarmed `fault::Hit` budget.
///  - **Armed**, each recorded event takes the owning thread's otherwise
///    uncontended ring mutex (exporters are the only other lockers), copies
///    ~64 bytes, and advances a cursor; unsampled traces pay two
///    thread-local reads.
///
/// Threading: any thread may record; `Export*` may run concurrently with
/// recording (the /tracez endpoint does) — each per-thread ring has its own
/// mutex, so an export never stalls more than one recorder at a time.
/// Thread ids in the export are small dense integers assigned on a thread's
/// first recorded event (stable within a run, independent of OS tids).

namespace dlinf {
namespace obs {

namespace internal {
extern std::atomic<bool> g_tracing_armed;

/// Slow paths behind the armed check; callers guard with TracingArmed().
void RecordEvent(char phase, std::string_view name);
bool CurrentTraceSampled();
}  // namespace internal

/// True while TraceLog::Global().Start() is in effect. One relaxed load —
/// this is the only cost tracing adds to a disarmed hot path.
inline bool TracingArmed() {
  return internal::g_tracing_armed.load(std::memory_order_relaxed);
}

/// Process-wide monotonically increasing trace-id source (never returns 0;
/// 0 means "no trace context").
uint64_t NextTraceId();

/// Names the calling thread for observability: sets the kernel thread name
/// (`pthread_setname_np`, truncated to the 15-char limit) and attaches the
/// full name to this thread's trace ring, so Chrome exports emit a
/// `thread_name` metadata event and Perfetto shows a labeled track instead
/// of a bare tid. Callers usually go through
/// `obs::prof::RegisterCurrentThread`, which also registers the thread for
/// CPU-profile sampling.
void SetCurrentThreadName(std::string_view name);

/// RAII per-request trace context: sets the calling thread's current trace
/// id and draws the deterministic sampling decision for it. Nesting is
/// allowed (the inner scope wins until it closes). When tracing is disarmed
/// the constructor is one relaxed load and the scope is inert.
class TraceScope {
 public:
  /// Allocates a fresh trace id (NextTraceId) when armed.
  TraceScope();
  /// Adopts `trace_id` (e.g. an id propagated from an upstream service).
  explicit TraceScope(uint64_t trace_id);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The innermost live scope's trace id on this thread (0 when none or
  /// when tracing is disarmed). Structured log lines use this to correlate.
  static uint64_t CurrentTraceId();

  uint64_t trace_id() const { return trace_id_; }
  bool sampled() const { return sampled_; }

 private:
  bool active_ = false;
  bool sampled_ = false;
  uint64_t trace_id_ = 0;
  uint64_t parent_id_ = 0;
  bool parent_sampled_ = false;
};

/// Records a zero-duration instant event ("tier.retry", "reload.rollback")
/// into the current thread's ring. No-op when disarmed or when the current
/// trace is unsampled.
inline void TraceInstant(std::string_view name) {
  if (!TracingArmed()) return;
  internal::RecordEvent('i', name);
}

/// Begin/end event pair without the `obs::Span` registry aggregation — for
/// hot paths (per-query) where taking the registry mutex per scope would be
/// too heavy, but a timeline entry is wanted while tracing. `name` must
/// outlive the scope (pass a string literal). Disarmed cost: one relaxed
/// load.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) : active_(TracingArmed()) {
    if (active_) {
      name_ = name;
      internal::RecordEvent('B', name_);
    }
  }
  ~TraceSpan() {
    if (active_) internal::RecordEvent('E', name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  std::string_view name_;
};

/// The process-wide trace recorder.
class TraceLog {
 public:
  static constexpr int kRingCapacity = 8192;  ///< Events kept per thread.
  static constexpr int kMaxNameLength = 47;   ///< Longer names truncate.

  static TraceLog& Global();

  /// Arms recording. `sample_rate` in [0, 1] is the per-trace sampling
  /// probability; events outside any TraceScope (e.g. offline pipeline
  /// stages) are always recorded while armed. Restarting clears previously
  /// recorded events and re-bases the timestamp origin.
  void Start(double sample_rate = 1.0);

  /// Disarms recording. Recorded events stay exportable until the next
  /// Start.
  void Stop();

  /// Adjusts the sampling rate of a live recording without clearing it.
  void SetSampleRate(double sample_rate);
  double sample_rate() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}): begin/end ("B"/"E")
  /// and instant ("i") events with microsecond timestamps relative to the
  /// recording start, dense thread ids, and the trace id under
  /// args.trace_id. Events are ordered per thread; Perfetto sorts globally
  /// by timestamp on load. Safe to call while recording.
  std::string ExportChromeJson() const;

  /// Writes ExportChromeJson() to `path`; false on I/O failure.
  bool ExportChromeJson(const std::string& path) const;

  /// Appends the trace events as Chrome trace event objects without the
  /// `traceEvents` envelope — the building block ExportChromeJson and the
  /// profiler's combined export share. When at least one thread has been
  /// named (SetCurrentThreadName), `process_name`/`thread_name` metadata
  /// events (ph "M") precede the timeline so tracks render labeled.
  void AppendChromeEvents(std::string* out, bool* first) const;

  /// The monotonic-clock origin (seconds) timestamps are relative to — set
  /// by Start(), 0 before the first recording. The profiler aligns sample
  /// timestamps to this in the combined export.
  double origin_seconds() const;

  /// Events currently held across all rings (post-wrap rings report the
  /// ring capacity). Exposed for tests and /tracez.
  int64_t recorded_events() const;

  /// Events that overwrote an older slot after a ring wrapped (visibility
  /// into truncation; the export silently keeps only the newest
  /// kRingCapacity per thread).
  int64_t dropped_events() const;

 private:
  TraceLog() = default;
};

}  // namespace obs
}  // namespace dlinf

#endif  // DLINF_OBS_TRACE_LOG_H_
