#include "sim/city_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/string_util.h"

namespace dlinf {
namespace sim {
namespace {

/// A point at a uniformly random angle and distance in [0, radius].
Point RandomOffset(const Point& center, double radius, Rng* rng) {
  const double angle = rng->Uniform(0.0, 2.0 * M_PI);
  const double r = rng->Uniform(0.0, radius);
  return Point{center.x + r * std::cos(angle), center.y + r * std::sin(angle)};
}

void AssignSplits(const SimConfig& config, World* world, Rng* rng) {
  // Shuffle community ids and slice by fraction: spatially disjoint splits.
  std::vector<int64_t> ids(world->communities.size());
  std::iota(ids.begin(), ids.end(), 0);
  rng->Shuffle(&ids);
  const int n = static_cast<int>(ids.size());
  const int train_end = std::max(1, static_cast<int>(n * config.train_frac));
  const int val_end =
      std::min(n - 1, train_end + std::max(1, static_cast<int>(
                                                  n * config.val_frac)));
  for (int i = 0; i < n; ++i) {
    Split split = Split::kTest;
    if (i < train_end) {
      split = Split::kTrain;
    } else if (i < val_end) {
      split = Split::kVal;
    }
    world->communities[ids[i]].split = split;
  }
  for (Address& addr : world->addresses) {
    addr.split = world->communities[addr.community_id].split;
  }
}

}  // namespace

World GenerateCity(const SimConfig& config, Rng* rng) {
  CHECK(rng != nullptr);
  CHECK_GE(config.num_communities, 3);
  World world;
  world.name = config.name;
  // Station sits southwest of the community grid.
  world.station = Point{-200.0, -200.0};

  // --- Communities on a grid, jittered. ---------------------------------
  for (int c = 0; c < config.num_communities; ++c) {
    Community community;
    community.id = c;
    const int row = c / config.community_grid_cols;
    const int col = c % config.community_grid_cols;
    community.center =
        Point{col * config.community_spacing_m +
                  rng->Normal(0.0, config.community_spacing_m * 0.05),
              row * config.community_spacing_m +
                  rng->Normal(0.0, config.community_spacing_m * 0.05)};
    // Gate on the station-facing side; locker near the gate but distinct.
    const double gate_angle = std::atan2(world.station.y - community.center.y,
                                         world.station.x - community.center.x);
    community.gate =
        Point{community.center.x +
                  config.community_radius_m * std::cos(gate_angle),
              community.center.y +
                  config.community_radius_m * std::sin(gate_angle)};
    community.locker = Point{community.gate.x + rng->Uniform(20.0, 45.0),
                             community.gate.y + rng->Uniform(-25.0, 25.0)};
    world.communities.push_back(community);
  }

  // --- Buildings & addresses. -------------------------------------------
  for (Community& community : world.communities) {
    const int num_buildings =
        static_cast<int>(rng->UniformInt(config.min_buildings_per_community,
                                         config.max_buildings_per_community));
    for (int b = 0; b < num_buildings; ++b) {
      Building building;
      building.id = static_cast<int64_t>(world.buildings.size());
      building.community_id = community.id;
      // Buildings ring the community center; keep a minimum separation from
      // the center so receptions / doorsteps do not all collapse together.
      const double angle =
          2.0 * M_PI * b / num_buildings + rng->Uniform(-0.2, 0.2);
      const double r = rng->Uniform(config.community_radius_m * 0.35,
                                    config.community_radius_m * 0.95);
      building.position = Point{community.center.x + r * std::cos(angle),
                                community.center.y + r * std::sin(angle)};
      building.reception =
          RandomOffset(building.position, config.reception_offset_m, rng);

      // The building's POI category (Geocoding returns it per address; all
      // of a building's addresses share it) tilts the delivery-mode
      // preference: low-rise residential favors doorsteps, towers favor the
      // community locker, offices favor their reception.
      const int poi_category = static_cast<int>(
          rng->UniformInt(0, config.num_poi_categories - 1));
      double cat_doorstep, cat_locker;
      if (poi_category < config.num_poi_categories / 2) {
        cat_doorstep = 0.75;
        cat_locker = 0.15;
      } else if (poi_category < 3 * config.num_poi_categories / 4) {
        cat_doorstep = 0.20;
        cat_locker = 0.65;
      } else {
        cat_doorstep = 0.10;
        cat_locker = 0.15;
      }
      const double corr = config.category_mode_correlation;
      const double p_doorstep =
          (1.0 - corr) * config.p_doorstep + corr * cat_doorstep;
      const double p_locker =
          (1.0 - corr) * config.p_locker + corr * cat_locker;

      auto sample_mode = [&]() {
        const double u = rng->Uniform(0.0, 1.0);
        if (u < p_doorstep) return DeliveryMode::kDoorstep;
        if (u < p_doorstep + p_locker) return DeliveryMode::kLocker;
        return DeliveryMode::kReception;
      };
      auto location_for = [&](DeliveryMode mode, const Point& doorstep) {
        switch (mode) {
          case DeliveryMode::kDoorstep:
            return doorstep;
          case DeliveryMode::kLocker:
            return community.locker;
          case DeliveryMode::kReception:
            return building.reception;
        }
        return doorstep;
      };

      // Dominant preference shared by most of the building's addresses:
      // most buildings end up with a single delivery location, matching the
      // paper's Fig. 9(a) statistics.
      const DeliveryMode dominant_mode = sample_mode();
      const Point entrance = RandomOffset(building.position, 6.0, rng);
      const Point dominant_location = location_for(dominant_mode, entrance);

      const int num_addresses = static_cast<int>(
          rng->UniformInt(config.min_addresses_per_building,
                          config.max_addresses_per_building));
      for (int a = 0; a < num_addresses; ++a) {
        Address addr;
        addr.id = static_cast<int64_t>(world.addresses.size());
        addr.building_id = building.id;
        addr.community_id = community.id;
        addr.text = StrPrintf("Community %lld Building %lld Unit %d",
                              static_cast<long long>(community.id),
                              static_cast<long long>(building.id), a + 1);
        addr.poi_category = poi_category;

        if (rng->Bernoulli(config.p_address_deviation)) {
          // Individual customer preference (the Fig. 12(c) case): own mode,
          // private door when doorstep.
          addr.mode = sample_mode();
          addr.true_delivery_location = location_for(
              addr.mode,
              RandomOffset(building.position, config.doorstep_offset_m, rng));
        } else {
          addr.mode = dominant_mode;
          addr.true_delivery_location = dominant_location;
        }
        addr.order_rate = rng->LogNormal(config.order_rate_log_mean,
                                         config.order_rate_log_sigma);
        world.addresses.push_back(std::move(addr));
      }
      world.buildings.push_back(std::move(building));
    }
  }

  // --- Geocoding: quality mode drawn per building so that all addresses in
  // a building share one geocoded location (Fig. 12(b) case). --------------
  std::vector<Point> building_geocode(world.buildings.size());
  for (const Building& building : world.buildings) {
    const double u = rng->Uniform(0.0, 1.0);
    if (u < config.p_geocode_fine) {
      building_geocode[building.id] =
          Point{building.position.x +
                    rng->Normal(0.0, config.geocode_fine_sigma_m),
                building.position.y +
                    rng->Normal(0.0, config.geocode_fine_sigma_m)};
    } else if (u < config.p_geocode_fine + config.p_geocode_coarse) {
      // Coarse POI database: the whole community resolves to its center.
      building_geocode[building.id] =
          world.communities[building.community_id].center;
    } else {
      // Wrong parsing ("San Yi Li" vs "San Yi Xi Li"): a *different*
      // community's center, a few hundred meters off.
      int64_t other = building.community_id;
      while (other == building.community_id) {
        other = rng->UniformInt(0, config.num_communities - 1);
      }
      building_geocode[building.id] = world.communities[other].center;
    }
  }
  for (Address& addr : world.addresses) {
    addr.geocoded_location = building_geocode[addr.building_id];
  }

  // --- Courier zones: contiguous slices of the community list. -----------
  CHECK_GE(config.num_couriers, 1);
  const int per_courier =
      (config.num_communities + config.num_couriers - 1) /
      config.num_couriers;
  for (int k = 0; k < config.num_couriers; ++k) {
    Courier courier;
    courier.id = k;
    for (int c = k * per_courier;
         c < std::min((k + 1) * per_courier, config.num_communities); ++c) {
      courier.zone_community_ids.push_back(c);
    }
    if (!courier.zone_community_ids.empty()) {
      world.couriers.push_back(std::move(courier));
    }
  }

  AssignSplits(config, &world, rng);
  return world;
}

}  // namespace sim
}  // namespace dlinf
