#ifndef DLINF_SIM_CITY_GENERATOR_H_
#define DLINF_SIM_CITY_GENERATOR_H_

#include "common/random.h"
#include "sim/config.h"
#include "sim/world.h"

namespace dlinf {
namespace sim {

/// Generates the static city: communities on a grid, buildings within each
/// community, addresses with true delivery locations (doorstep / locker /
/// reception per customer preference), simulated geocoding with the three
/// failure modes, courier zones, and spatially disjoint train/val/test
/// splits. Trips are not generated here (see trip_generator.h).
World GenerateCity(const SimConfig& config, Rng* rng);

}  // namespace sim
}  // namespace dlinf

#endif  // DLINF_SIM_CITY_GENERATOR_H_
