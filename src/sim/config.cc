#include "sim/config.h"

namespace dlinf {
namespace sim {

SimConfig SynDowBJConfig() {
  SimConfig config;
  config.name = "SynDowBJ";
  config.seed = 42;
  return config;  // Defaults model the downtown dataset.
}

SimConfig SynSubBJConfig() {
  SimConfig config;
  config.name = "SynSubBJ";
  config.seed = 4242;
  // Suburban: larger, sparser communities; coarser geocoding; fewer
  // deliveries per address (lower order rates); heavier locker usage and
  // more incidental stops per trip.
  config.community_spacing_m = 420.0;
  config.community_radius_m = 140.0;
  config.p_geocode_fine = 0.62;
  config.p_geocode_coarse = 0.30;
  config.geocode_fine_sigma_m = 25.0;
  config.p_doorstep = 0.52;
  config.p_locker = 0.33;
  config.order_rate_log_sigma = 1.15;
  config.min_waybills_per_trip = 24;
  config.max_waybills_per_trip = 36;
  config.extra_stop_prob = 0.3;
  config.min_addresses_per_building = 4;
  config.max_addresses_per_building = 8;
  config.p_address_deviation = 0.035;
  return config;
}

}  // namespace sim
}  // namespace dlinf
