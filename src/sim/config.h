#ifndef DLINF_SIM_CONFIG_H_
#define DLINF_SIM_CONFIG_H_

#include <cstdint>
#include <string>

namespace dlinf {
namespace sim {

/// All knobs of the synthetic-world generator.
///
/// Two presets mirror the paper's real datasets (Table I / Fig. 9 statistics,
/// scaled down to laptop size): SynDowBJConfig() for dense downtown Beijing
/// and SynSubBJConfig() for the suburban dataset (less precise geocoding,
/// fewer deliveries per address, more stops per trip).
struct SimConfig {
  std::string name = "SynDowBJ";
  uint64_t seed = 42;

  // --- City layout -------------------------------------------------------
  int num_communities = 12;
  int community_grid_cols = 4;
  double community_spacing_m = 330.0;
  double community_radius_m = 120.0;
  int min_buildings_per_community = 9;
  int max_buildings_per_community = 13;
  int min_addresses_per_building = 3;
  int max_addresses_per_building = 7;

  // --- Customer delivery preferences --------------------------------------
  double p_doorstep = 0.60;
  double p_locker = 0.25;  ///< Remaining probability is reception.
  double doorstep_offset_m = 14.0;   ///< Private-door scatter around a building.
  double reception_offset_m = 18.0;  ///< Reception offset from the building.
  /// Probability that an address deviates from its building's dominant
  /// delivery location (its own preference: private door, locker, ...).
  /// Calibrated so that the share of buildings with >1 delivery location
  /// matches the paper's Fig. 9(a) (~22% DowBJ / ~14% SubBJ).
  double p_address_deviation = 0.09;

  // --- Geocoder failure modes (Section V-E case studies) -----------------
  double p_geocode_fine = 0.72;    ///< Building-accurate w/ small noise.
  double p_geocode_coarse = 0.22;  ///< Collapses to the community center.
  /// Remaining probability: wrong parsing -> another community's center.
  double geocode_fine_sigma_m = 15.0;

  int num_poi_categories = 21;
  /// How strongly an address's POI category predicts its delivery mode
  /// (0 = independent, 1 = fully category-determined). Real categories
  /// correlate with receiving preferences (residential towers use lockers,
  /// offices use receptions), which is what gives LocMatcher's address
  /// context vector its signal.
  double category_mode_correlation = 0.7;

  // --- Demand --------------------------------------------------------------
  double order_rate_log_mean = 0.0;
  double order_rate_log_sigma = 1.0;

  // --- Operations ------------------------------------------------------------
  int num_days = 30;
  int num_couriers = 4;
  int trips_per_courier_per_day = 2;
  int min_waybills_per_trip = 22;
  int max_waybills_per_trip = 32;
  /// Probability that a trip is run by a random non-primary courier
  /// (vacation cover); keeps the "number of couriers" profile informative.
  double courier_swap_prob = 0.08;

  // --- Movement & GPS -----------------------------------------------------
  double speed_mps_min = 2.5;
  double speed_mps_max = 6.0;
  double gps_sample_interval_s = 13.5;  ///< Matches the paper's datasets.
  double gps_noise_moving_m = 9.0;
  double gps_noise_staying_m = 6.5;
  double gps_outlier_prob = 0.01;
  double gps_outlier_dist_m = 140.0;

  // --- Stop durations (seconds) --------------------------------------------
  double doorstep_stay_mean_s = 90.0;
  double locker_stay_mean_s = 170.0;
  double reception_stay_mean_s = 70.0;
  double stay_log_sigma = 0.35;  ///< Log-normal spread of stay durations.
  double station_stay_s = 90.0;  ///< Loading at the depot before departure.
  double gate_stop_prob = 0.6;   ///< Pause at a community gate on entry.
  double gate_stay_mean_s = 45.0;
  double extra_stop_prob = 0.2;  ///< Random mid-leg stop (traffic etc.).
  double extra_stay_mean_s = 40.0;

  // --- Confirmation behaviour (Section V-D batch model) --------------------
  int confirm_batches = 2;
  double p_delay = 0.3;
  /// Even "prompt" confirmations lag the drop-off: the courier pockets the
  /// phone, walks off, sorts the next parcel. By the recorded moment the
  /// courier may already be at the next stop, which is what makes annotated
  /// locations noisy even without batch confirmation.
  double confirm_jitter_min_s = 10.0;
  double confirm_jitter_max_s = 120.0;

  // --- Split fractions (by community) ------------------------------------
  double train_frac = 0.6;
  double val_frac = 0.2;
};

/// Downtown-Beijing-like preset (precise geocoding, denser orders).
SimConfig SynDowBJConfig();

/// Suburban-Beijing-like preset (coarser geocoding, fewer deliveries per
/// address, more stops per trip, heavier locker use).
SimConfig SynSubBJConfig();

}  // namespace sim
}  // namespace dlinf

#endif  // DLINF_SIM_CONFIG_H_
