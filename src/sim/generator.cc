#include "sim/generator.h"

#include "common/logging.h"
#include "common/random.h"
#include "fault/fault.h"
#include "sim/city_generator.h"
#include "sim/trip_generator.h"

namespace dlinf {
namespace sim {

World GenerateWorld(const SimConfig& config) {
  Rng rng(config.seed);
  World world = GenerateCity(config, &rng);
  GenerateTrips(config, &world, &rng);
  InjectConfirmationDelays(&world, config.confirm_batches, config.p_delay,
                           config.confirm_jitter_min_s,
                           config.confirm_jitter_max_s, &rng);
  // Fault injection: a trip whose tracker never uploaded — waybills exist
  // but the GPS stream is empty. Downstream mining must tolerate it.
  if (fault::Armed()) {
    for (DeliveryTrip& trip : world.trips) {
      if (fault::Hit("sim.trip.drop_trajectory")) trip.trajectory.points.clear();
    }
  }
  LOG_INFO << world.name << ": " << world.addresses.size() << "addresses,"
           << world.trips.size() << "trips," << world.TotalWaybills()
           << "waybills," << world.TotalTrajectoryPoints() << "GPS points";
  return world;
}

void ReinjectDelays(World* world, int batches, double p_delay, uint64_t seed) {
  Rng rng(seed);
  InjectConfirmationDelays(world, batches, p_delay, /*jitter_min_s=*/10.0,
                           /*jitter_max_s=*/120.0, &rng);
}

}  // namespace sim
}  // namespace dlinf
