#ifndef DLINF_SIM_GENERATOR_H_
#define DLINF_SIM_GENERATOR_H_

#include "sim/config.h"
#include "sim/world.h"

namespace dlinf {
namespace sim {

/// One-call dataset factory: city + trips + confirmation delays, all derived
/// deterministically from config.seed. This is the entry point examples,
/// tests and benches use:
///
///   sim::World world = sim::GenerateWorld(sim::SynDowBJConfig());
World GenerateWorld(const SimConfig& config);

/// Re-applies the delay model with a different delay probability over the
/// same trips (Table III robustness sweep). Ground truth is untouched.
void ReinjectDelays(World* world, int batches, double p_delay, uint64_t seed);

}  // namespace sim
}  // namespace dlinf

#endif  // DLINF_SIM_GENERATOR_H_
