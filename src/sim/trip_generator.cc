#include "sim/trip_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"

namespace dlinf {
namespace sim {
namespace {

/// A scheduled node of a trip: the courier is at `p` from `arrive` until
/// `depart`, moving linearly between consecutive waypoints.
struct Waypoint {
  Point p;
  double arrive = 0.0;
  double depart = 0.0;
};

/// Log-normal stay duration with the given mean (seconds).
double StayDuration(double mean_s, double log_sigma, Rng* rng) {
  const double mu = std::log(mean_s) - 0.5 * log_sigma * log_sigma;
  return std::max(20.0, rng->LogNormal(mu, log_sigma));
}

/// Weighted sampling of `count` distinct address ids.
std::vector<int64_t> SampleAddresses(const std::vector<int64_t>& pool,
                                     const std::vector<double>& weights,
                                     int count, Rng* rng) {
  std::vector<int64_t> ids = pool;
  std::vector<double> w = weights;
  std::vector<int64_t> chosen;
  count = std::min<int>(count, static_cast<int>(ids.size()));
  for (int k = 0; k < count; ++k) {
    const size_t pick = rng->WeightedIndex(w);
    chosen.push_back(ids[pick]);
    ids[pick] = ids.back();
    ids.pop_back();
    w[pick] = w.back();
    w.pop_back();
  }
  return chosen;
}

/// Greedy nearest-neighbour ordering of stop indices, starting from `from`.
std::vector<int> RouteGreedy(const std::vector<Point>& stops,
                             const Point& from) {
  std::vector<int> order;
  std::vector<bool> used(stops.size(), false);
  Point cur = from;
  for (size_t step = 0; step < stops.size(); ++step) {
    int best = -1;
    double best_d = 0.0;
    for (size_t i = 0; i < stops.size(); ++i) {
      if (used[i]) continue;
      const double d = Distance(cur, stops[i]);
      if (best < 0 || d < best_d) {
        best = static_cast<int>(i);
        best_d = d;
      }
    }
    used[best] = true;
    order.push_back(best);
    cur = stops[best];
  }
  return order;
}

/// Position on the waypoint schedule at time `t`.
Point TruePositionAt(const std::vector<Waypoint>& waypoints, double t) {
  CHECK(!waypoints.empty());
  if (t <= waypoints.front().arrive) return waypoints.front().p;
  for (size_t i = 0; i < waypoints.size(); ++i) {
    const Waypoint& wp = waypoints[i];
    if (t <= wp.depart) return wp.p;
    if (i + 1 < waypoints.size() && t < waypoints[i + 1].arrive) {
      const Waypoint& next = waypoints[i + 1];
      const double span = next.arrive - wp.depart;
      const double frac = span > 0 ? (t - wp.depart) / span : 0.0;
      return Point{wp.p.x + frac * (next.p.x - wp.p.x),
                   wp.p.y + frac * (next.p.y - wp.p.y)};
    }
  }
  return waypoints.back().p;
}

/// True when `t` falls inside a stay window (noise is lower when standing).
bool IsStaying(const std::vector<Waypoint>& waypoints, double t) {
  for (const Waypoint& wp : waypoints) {
    if (t >= wp.arrive && t <= wp.depart) return wp.depart > wp.arrive;
  }
  return false;
}

}  // namespace

void GenerateTrips(const SimConfig& config, World* world, Rng* rng) {
  CHECK(world != nullptr);
  CHECK(rng != nullptr);
  CHECK(world->trips.empty()) << "GenerateTrips must run on a fresh city";

  // Pool of deliverable addresses per courier zone.
  std::vector<std::vector<int64_t>> zone_pool(world->couriers.size());
  std::vector<std::vector<double>> zone_weights(world->couriers.size());
  for (const Courier& courier : world->couriers) {
    for (int64_t community_id : courier.zone_community_ids) {
      for (const Address& addr : world->addresses) {
        if (addr.community_id == community_id) {
          zone_pool[courier.id].push_back(addr.id);
          zone_weights[courier.id].push_back(addr.order_rate);
        }
      }
    }
  }

  int64_t next_waybill_id = 0;
  // Trip slot start hours (up to 3 trips per courier per day).
  const double slot_hours[3] = {9.0, 14.0, 18.0};

  for (int day = 0; day < config.num_days; ++day) {
    for (const Courier& primary : world->couriers) {
      for (int slot = 0; slot < config.trips_per_courier_per_day; ++slot) {
        // Occasionally another courier covers the zone.
        int64_t courier_id = primary.id;
        if (world->couriers.size() > 1 &&
            rng->Bernoulli(config.courier_swap_prob)) {
          while (courier_id == primary.id) {
            courier_id = rng->UniformInt(
                0, static_cast<int64_t>(world->couriers.size()) - 1);
          }
        }

        DeliveryTrip trip;
        trip.id = static_cast<int64_t>(world->trips.size());
        trip.courier_id = courier_id;
        const double start =
            day * 86400.0 + slot_hours[std::min(slot, 2)] * 3600.0 +
            rng->Uniform(-1200.0, 1200.0);

        // --- Waybills: sampled from the *primary* courier's zone. ---------
        const int count = static_cast<int>(rng->UniformInt(
            config.min_waybills_per_trip, config.max_waybills_per_trip));
        const std::vector<int64_t> batch = SampleAddresses(
            zone_pool[primary.id], zone_weights[primary.id], count, rng);
        if (batch.empty()) continue;

        // --- Group by true delivery location (lockers/receptions merge). --
        std::map<std::pair<double, double>, std::vector<int64_t>> stop_groups;
        for (int64_t address_id : batch) {
          const Point& loc = world->address(address_id).true_delivery_location;
          stop_groups[{loc.x, loc.y}].push_back(address_id);
        }
        std::vector<Point> stop_points;
        std::vector<std::vector<int64_t>> stop_addresses;
        for (auto& [key, ids] : stop_groups) {
          stop_points.push_back(Point{key.first, key.second});
          stop_addresses.push_back(std::move(ids));
        }
        const std::vector<int> order = RouteGreedy(stop_points, world->station);

        // --- Build the waypoint schedule. ---------------------------------
        std::vector<Waypoint> waypoints;
        double t = start;
        waypoints.push_back(
            Waypoint{world->station, t, t + config.station_stay_s});
        trip.planned_stays.push_back(
            PlannedStay{world->station, t, t + config.station_stay_s, {}});
        t += config.station_stay_s;
        Point cur = world->station;
        int64_t cur_community = -1;

        auto travel_to = [&](const Point& dest) {
          const double speed =
              rng->Uniform(config.speed_mps_min, config.speed_mps_max);
          t += Distance(cur, dest) / speed;
          cur = dest;
        };
        auto add_stay = [&](const Point& p, double duration,
                            std::vector<int64_t> delivered) {
          travel_to(p);
          waypoints.push_back(Waypoint{p, t, t + duration});
          trip.planned_stays.push_back(
              PlannedStay{p, t, t + duration, std::move(delivered)});
          t += duration;
        };

        for (int stop_index : order) {
          const Point& stop = stop_points[stop_index];
          const std::vector<int64_t>& delivered = stop_addresses[stop_index];
          const int64_t community =
              world->address(delivered.front()).community_id;

          // Entering a new community: maybe pause at its gate.
          if (community != cur_community) {
            cur_community = community;
            if (rng->Bernoulli(config.gate_stop_prob)) {
              add_stay(world->community(community).gate,
                       StayDuration(config.gate_stay_mean_s,
                                    config.stay_log_sigma, rng),
                       {});
            }
          } else if (rng->Bernoulli(config.extra_stop_prob)) {
            // Incidental mid-leg stop (traffic, phone call, ...).
            const double frac = rng->Uniform(0.3, 0.7);
            const Point mid{cur.x + frac * (stop.x - cur.x),
                            cur.y + frac * (stop.y - cur.y)};
            add_stay(mid,
                     StayDuration(config.extra_stay_mean_s,
                                  config.stay_log_sigma, rng),
                     {});
          }

          // The delivery stop itself.
          const DeliveryMode mode = world->address(delivered.front()).mode;
          const double mean_stay =
              mode == DeliveryMode::kLocker
                  ? config.locker_stay_mean_s
                  : (mode == DeliveryMode::kReception
                         ? config.reception_stay_mean_s
                         : config.doorstep_stay_mean_s);
          // Longer stays when several parcels are handed over at once.
          const double duration =
              StayDuration(mean_stay, config.stay_log_sigma, rng) *
              (1.0 + 0.15 * (static_cast<double>(delivered.size()) - 1.0));
          const double stay_start = [&] {
            travel_to(stop);
            return t;
          }();
          waypoints.push_back(Waypoint{stop, stay_start, stay_start + duration});
          trip.planned_stays.push_back(PlannedStay{
              stop, stay_start, stay_start + duration,
              std::vector<int64_t>(delivered.begin(), delivered.end())});

          // Actual delivery moments spread inside the stay.
          for (size_t i = 0; i < delivered.size(); ++i) {
            Waybill waybill;
            waybill.id = next_waybill_id++;
            waybill.address_id = delivered[i];
            waybill.receive_time = start - rng->Uniform(3600.0, 4 * 3600.0);
            waybill.actual_delivery_time =
                stay_start + duration * (static_cast<double>(i) + 1.0) /
                                 (static_cast<double>(delivered.size()) + 1.0);
            waybill.recorded_delivery_time = waybill.actual_delivery_time;
            trip.waybills.push_back(waybill);
          }
          t = stay_start + duration;
        }

        // Return to the depot.
        travel_to(world->station);
        waypoints.push_back(Waypoint{world->station, t, t});

        trip.start_time = start;
        trip.end_time = t;

        // --- Emit GPS samples along the schedule. -------------------------
        trip.trajectory.courier_id = courier_id;
        for (double ts = start; ts <= t;
             ts += config.gps_sample_interval_s +
                   rng->Uniform(-1.0, 1.0) /* slight sampling jitter */) {
          const Point truth = TruePositionAt(waypoints, ts);
          const double sigma = IsStaying(waypoints, ts)
                                   ? config.gps_noise_staying_m
                                   : config.gps_noise_moving_m;
          TrajPoint p;
          p.t = ts;
          p.x = truth.x + rng->Normal(0.0, sigma);
          p.y = truth.y + rng->Normal(0.0, sigma);
          if (rng->Bernoulli(config.gps_outlier_prob)) {
            const double angle = rng->Uniform(0.0, 2.0 * M_PI);
            p.x += config.gps_outlier_dist_m * std::cos(angle);
            p.y += config.gps_outlier_dist_m * std::sin(angle);
          }
          trip.trajectory.points.push_back(p);
        }

        world->trips.push_back(std::move(trip));
      }
    }
  }
}

void InjectConfirmationDelays(World* world, int batches, double p_delay,
                              double jitter_min_s, double jitter_max_s,
                              Rng* rng) {
  CHECK(world != nullptr);
  CHECK(rng != nullptr);
  CHECK_GE(batches, 1);
  CHECK(p_delay >= 0.0 && p_delay <= 1.0);

  for (DeliveryTrip& trip : world->trips) {
    // Stay-point times (midpoints), chronological by construction.
    std::vector<double> stay_times;
    for (const PlannedStay& stay : trip.planned_stays) {
      stay_times.push_back((stay.start_time + stay.end_time) / 2.0);
    }
    if (stay_times.empty()) continue;

    // Sequential equal-sized groups; each group's last stay time is a batch
    // confirmation moment.
    const int n = static_cast<int>(stay_times.size());
    const int group_size = (n + batches - 1) / batches;
    std::vector<double> confirm_times;
    for (int g = 0; g < batches; ++g) {
      const int last = std::min(n - 1, (g + 1) * group_size - 1);
      confirm_times.push_back(stay_times[last]);
      if (last == n - 1) break;
    }

    for (Waybill& waybill : trip.waybills) {
      const double actual = waybill.actual_delivery_time;
      // Find the enclosing batch window (prev_confirm, confirm].
      double window_confirm = -1.0;
      double prev = -1e18;
      for (double ct : confirm_times) {
        if (actual > prev && actual <= ct) {
          window_confirm = ct;
          break;
        }
        prev = ct;
      }
      if (window_confirm > 0.0 && rng->Bernoulli(p_delay)) {
        waybill.recorded_delivery_time = window_confirm;
      } else {
        waybill.recorded_delivery_time =
            actual + rng->Uniform(jitter_min_s, jitter_max_s);
      }
    }
  }
}

}  // namespace sim
}  // namespace dlinf
