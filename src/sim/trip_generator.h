#ifndef DLINF_SIM_TRIP_GENERATOR_H_
#define DLINF_SIM_TRIP_GENERATOR_H_

#include "common/random.h"
#include "sim/config.h"
#include "sim/world.h"

namespace dlinf {
namespace sim {

/// Simulates the operational history: for every (day, courier, trip slot)
/// samples a batch of waybills from the courier's zone, routes the stops
/// greedily, walks the route emitting GPS samples every
/// `gps_sample_interval_s` with sensing noise and occasional outliers, and
/// records ground-truth stays and actual delivery times.
///
/// Recorded (confirmed) delivery times are NOT set here — call
/// InjectConfirmationDelays afterwards.
void GenerateTrips(const SimConfig& config, World* world, Rng* rng);

/// Applies the paper's batch-confirmation delay model (Section V-D) to every
/// trip: the trip's stays are divided sequentially into `batches` equal
/// groups; the time of the last stay of each group is a batch-confirmation
/// time; every waybill actually delivered inside a group's window is delayed
/// to that group's confirmation time with probability `p_delay`, and
/// otherwise confirmed promptly (actual time plus a few seconds of jitter).
///
/// Idempotent with respect to ground truth: re-invoking with different
/// parameters overwrites all recorded times, which is how the Table III
/// robustness sweep varies p_d over the same trips.
void InjectConfirmationDelays(World* world, int batches, double p_delay,
                              double jitter_min_s, double jitter_max_s,
                              Rng* rng);

}  // namespace sim
}  // namespace dlinf

#endif  // DLINF_SIM_TRIP_GENERATOR_H_
