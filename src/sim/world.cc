#include "sim/world.h"

#include <unordered_set>

#include "common/check.h"

namespace dlinf {
namespace sim {

const Community& World::community(int64_t id) const {
  CHECK(id >= 0 && id < static_cast<int64_t>(communities.size()));
  return communities[id];
}

const Building& World::building(int64_t id) const {
  CHECK(id >= 0 && id < static_cast<int64_t>(buildings.size()));
  return buildings[id];
}

const Address& World::address(int64_t id) const {
  CHECK(id >= 0 && id < static_cast<int64_t>(addresses.size()));
  return addresses[id];
}

std::vector<int64_t> World::AddressIdsInSplit(Split split) const {
  std::vector<int64_t> ids;
  for (const Address& addr : addresses) {
    if (addr.split == split) ids.push_back(addr.id);
  }
  return ids;
}

std::vector<int64_t> World::DeliveredAddressIds() const {
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> ids;
  for (const DeliveryTrip& trip : trips) {
    for (const Waybill& waybill : trip.waybills) {
      if (seen.insert(waybill.address_id).second) {
        ids.push_back(waybill.address_id);
      }
    }
  }
  return ids;
}

int64_t World::TotalWaybills() const {
  int64_t total = 0;
  for (const DeliveryTrip& trip : trips) {
    total += static_cast<int64_t>(trip.waybills.size());
  }
  return total;
}

int64_t World::TotalTrajectoryPoints() const {
  int64_t total = 0;
  for (const DeliveryTrip& trip : trips) {
    total += static_cast<int64_t>(trip.trajectory.points.size());
  }
  return total;
}

}  // namespace sim
}  // namespace dlinf
