#ifndef DLINF_SIM_WORLD_H_
#define DLINF_SIM_WORLD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/point.h"
#include "traj/trajectory.h"

namespace dlinf {
namespace sim {

/// How a customer prefers to receive parcels; determines the true delivery
/// location of an address (Figure 1 of the paper: doorstep / express locker /
/// reception).
enum class DeliveryMode { kDoorstep = 0, kLocker = 1, kReception = 2 };

/// Dataset split tag. Splits are assigned by *community* so that train /
/// validation / test regions are spatially disjoint, as in Section V-A.
enum class Split { kTrain = 0, kVal = 1, kTest = 2 };

/// A residential community: a cluster of buildings with a shared gate and
/// (optionally used) express locker.
struct Community {
  int64_t id = -1;
  Point center;
  Point gate;    ///< Entrance; couriers often pause here (a common location).
  Point locker;  ///< Shared express locker position.
  Split split = Split::kTrain;
};

/// A building inside a community.
struct Building {
  int64_t id = -1;
  int64_t community_id = -1;
  Point position;
  Point reception;  ///< Building reception desk position.
};

/// A deliverable address (the paper's inference granularity).
struct Address {
  int64_t id = -1;
  int64_t building_id = -1;
  int64_t community_id = -1;
  std::string text;  ///< Synthetic plaintext, e.g. "Community 3 Building 12 Unit 4".

  /// Ground truth (used for labels and evaluation only).
  Point true_delivery_location;
  DeliveryMode mode = DeliveryMode::kDoorstep;

  /// Simulated Geocoder output (visible to all methods).
  Point geocoded_location;
  int poi_category = 0;  ///< 0..20, as returned by Geocoding.

  double order_rate = 1.0;  ///< Relative ordering activity of the customer.
  Split split = Split::kTrain;
};

/// One parcel delivery task (Definition 1).
struct Waybill {
  int64_t id = -1;
  int64_t address_id = -1;
  double receive_time = 0.0;           ///< t_re: courier received the parcel.
  double recorded_delivery_time = 0.0; ///< t_d: possibly delayed confirmation.

  /// Ground truth (never exposed to inference methods).
  double actual_delivery_time = 0.0;
};

/// Generator-side record of one planned stop in a trip. Ground truth only:
/// inference methods must work from the trajectory + waybills.
struct PlannedStay {
  Point location;
  double start_time = 0.0;
  double end_time = 0.0;
  std::vector<int64_t> delivered_address_ids;  ///< Empty for incidental stops.
};

/// A courier's delivery trip (Definition 5).
struct DeliveryTrip {
  int64_t id = -1;
  int64_t courier_id = -1;
  double start_time = 0.0;
  double end_time = 0.0;
  Trajectory trajectory;
  std::vector<Waybill> waybills;

  /// Ground-truth stop schedule (evaluation / delay injection only).
  std::vector<PlannedStay> planned_stays;
};

/// A courier and the communities they primarily serve.
struct Courier {
  int64_t id = -1;
  std::vector<int64_t> zone_community_ids;
};

/// A complete simulated station dataset: static city + operational history.
struct World {
  std::string name;
  Point station;  ///< Depot where every trip starts and ends.
  std::vector<Community> communities;
  std::vector<Building> buildings;
  std::vector<Address> addresses;
  std::vector<Courier> couriers;
  std::vector<DeliveryTrip> trips;

  const Community& community(int64_t id) const;
  const Building& building(int64_t id) const;
  const Address& address(int64_t id) const;

  /// Ids of addresses in the given split.
  std::vector<int64_t> AddressIdsInSplit(Split split) const;

  /// Ids of addresses that appear in at least one trip's waybills.
  std::vector<int64_t> DeliveredAddressIds() const;

  /// Number of waybills across all trips.
  int64_t TotalWaybills() const;

  /// Total GPS points across all trips.
  int64_t TotalTrajectoryPoints() const;
};

}  // namespace sim
}  // namespace dlinf

#endif  // DLINF_SIM_WORLD_H_
