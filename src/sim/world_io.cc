#include "sim/world_io.h"

#include <filesystem>

#include "common/csv.h"
#include "common/string_util.h"

namespace dlinf {
namespace sim {
namespace {

std::string F(double v) { return StrPrintf("%.6f", v); }
std::string I(int64_t v) {
  return StrPrintf("%lld", static_cast<long long>(v));
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool ParseInt(const std::string& s, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !s.empty();
}

}  // namespace

bool SaveWorldCsv(const World& world, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return false;
  auto path = [&](const char* name) { return directory + "/" + name; };

  {
    CsvTable t;
    t.header = {"id", "center_x", "center_y", "gate_x", "gate_y", "locker_x",
                "locker_y", "split"};
    for (const Community& c : world.communities) {
      t.rows.push_back({I(c.id), F(c.center.x), F(c.center.y), F(c.gate.x),
                        F(c.gate.y), F(c.locker.x), F(c.locker.y),
                        I(static_cast<int>(c.split))});
    }
    if (!WriteCsv(path("communities.csv"), t)) return false;
  }
  {
    CsvTable t;
    t.header = {"id", "community_id", "x", "y", "reception_x", "reception_y"};
    for (const Building& b : world.buildings) {
      t.rows.push_back({I(b.id), I(b.community_id), F(b.position.x),
                        F(b.position.y), F(b.reception.x), F(b.reception.y)});
    }
    if (!WriteCsv(path("buildings.csv"), t)) return false;
  }
  {
    CsvTable t;
    t.header = {"id",     "building_id", "community_id", "truth_x", "truth_y",
                "mode",   "geocode_x",   "geocode_y",    "poi",     "rate",
                "split",  "text"};
    for (const Address& a : world.addresses) {
      std::string text = a.text;
      for (char& c : text) {
        if (c == ',') c = ';';  // Keep the simple CSV format unambiguous.
      }
      t.rows.push_back({I(a.id), I(a.building_id), I(a.community_id),
                        F(a.true_delivery_location.x),
                        F(a.true_delivery_location.y),
                        I(static_cast<int>(a.mode)), F(a.geocoded_location.x),
                        F(a.geocoded_location.y), I(a.poi_category),
                        F(a.order_rate), I(static_cast<int>(a.split)), text});
    }
    if (!WriteCsv(path("addresses.csv"), t)) return false;
  }
  {
    CsvTable t;
    t.header = {"id", "zone_community_ids"};
    for (const Courier& c : world.couriers) {
      std::vector<std::string> zone;
      for (int64_t id : c.zone_community_ids) zone.push_back(I(id));
      t.rows.push_back({I(c.id), Join(zone, ";")});
    }
    if (!WriteCsv(path("couriers.csv"), t)) return false;
  }
  {
    CsvTable trips;
    trips.header = {"id", "courier_id", "start", "end"};
    CsvTable waybills;
    waybills.header = {"trip_id", "id",      "address_id",
                       "receive", "recorded", "actual"};
    CsvTable gps;
    gps.header = {"trip_id", "x", "y", "t"};
    CsvTable stays;
    stays.header = {"trip_id", "x", "y", "start", "end", "address_ids"};
    for (const DeliveryTrip& trip : world.trips) {
      trips.rows.push_back(
          {I(trip.id), I(trip.courier_id), F(trip.start_time),
           F(trip.end_time)});
      for (const Waybill& w : trip.waybills) {
        waybills.rows.push_back({I(trip.id), I(w.id), I(w.address_id),
                                 F(w.receive_time),
                                 F(w.recorded_delivery_time),
                                 F(w.actual_delivery_time)});
      }
      for (const TrajPoint& p : trip.trajectory.points) {
        gps.rows.push_back({I(trip.id), F(p.x), F(p.y), F(p.t)});
      }
      for (const PlannedStay& stay : trip.planned_stays) {
        std::vector<std::string> ids;
        for (int64_t id : stay.delivered_address_ids) ids.push_back(I(id));
        stays.rows.push_back({I(trip.id), F(stay.location.x),
                              F(stay.location.y), F(stay.start_time),
                              F(stay.end_time), Join(ids, ";")});
      }
    }
    if (!WriteCsv(path("trips.csv"), trips)) return false;
    if (!WriteCsv(path("waybills.csv"), waybills)) return false;
    if (!WriteCsv(path("gps.csv"), gps)) return false;
    if (!WriteCsv(path("stays.csv"), stays)) return false;
  }
  {
    CsvTable meta;
    meta.header = {"name", "station_x", "station_y"};
    meta.rows.push_back({world.name, F(world.station.x), F(world.station.y)});
    if (!WriteCsv(path("meta.csv"), meta)) return false;
  }
  return true;
}

std::optional<World> LoadWorldCsv(const std::string& directory) {
  auto path = [&](const char* name) { return directory + "/" + name; };
  World world;

  const auto meta = ReadCsv(path("meta.csv"));
  if (!meta || meta->rows.size() != 1) return std::nullopt;
  world.name = meta->rows[0][0];
  double x, y;
  if (!ParseDouble(meta->rows[0][1], &x) || !ParseDouble(meta->rows[0][2], &y))
    return std::nullopt;
  world.station = Point{x, y};

  const auto communities = ReadCsv(path("communities.csv"));
  if (!communities) return std::nullopt;
  for (const auto& row : communities->rows) {
    Community c;
    int64_t split;
    if (!ParseInt(row[0], &c.id) || !ParseDouble(row[1], &c.center.x) ||
        !ParseDouble(row[2], &c.center.y) || !ParseDouble(row[3], &c.gate.x) ||
        !ParseDouble(row[4], &c.gate.y) || !ParseDouble(row[5], &c.locker.x) ||
        !ParseDouble(row[6], &c.locker.y) || !ParseInt(row[7], &split)) {
      return std::nullopt;
    }
    c.split = static_cast<Split>(split);
    world.communities.push_back(c);
  }

  const auto buildings = ReadCsv(path("buildings.csv"));
  if (!buildings) return std::nullopt;
  for (const auto& row : buildings->rows) {
    Building b;
    if (!ParseInt(row[0], &b.id) || !ParseInt(row[1], &b.community_id) ||
        !ParseDouble(row[2], &b.position.x) ||
        !ParseDouble(row[3], &b.position.y) ||
        !ParseDouble(row[4], &b.reception.x) ||
        !ParseDouble(row[5], &b.reception.y)) {
      return std::nullopt;
    }
    world.buildings.push_back(b);
  }

  const auto addresses = ReadCsv(path("addresses.csv"));
  if (!addresses) return std::nullopt;
  for (const auto& row : addresses->rows) {
    Address a;
    int64_t mode, poi, split;
    if (!ParseInt(row[0], &a.id) || !ParseInt(row[1], &a.building_id) ||
        !ParseInt(row[2], &a.community_id) ||
        !ParseDouble(row[3], &a.true_delivery_location.x) ||
        !ParseDouble(row[4], &a.true_delivery_location.y) ||
        !ParseInt(row[5], &mode) ||
        !ParseDouble(row[6], &a.geocoded_location.x) ||
        !ParseDouble(row[7], &a.geocoded_location.y) ||
        !ParseInt(row[8], &poi) || !ParseDouble(row[9], &a.order_rate) ||
        !ParseInt(row[10], &split)) {
      return std::nullopt;
    }
    a.mode = static_cast<DeliveryMode>(mode);
    a.poi_category = static_cast<int>(poi);
    a.split = static_cast<Split>(split);
    a.text = row[11];
    world.addresses.push_back(std::move(a));
  }

  const auto couriers = ReadCsv(path("couriers.csv"));
  if (!couriers) return std::nullopt;
  for (const auto& row : couriers->rows) {
    Courier c;
    if (!ParseInt(row[0], &c.id)) return std::nullopt;
    for (const std::string& piece : ::dlinf::Split(row[1], ';')) {
      if (piece.empty()) continue;
      int64_t id;
      if (!ParseInt(piece, &id)) return std::nullopt;
      c.zone_community_ids.push_back(id);
    }
    world.couriers.push_back(std::move(c));
  }

  const auto trips = ReadCsv(path("trips.csv"));
  const auto waybills = ReadCsv(path("waybills.csv"));
  const auto gps = ReadCsv(path("gps.csv"));
  const auto stays = ReadCsv(path("stays.csv"));
  if (!trips || !waybills || !gps || !stays) return std::nullopt;
  for (const auto& row : trips->rows) {
    DeliveryTrip trip;
    if (!ParseInt(row[0], &trip.id) || !ParseInt(row[1], &trip.courier_id) ||
        !ParseDouble(row[2], &trip.start_time) ||
        !ParseDouble(row[3], &trip.end_time)) {
      return std::nullopt;
    }
    trip.trajectory.courier_id = trip.courier_id;
    world.trips.push_back(std::move(trip));
  }
  auto trip_at = [&](const std::string& field,
                     DeliveryTrip** out) -> bool {
    int64_t id;
    if (!ParseInt(field, &id) || id < 0 ||
        id >= static_cast<int64_t>(world.trips.size())) {
      return false;
    }
    *out = &world.trips[id];
    return true;
  };
  for (const auto& row : waybills->rows) {
    DeliveryTrip* trip;
    if (!trip_at(row[0], &trip)) return std::nullopt;
    Waybill w;
    if (!ParseInt(row[1], &w.id) || !ParseInt(row[2], &w.address_id) ||
        !ParseDouble(row[3], &w.receive_time) ||
        !ParseDouble(row[4], &w.recorded_delivery_time) ||
        !ParseDouble(row[5], &w.actual_delivery_time)) {
      return std::nullopt;
    }
    trip->waybills.push_back(w);
  }
  for (const auto& row : gps->rows) {
    DeliveryTrip* trip;
    if (!trip_at(row[0], &trip)) return std::nullopt;
    TrajPoint p;
    if (!ParseDouble(row[1], &p.x) || !ParseDouble(row[2], &p.y) ||
        !ParseDouble(row[3], &p.t)) {
      return std::nullopt;
    }
    trip->trajectory.points.push_back(p);
  }
  for (const auto& row : stays->rows) {
    DeliveryTrip* trip;
    if (!trip_at(row[0], &trip)) return std::nullopt;
    PlannedStay stay;
    if (!ParseDouble(row[1], &stay.location.x) ||
        !ParseDouble(row[2], &stay.location.y) ||
        !ParseDouble(row[3], &stay.start_time) ||
        !ParseDouble(row[4], &stay.end_time)) {
      return std::nullopt;
    }
    for (const std::string& piece : ::dlinf::Split(row[5], ';')) {
      if (piece.empty()) continue;
      int64_t id;
      if (!ParseInt(piece, &id)) return std::nullopt;
      stay.delivered_address_ids.push_back(id);
    }
    trip->planned_stays.push_back(std::move(stay));
  }
  return world;
}

}  // namespace sim
}  // namespace dlinf
