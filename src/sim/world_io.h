#ifndef DLINF_SIM_WORLD_IO_H_
#define DLINF_SIM_WORLD_IO_H_

#include <optional>
#include <string>

#include "sim/world.h"

namespace dlinf {
namespace sim {

/// Persists a world as a directory of CSV files (communities.csv,
/// buildings.csv, addresses.csv, couriers.csv, trips.csv, waybills.csv,
/// gps.csv, stays.csv). This is both a debugging aid and the documented
/// interchange format for loading *real* waybill + trajectory data into the
/// pipeline: fill the same files and LoadWorldCsv produces a World the whole
/// library operates on.
///
/// Returns false if the directory cannot be written.
bool SaveWorldCsv(const World& world, const std::string& directory);

/// Loads a world saved by SaveWorldCsv. Returns nullopt on any missing file
/// or malformed row.
std::optional<World> LoadWorldCsv(const std::string& directory);

}  // namespace sim
}  // namespace dlinf

#endif  // DLINF_SIM_WORLD_IO_H_
