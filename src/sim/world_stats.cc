#include "sim/world_stats.h"

#include <set>
#include <unordered_map>

#include "common/stats.h"

namespace dlinf {
namespace sim {

WorldStats ComputeWorldStats(const World& world) {
  WorldStats stats;
  stats.num_communities = static_cast<int64_t>(world.communities.size());
  stats.num_buildings = static_cast<int64_t>(world.buildings.size());
  stats.num_addresses = static_cast<int64_t>(world.addresses.size());
  stats.num_couriers = static_cast<int64_t>(world.couriers.size());
  stats.num_trips = static_cast<int64_t>(world.trips.size());
  stats.num_waybills = world.TotalWaybills();
  stats.num_gps_points = world.TotalTrajectoryPoints();

  // Deliveries per address + confirmation delays.
  std::unordered_map<int64_t, int> deliveries;
  double delay_sum = 0.0;
  for (const DeliveryTrip& trip : world.trips) {
    for (const Waybill& w : trip.waybills) {
      ++deliveries[w.address_id];
      delay_sum += w.recorded_delivery_time - w.actual_delivery_time;
    }
  }
  stats.num_delivered_addresses = static_cast<int64_t>(deliveries.size());
  if (stats.num_trips > 0) {
    stats.mean_waybills_per_trip =
        static_cast<double>(stats.num_waybills) /
        static_cast<double>(stats.num_trips);
  }
  if (stats.num_waybills > 0) {
    stats.mean_confirmation_delay_s =
        delay_sum / static_cast<double>(stats.num_waybills);
  }
  if (!deliveries.empty()) {
    std::vector<double> counts;
    counts.reserve(deliveries.size());
    for (const auto& [address, count] : deliveries) {
      counts.push_back(static_cast<double>(count));
    }
    stats.mean_deliveries_per_address = Mean(counts);
    stats.median_deliveries_per_address = Median(counts);
  }

  // Distinct delivery locations per building (Fig. 9(a)).
  std::unordered_map<int64_t, std::set<std::pair<double, double>>> locations;
  for (const Address& addr : world.addresses) {
    locations[addr.building_id].insert(
        {addr.true_delivery_location.x, addr.true_delivery_location.y});
  }
  if (!locations.empty()) {
    int64_t multi = 0;
    for (const auto& [building, points] : locations) {
      stats.locations_per_building[static_cast<int>(points.size())] += 1.0;
      if (points.size() > 1) ++multi;
    }
    for (auto& [count, fraction] : stats.locations_per_building) {
      fraction /= static_cast<double>(locations.size());
    }
    stats.frac_buildings_multi_location =
        static_cast<double>(multi) / static_cast<double>(locations.size());
  }
  return stats;
}

}  // namespace sim
}  // namespace dlinf
