#ifndef DLINF_SIM_WORLD_STATS_H_
#define DLINF_SIM_WORLD_STATS_H_

#include <map>
#include <vector>

#include "sim/world.h"

namespace dlinf {
namespace sim {

/// Aggregate dataset statistics (the quantities of the paper's Table I and
/// Figure 9 that depend only on the world, not on the mining pipeline).
struct WorldStats {
  int64_t num_communities = 0;
  int64_t num_buildings = 0;
  int64_t num_addresses = 0;
  int64_t num_delivered_addresses = 0;
  int64_t num_couriers = 0;
  int64_t num_trips = 0;
  int64_t num_waybills = 0;
  int64_t num_gps_points = 0;

  double mean_waybills_per_trip = 0.0;
  double mean_deliveries_per_address = 0.0;  ///< Over delivered addresses.
  double median_deliveries_per_address = 0.0;

  /// Fig. 9(a): distribution of distinct delivery locations per building
  /// (key = #locations, value = fraction of buildings).
  std::map<int, double> locations_per_building;

  /// Fraction of buildings whose addresses use more than one location.
  double frac_buildings_multi_location = 0.0;

  /// Mean recorded-minus-actual confirmation delay in seconds (a property
  /// of the injected confirmation behaviour).
  double mean_confirmation_delay_s = 0.0;
};

/// Computes the statistics in one pass over the world.
WorldStats ComputeWorldStats(const World& world);

}  // namespace sim
}  // namespace dlinf

#endif  // DLINF_SIM_WORLD_STATS_H_
