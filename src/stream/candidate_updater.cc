#include "stream/candidate_updater.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace dlinf {
namespace stream {

CandidateIndexUpdater::CandidateIndexUpdater(const Options& options)
    : options_(options), grid_(options.cluster_distance_m) {
  CHECK_GT(options_.cluster_distance_m, 0.0);
}

void CandidateIndexUpdater::AbsorbProfile(Cluster* cluster,
                                          const StayPoint& sp) {
  cluster->duration_sum += sp.Duration();
  cluster->couriers.insert(sp.courier_id);
  const double seconds_in_day = std::fmod(sp.Time(), 86400.0);
  const int hour =
      std::clamp(static_cast<int>(seconds_in_day / 3600.0), 0, 23);
  cluster->hour_counts[hour] += 1.0;
}

void CandidateIndexUpdater::MergeInto(int64_t dst, int64_t src) {
  Cluster& a = clusters_[static_cast<size_t>(dst)];
  Cluster& b = clusters_[static_cast<size_t>(src)];
  CHECK(a.alive && b.alive && dst != src);
  grid_.Remove(dst, a.centroid);
  grid_.Remove(src, b.centroid);
  // Weighted union keeps the centroid the exact mean of all members, the
  // same arithmetic the batch PointCluster merge uses.
  const double total = a.weight + b.weight;
  a.centroid.x = (a.centroid.x * a.weight + b.centroid.x * b.weight) / total;
  a.centroid.y = (a.centroid.y * a.weight + b.centroid.y * b.weight) / total;
  a.weight = total;
  a.members.insert(a.members.end(), b.members.begin(), b.members.end());
  a.couriers.insert(b.couriers.begin(), b.couriers.end());
  a.duration_sum += b.duration_sum;
  for (size_t h = 0; h < a.hour_counts.size(); ++h) {
    a.hour_counts[h] += b.hour_counts[h];
  }
  b.alive = false;
  b.members.clear();
  b.couriers.clear();
  --live_clusters_;
  grid_.Insert(dst, a.centroid);
  obs::MetricsRegistry::Global().GetCounter("stream.cluster.merges")->Add(1);
}

void CandidateIndexUpdater::CascadeMerges(int64_t cid) {
  // Each merge moves the centroid, so re-query until no neighbour remains
  // within D. Termination: every iteration removes one live cluster.
  bool merged = true;
  while (merged) {
    merged = false;
    const Point center = clusters_[static_cast<size_t>(cid)].centroid;
    for (int64_t other :
         grid_.RadiusQuery(center, options_.cluster_distance_m)) {
      if (other == cid) continue;
      MergeInto(cid, other);
      merged = true;
      break;
    }
  }
}

void CandidateIndexUpdater::AssignStay(int64_t stay_index) {
  const Point p = stay_points_[static_cast<size_t>(stay_index)].location;
  const int64_t nearest = grid_.Nearest(p, options_.cluster_distance_m);
  if (nearest < 0) {
    const int64_t cid = static_cast<int64_t>(clusters_.size());
    Cluster cluster;
    cluster.centroid = p;
    cluster.weight = 1.0;
    cluster.members = {stay_index};
    AbsorbProfile(&cluster, stay_points_[static_cast<size_t>(stay_index)]);
    clusters_.push_back(std::move(cluster));
    ++live_clusters_;
    grid_.Insert(cid, p);
    obs::MetricsRegistry::Global().GetCounter("stream.cluster.spawns")->Add(1);
    return;
  }
  Cluster& cluster = clusters_[static_cast<size_t>(nearest)];
  grid_.Remove(nearest, cluster.centroid);
  cluster.centroid.x = (cluster.centroid.x * cluster.weight + p.x) /
                       (cluster.weight + 1.0);
  cluster.centroid.y = (cluster.centroid.y * cluster.weight + p.y) /
                       (cluster.weight + 1.0);
  cluster.weight += 1.0;
  cluster.members.push_back(stay_index);
  AbsorbProfile(&cluster, stay_points_[static_cast<size_t>(stay_index)]);
  grid_.Insert(nearest, cluster.centroid);
  CascadeMerges(nearest);
}

void CandidateIndexUpdater::AddTrip(const sim::World& city,
                                    const sim::DeliveryTrip& trip,
                                    const std::vector<StayPoint>& stays) {
  CHECK_EQ(trip.id, num_trips_)
      << "streamed trips must arrive with dense in-order ids";
  for (const StayPoint& sp : stays) {
    CHECK_EQ(sp.trip_id, trip.id);
    const int64_t index = static_cast<int64_t>(stay_points_.size());
    stay_points_.push_back(sp);
    AssignStay(index);
  }
  std::unordered_set<int64_t> trip_buildings;
  for (const sim::Waybill& waybill : trip.waybills) {
    address_trips_[waybill.address_id].push_back(
        dlinfma::AddressTripRecord{trip.id, waybill.recorded_delivery_time});
    trip_buildings.insert(city.address(waybill.address_id).building_id);
  }
  for (int64_t building_id : trip_buildings) {
    building_trips_[building_id].push_back(trip.id);
  }
  ++num_trips_;
}

dlinfma::CandidateGeneration CandidateIndexUpdater::Snapshot() const {
  dlinfma::CandidateGeneration gen;
  gen.num_trips_ = num_trips_;
  gen.stay_points_ = stay_points_;

  // Candidates from live clusters, in stable (spawn-order) iteration order.
  std::vector<int64_t> candidate_of_stay(stay_points_.size(), -1);
  gen.candidates_.reserve(live_clusters_);
  for (const Cluster& cluster : clusters_) {
    if (!cluster.alive) continue;
    dlinfma::LocationCandidate candidate;
    candidate.id = static_cast<int64_t>(gen.candidates_.size());
    candidate.location = cluster.centroid;
    candidate.num_stay_points = static_cast<int>(cluster.members.size());
    const double n = static_cast<double>(cluster.members.size());
    candidate.profile.avg_duration_s = n > 0 ? cluster.duration_sum / n : 0.0;
    candidate.profile.num_couriers = static_cast<int>(cluster.couriers.size());
    if (n > 0) {
      for (size_t h = 0; h < cluster.hour_counts.size(); ++h) {
        candidate.profile.time_distribution[h] = cluster.hour_counts[h] / n;
      }
    }
    for (int64_t member : cluster.members) {
      candidate_of_stay[static_cast<size_t>(member)] = candidate.id;
    }
    gen.candidates_.push_back(std::move(candidate));
  }

  // Per-trip chronological candidate visits (same assembly as the batch
  // indexing stage).
  gen.trip_visits_.assign(static_cast<size_t>(num_trips_), {});
  for (size_t i = 0; i < gen.stay_points_.size(); ++i) {
    const StayPoint& sp = gen.stay_points_[i];
    CHECK_GE(candidate_of_stay[i], 0);
    gen.trip_visits_[static_cast<size_t>(sp.trip_id)].push_back(
        dlinfma::TripCandidateVisit{candidate_of_stay[i], sp.Time(),
                                    sp.Duration()});
  }
  for (auto& visits : gen.trip_visits_) {
    std::sort(visits.begin(), visits.end(),
              [](const dlinfma::TripCandidateVisit& a,
                 const dlinfma::TripCandidateVisit& b) {
                return a.time < b.time;
              });
  }
  for (int64_t trip_id = 0; trip_id < gen.num_trips_; ++trip_id) {
    std::unordered_set<int64_t> seen;
    for (const dlinfma::TripCandidateVisit& visit :
         gen.trip_visits_[static_cast<size_t>(trip_id)]) {
      if (seen.insert(visit.candidate_id).second) {
        gen.candidate_trips_[visit.candidate_id].push_back(trip_id);
      }
    }
  }
  gen.address_trips_ = address_trips_;
  gen.building_trips_ = building_trips_;
  return gen;
}

std::vector<Point> CandidateIndexUpdater::LiveCentroids() const {
  std::vector<Point> centroids;
  for (const Cluster& cluster : clusters_) {
    if (cluster.alive) centroids.push_back(cluster.centroid);
  }
  return centroids;
}

std::vector<Point> CandidateIndexUpdater::LiveMemberMeans() const {
  std::vector<Point> means;
  for (const Cluster& cluster : clusters_) {
    if (!cluster.alive) continue;
    Point mean{0.0, 0.0};
    for (int64_t member : cluster.members) {
      mean.x += stay_points_[static_cast<size_t>(member)].location.x;
      mean.y += stay_points_[static_cast<size_t>(member)].location.y;
    }
    const double n = static_cast<double>(cluster.members.size());
    mean.x /= n;
    mean.y /= n;
    means.push_back(mean);
  }
  return means;
}

}  // namespace stream
}  // namespace dlinf
