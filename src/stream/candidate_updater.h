#ifndef DLINF_STREAM_CANDIDATE_UPDATER_H_
#define DLINF_STREAM_CANDIDATE_UPDATER_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dlinfma/candidate_generation.h"
#include "geo/grid_index.h"
#include "geo/point.h"
#include "sim/world.h"
#include "traj/stay_point.h"

namespace dlinf {
namespace stream {

/// Incremental maintenance of the candidate pool and its retrieval indexes
/// (DESIGN.md §13): the streaming counterpart of the batch
/// dlinfma::CandidateGeneration::Build clustering + indexing stages.
///
/// Each finalized stay point is inserted online: it joins the nearest live
/// cluster within the clustering threshold D (weighted-mean centroid update,
/// so centroids stay the exact mean of their members, as in the batch
/// PointCluster arithmetic), or spawns a new cluster; any insertion that
/// pulls two centroids within D of each other triggers cascading merges.
/// The invariant the batch agglomerative pass guarantees — no two final
/// centroids within D — therefore holds after every AddTrip. Per-cluster
/// profile state (distinct couriers, duration sum, hour histogram) and the
/// address/building retrieval maps are maintained incrementally too.
///
/// Snapshot() materializes a batch-compatible dlinfma::CandidateGeneration
/// in O(stay points + clusters) — assembling candidate ids, per-trip visit
/// lists and the retrieval maps from the live state — without re-running
/// detection or clustering. The online trainer feeds these snapshots to
/// feature extraction and retraining rounds.
///
/// Cluster *identity* is insertion-order greedy rather than the batch
/// closest-pair order, so cluster compositions can differ from a batch
/// rebuild on the same data; the equivalence contract at this layer is the
/// separation invariant + exact-mean centroids (tests/stream_test.cc), with
/// end-to-end served-answer agreement enforced within golden tolerance by
/// tests/online_trainer_test.cc.
class CandidateIndexUpdater {
 public:
  using Options = dlinfma::CandidateGeneration::Options;

  explicit CandidateIndexUpdater(const Options& options);

  /// Absorbs one completed trip: its finalized stay points (tagged with the
  /// trip's id, which must equal the number of trips already added — trips
  /// arrive in stream order) and its waybill records. `city` resolves
  /// waybill addresses to buildings.
  void AddTrip(const sim::World& city, const sim::DeliveryTrip& trip,
               const std::vector<StayPoint>& stays);

  size_t num_stay_points() const { return stay_points_.size(); }
  size_t num_clusters() const { return live_clusters_; }
  int64_t num_trips() const { return num_trips_; }

  /// Batch-compatible snapshot of the mined state (see class comment).
  dlinfma::CandidateGeneration Snapshot() const;

  /// Test hook: live cluster centroids (stable iteration order).
  std::vector<Point> LiveCentroids() const;

  /// Test hook: exact mean of each live cluster's member stay points, in
  /// the same order as LiveCentroids().
  std::vector<Point> LiveMemberMeans() const;

 private:
  struct Cluster {
    Point centroid;
    double weight = 0.0;
    std::vector<int64_t> members;  ///< Indexes into stay_points_.
    bool alive = true;
    // Incremental profile state (batch BuildProfile equivalents).
    std::unordered_set<int64_t> couriers;
    double duration_sum = 0.0;
    std::array<double, 24> hour_counts{};
  };

  /// Routes stay_points_[stay_index] into the pool (join / spawn + merges).
  void AssignStay(int64_t stay_index);

  /// Folds one stay point into a cluster's profile accumulators.
  static void AbsorbProfile(Cluster* cluster, const StayPoint& sp);

  /// Merges `src` into `dst` (weighted centroid union) and kills `src`.
  void MergeInto(int64_t dst, int64_t src);

  /// Re-merges until no other live centroid lies within D of `cid`'s.
  void CascadeMerges(int64_t cid);

  Options options_;
  GridIndex grid_;  ///< Live cluster centroids, payload = cluster index.
  std::vector<Cluster> clusters_;
  size_t live_clusters_ = 0;

  std::vector<StayPoint> stay_points_;
  std::unordered_map<int64_t, std::vector<dlinfma::AddressTripRecord>>
      address_trips_;
  std::unordered_map<int64_t, std::vector<int64_t>> building_trips_;
  int64_t num_trips_ = 0;
};

}  // namespace stream
}  // namespace dlinf

#endif  // DLINF_STREAM_CANDIDATE_UPDATER_H_
