#include "stream/ingest_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/string_util.h"
#include "fault/fault.h"
#include "obs/profiler.h"
#include "io/artifact.h"
#include "io/codecs.h"
#include "obs/metrics.h"

namespace dlinf {
namespace stream {
namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Strict numeric parsers: whole-token consumption, no exceptions.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitTokens(const std::string& line, char sep) {
  std::vector<std::string> tokens;
  size_t begin = 0;
  while (begin <= line.size()) {
    size_t end = line.find(sep, begin);
    if (end == std::string::npos) end = line.size();
    if (end > begin) tokens.push_back(line.substr(begin, end - begin));
    begin = end + 1;
  }
  return tokens;
}

struct IngestMetrics {
  obs::Counter* received;
  obs::Counter* acked;
  obs::Counter* deduped;
  obs::Counter* shed;
  obs::Counter* recovered;
  obs::Counter* batches;
  obs::Counter* trips;
  obs::Counter* rejected_malformed;
  obs::Counter* rejected_gap;
  obs::Counter* rejected_protocol;
  obs::Counter* rejected_oversized;
  obs::Counter* rejected_client_cap;
  obs::Counter* rejected_wal;
  obs::Counter* clients_evicted;
  obs::Counter* snapshot_errors;
  obs::Histogram* ack_seconds;

  static const IngestMetrics& Get() {
    static const IngestMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return IngestMetrics{
          r.GetCounter("stream.ingest.received"),
          r.GetCounter("stream.ingest.acked"),
          r.GetCounter("stream.ingest.deduped"),
          r.GetCounter("stream.ingest.shed"),
          r.GetCounter("stream.ingest.recovered"),
          r.GetCounter("stream.ingest.batches"),
          r.GetCounter("stream.ingest.trips_completed"),
          r.GetCounter("stream.ingest.rejected#reason=malformed"),
          r.GetCounter("stream.ingest.rejected#reason=gap"),
          r.GetCounter("stream.ingest.rejected#reason=protocol"),
          r.GetCounter("stream.ingest.rejected#reason=oversized"),
          r.GetCounter("stream.ingest.rejected#reason=client_cap"),
          r.GetCounter("stream.ingest.rejected#reason=wal"),
          r.GetCounter("stream.ingest.clients_evicted"),
          r.GetCounter("stream.ingest.snapshot_errors"),
          r.GetHistogram("stream.ingest.ack_seconds"),
      };
    }();
    return metrics;
  }
};

constexpr const char* kJsonType = "application/json";

std::string ErrorJson(const std::string& message) {
  // Messages echo client-supplied tokens, so every control character must
  // be escaped or the error body itself stops being valid JSON.
  std::string escaped;
  for (const char c : message) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          escaped += StrPrintf("\\u%04x", static_cast<unsigned char>(c));
        } else {
          escaped.push_back(c);
        }
    }
  }
  return "{\"error\":\"" + escaped + "\"}\n";
}

}  // namespace

bool ParseIngestLine(const std::string& line, IngestRecord* record,
                     std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  const std::vector<std::string> tokens = SplitTokens(line, ' ');
  if (tokens.empty()) return fail("empty record");

  *record = IngestRecord();
  const std::string& verb = tokens[0];
  if (verb == "start_trip") {
    record->kind = IngestRecord::Kind::kStartTrip;
  } else if (verb == "point") {
    record->kind = IngestRecord::Kind::kPoint;
  } else if (verb == "finish_trip") {
    record->kind = IngestRecord::Kind::kFinishTrip;
  } else {
    return fail("unknown record type '" + verb + "'");
  }
  if (tokens.size() < 3) return fail("missing client/seq in '" + verb + "'");
  record->client_id = tokens[1];
  if (!ParseU64(tokens[2], &record->seq) || record->seq == 0) {
    return fail("bad seq '" + tokens[2] + "' (expect integer >= 1)");
  }

  switch (record->kind) {
    case IngestRecord::Kind::kStartTrip: {
      if (tokens.size() < 6) return fail("start_trip needs courier t0 t1");
      if (!ParseI64(tokens[3], &record->courier_id) ||
          !ParseF64(tokens[4], &record->start_time) ||
          !ParseF64(tokens[5], &record->end_time)) {
        return fail("bad start_trip numeric field");
      }
      for (size_t i = 6; i < tokens.size(); ++i) {
        if (tokens[i].compare(0, 3, "wb=") != 0) {
          return fail("unexpected start_trip token '" + tokens[i] + "'");
        }
        const std::vector<std::string> parts =
            SplitTokens(tokens[i].substr(3), ':');
        if (parts.size() != 5) {
          return fail("waybill needs id:addr:recv:recorded:actual");
        }
        sim::Waybill wb;
        if (!ParseI64(parts[0], &wb.id) || !ParseI64(parts[1], &wb.address_id) ||
            !ParseF64(parts[2], &wb.receive_time) ||
            !ParseF64(parts[3], &wb.recorded_delivery_time) ||
            !ParseF64(parts[4], &wb.actual_delivery_time)) {
          return fail("bad waybill field in '" + tokens[i] + "'");
        }
        record->waybills.push_back(wb);
      }
      return true;
    }
    case IngestRecord::Kind::kPoint: {
      if (tokens.size() != 6) return fail("point needs x y t");
      if (!ParseF64(tokens[3], &record->x) || !ParseF64(tokens[4], &record->y) ||
          !ParseF64(tokens[5], &record->t)) {
        return fail("bad point numeric field");
      }
      return true;
    }
    case IngestRecord::Kind::kFinishTrip: {
      if (tokens.size() != 3) return fail("finish_trip takes no extra fields");
      return true;
    }
  }
  return fail("unreachable");
}

std::string FormatIngestLine(const IngestRecord& record) {
  switch (record.kind) {
    case IngestRecord::Kind::kStartTrip: {
      std::string line = StrPrintf(
          "start_trip %s %llu %lld %.17g %.17g", record.client_id.c_str(),
          static_cast<unsigned long long>(record.seq),
          static_cast<long long>(record.courier_id), record.start_time,
          record.end_time);
      for (const sim::Waybill& wb : record.waybills) {
        line += StrPrintf(" wb=%lld:%lld:%.17g:%.17g:%.17g",
                          static_cast<long long>(wb.id),
                          static_cast<long long>(wb.address_id),
                          wb.receive_time, wb.recorded_delivery_time,
                          wb.actual_delivery_time);
      }
      return line;
    }
    case IngestRecord::Kind::kPoint:
      return StrPrintf("point %s %llu %.17g %.17g %.17g",
                       record.client_id.c_str(),
                       static_cast<unsigned long long>(record.seq), record.x,
                       record.y, record.t);
    case IngestRecord::Kind::kFinishTrip:
      return StrPrintf("finish_trip %s %llu", record.client_id.c_str(),
                       static_cast<unsigned long long>(record.seq));
  }
  return "";
}

IngestServer::IngestServer(Options options) : options_(std::move(options)) {}

IngestServer::~IngestServer() {
  if (running_) Stop();
}

std::string IngestServer::SnapshotPath(const std::string& wal_dir) {
  return wal_dir + "/snapshot.dlab";
}

bool IngestServer::Start(std::string* error) {
  if (running_) {
    if (error != nullptr) *error = "ingest server already running";
    return false;
  }
  if (!RecoverState(error)) return false;

  auto wal = WalWriter::Open(options_.wal, error);
  if (!wal) return false;
  wal_ = std::move(*wal);

  writer_stop_ = false;
  writer_crashed_ = false;
  writer_ = std::thread([this] { WriterLoop(); });

  apps::HttpServer::Options http_options;
  http_options.port = options_.port;
  http_options.idle_timeout_s = options_.idle_timeout_s;
  http_options.thread_name = "ingest.loop";
  if (!http_.Start(http_options,
                   [this](const apps::HttpRequest& request,
                          apps::HttpServer::ResponseHandle handle) {
                     HandleRequest(request, std::move(handle));
                   },
                   error)) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      writer_stop_ = true;
    }
    queue_cv_.notify_all();
    writer_.join();
    wal_->Close();
    return false;
  }
  running_ = true;
  return true;
}

void IngestServer::Stop() {
  if (!running_) return;
  http_.Stop();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    writer_stop_ = true;
  }
  queue_cv_.notify_all();
  writer_.join();
  if (wal_) wal_->Close();
  running_ = false;
}

void IngestServer::CrashForTest() {
  if (!running_) return;
  http_.Stop();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    writer_crashed_ = true;
  }
  queue_cv_.notify_all();
  writer_.join();
  if (wal_) wal_->AbandonForCrashTest();
  running_ = false;
}

IngestServer::Stats IngestServer::stats() const {
  Stats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.acked = acked_.load(std::memory_order_relaxed);
  s.deduped = deduped_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.recovered = recovered_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.trips = trips_.load(std::memory_order_relaxed);
  return s;
}

bool IngestServer::WaitIdle(double timeout_s) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  return idle_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                           [this] {
                             return queue_.empty() && !writer_busy_;
                           });
}

std::string IngestServer::StatsJson() const {
  const Stats s = stats();
  return StrPrintf(
      "{\"received\":%lld,\"acked\":%lld,\"deduped\":%lld,\"shed\":%lld,"
      "\"rejected\":%lld,\"recovered\":%lld,\"batches\":%lld,"
      "\"trips\":%lld,\"queue_records\":%lld,\"tracked_clients\":%lld}\n",
      static_cast<long long>(s.received), static_cast<long long>(s.acked),
      static_cast<long long>(s.deduped), static_cast<long long>(s.shed),
      static_cast<long long>(s.rejected), static_cast<long long>(s.recovered),
      static_cast<long long>(s.batches), static_cast<long long>(s.trips),
      static_cast<long long>(queue_records_.load(std::memory_order_relaxed)),
      static_cast<long long>(
          tracked_clients_.load(std::memory_order_relaxed)));
}

void IngestServer::HandleRequest(const apps::HttpRequest& request,
                                 apps::HttpServer::ResponseHandle handle) {
  if (request.path == "/healthz") {
    handle.Respond(200, "text/plain", "ok\n");
    return;
  }
  if (request.path == "/ingest/stats") {
    handle.Respond(200, kJsonType, StatsJson());
    return;
  }
  if (request.path != "/ingest") {
    handle.Respond(404, kJsonType, ErrorJson("no such endpoint"));
    return;
  }
  if (request.method != "POST") {
    handle.Respond(405, kJsonType, ErrorJson("POST required on /ingest"));
    return;
  }

  const IngestMetrics& metrics = IngestMetrics::Get();
  Batch batch;
  batch.enqueue_monotonic_s = MonotonicSeconds();

  std::vector<std::string> lines;
  size_t begin = 0;
  const std::string& body = request.body;
  while (begin < body.size()) {
    size_t end = body.find('\n', begin);
    if (end == std::string::npos) end = body.size();
    std::string line = body.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    begin = end + 1;
    if (!line.empty()) lines.push_back(std::move(line));
  }
  // A 400 rejects the whole batch, so the rejected counters carry every
  // record in it (the Stats contract), not just the lines parsed so far.
  const int64_t total_lines = static_cast<int64_t>(lines.size());
  for (const std::string& line : lines) {
    IngestRecord record;
    std::string parse_error;
    if (!ParseIngestLine(line, &record, &parse_error)) {
      metrics.rejected_malformed->Add(total_lines);
      metrics.batches->Add(1);
      rejected_.fetch_add(total_lines, std::memory_order_relaxed);
      batches_.fetch_add(1, std::memory_order_relaxed);
      handle.Respond(400, kJsonType,
                     ErrorJson("malformed record: " + parse_error));
      return;
    }
    batch.records.push_back(std::move(record));
  }
  if (batch.records.empty()) {
    metrics.batches->Add(1);
    batches_.fetch_add(1, std::memory_order_relaxed);
    handle.Respond(400, kJsonType, ErrorJson("empty ingest body"));
    return;
  }

  // `ingest.reorder` models a producer whose records arrive out of order;
  // classification then sees a sequence gap and the batch takes the typed
  // 409 branch.
  if (batch.records.size() > 1 && fault::Hit("ingest.reorder")) {
    std::reverse(batch.records.begin(), batch.records.end());
  }

  const int64_t n = static_cast<int64_t>(batch.records.size());
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const int64_t depth = queue_records_.load(std::memory_order_relaxed);
    if (depth + n > static_cast<int64_t>(options_.max_queue_records)) {
      metrics.shed->Add(n);
      metrics.batches->Add(1);
      shed_.fetch_add(n, std::memory_order_relaxed);
      batches_.fetch_add(1, std::memory_order_relaxed);
      handle.RespondWithHeaders(
          429, kJsonType, ErrorJson("ingest queue full"),
          {{"Retry-After", std::to_string(options_.retry_after_s)}});
      return;
    }
    batch.handle = std::move(handle);
    queue_records_.fetch_add(n, std::memory_order_relaxed);
    queue_.push_back(std::move(batch));
  }
  metrics.received->Add(n);
  received_.fetch_add(n, std::memory_order_relaxed);
  queue_cv_.notify_one();
}

void IngestServer::WriterLoop() {
  obs::prof::RegisterCurrentThread("ingest.writer");
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || writer_stop_ || writer_crashed_;
      });
      if (writer_crashed_) return;
      if (queue_.empty()) {
        if (writer_stop_) return;
        continue;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
      writer_busy_ = true;
    }
    ProcessBatch(&batch);
    queue_records_.fetch_sub(static_cast<int64_t>(batch.records.size()),
                             std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      writer_busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

void IngestServer::ProcessBatch(Batch* batch) {
  const IngestMetrics& metrics = IngestMetrics::Get();
  const int64_t n = static_cast<int64_t>(batch->records.size());

  // A slow consumer (injected): lets tests fill the bounded queue and
  // exercise the 429 shed branch without real load.
  if (auto fire = fault::Hit("ingest.slow_client")) {
    fault::SleepForMs(fire->latency_ms > 0 ? fire->latency_ms : 20.0);
  }

  auto reject = [&](int status, obs::Counter* reason_counter,
                    const std::string& message) {
    reason_counter->Add(n);
    metrics.batches->Add(1);
    rejected_.fetch_add(n, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (status == 429) {
      batch->handle.RespondWithHeaders(
          status, kJsonType, ErrorJson(message),
          {{"Retry-After", std::to_string(options_.retry_after_s)}});
    } else {
      batch->handle.Respond(status, kJsonType, ErrorJson(message));
    }
  };

  // Classify against an overlay of the authoritative per-client state so a
  // failed batch leaves no trace (the transaction contract).
  struct Overlay {
    uint64_t last_seq = 0;
    bool trip_open = false;
    bool is_new = false;  ///< client_id not yet in the tracked table.
  };
  std::unordered_map<std::string, Overlay> overlay;
  std::vector<const IngestRecord*> fresh;
  std::vector<std::string> fresh_lines;
  int64_t dups = 0;
  size_t new_clients = 0;
  for (const IngestRecord& record : batch->records) {
    auto [it, inserted] = overlay.try_emplace(record.client_id);
    if (inserted) {
      auto found = clients_.find(record.client_id);
      if (found != clients_.end()) {
        it->second.last_seq = found->second.last_seq;
        it->second.trip_open = found->second.trip_open;
      } else {
        it->second.is_new = true;
        ++new_clients;
      }
    }
    Overlay& state = it->second;
    if (record.seq <= state.last_seq) {
      ++dups;  // Retried record: already WAL-committed, ack as a no-op.
      continue;
    }
    if (record.seq != state.last_seq + 1) {
      reject(409, metrics.rejected_gap,
             StrPrintf("sequence gap for client %s: got %llu, expected %llu",
                       record.client_id.c_str(),
                       static_cast<unsigned long long>(record.seq),
                       static_cast<unsigned long long>(state.last_seq + 1)));
      return;
    }
    const bool needs_open = record.kind != IngestRecord::Kind::kStartTrip;
    if (needs_open != state.trip_open) {
      reject(409, metrics.rejected_protocol,
             StrPrintf("trip lifecycle violation for client %s at seq %llu",
                       record.client_id.c_str(),
                       static_cast<unsigned long long>(record.seq)));
      return;
    }
    std::string line = FormatIngestLine(record);
    // The WAL stores exactly this line; a payload past max_record_bytes
    // must bounce here, before the append, or AppendFrames would refuse
    // the whole batch as a 503 (and a hypothetical ack of it would be
    // unreadable to recovery).
    if (line.size() > options_.wal.max_record_bytes) {
      reject(400, metrics.rejected_oversized,
             StrPrintf("record for client %s at seq %llu encodes to %zu "
                       "bytes, over the WAL record limit %llu",
                       record.client_id.c_str(),
                       static_cast<unsigned long long>(record.seq),
                       line.size(),
                       static_cast<unsigned long long>(
                           options_.wal.max_record_bytes)));
      return;
    }
    state.last_seq = record.seq;
    state.trip_open = record.kind != IngestRecord::Kind::kFinishTrip;
    fresh.push_back(&record);
    fresh_lines.push_back(std::move(line));
  }

  // Bound the dedup table before admitting new client_ids: evict the
  // longest-idle clients with no open trip, and when every tracked client
  // is mid-trip, shed the batch typed — retrying is safe and capacity
  // frees as trips finish. An evicted client's retry turns into a typed
  // 409 gap (its dedup state is gone), never a silent double-apply.
  if (options_.max_clients > 0 && new_clients > 0) {
    while (clients_.size() + new_clients > options_.max_clients) {
      auto victim = clients_.end();
      for (auto it = clients_.begin(); it != clients_.end(); ++it) {
        if (it->second.trip_open) continue;
        if (overlay.count(it->first) > 0) continue;  // Touched this batch.
        if (victim == clients_.end() ||
            it->second.last_active < victim->second.last_active) {
          victim = it;
        }
      }
      if (victim == clients_.end()) {
        reject(429, metrics.rejected_client_cap,
               StrPrintf("tracked client limit %llu reached and every "
                         "client has an open trip",
                         static_cast<unsigned long long>(
                             options_.max_clients)));
        return;
      }
      clients_.erase(victim);
      metrics.clients_evicted->Add(1);
    }
    tracked_clients_.store(static_cast<int64_t>(clients_.size()),
                           std::memory_order_relaxed);
  }

  if (!fresh.empty()) {
    std::string frames;
    for (size_t i = 0; i < fresh.size(); ++i) {
      io::AppendWalFrame(static_cast<uint32_t>(fresh[i]->kind),
                         fresh_lines[i], &frames);
    }
    std::string wal_error;
    if (!wal_->AppendFrames(frames, fresh.size(), &wal_error)) {
      reject(503, metrics.rejected_wal, "wal append failed: " + wal_error);
      return;
    }
    for (const IngestRecord* record : fresh) ApplyRecord(*record);
    tracked_clients_.store(static_cast<int64_t>(clients_.size()),
                           std::memory_order_relaxed);
    MaybeSnapshot();
  }

  metrics.acked->Add(static_cast<int64_t>(fresh.size()));
  metrics.deduped->Add(dups);
  metrics.batches->Add(1);
  acked_.fetch_add(static_cast<int64_t>(fresh.size()),
                   std::memory_order_relaxed);
  deduped_.fetch_add(dups, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  metrics.ack_seconds->Observe(MonotonicSeconds() -
                               batch->enqueue_monotonic_s);
  batch->handle.Respond(
      200, kJsonType,
      StrPrintf("{\"acked\":%lld,\"deduped\":%lld}\n",
                static_cast<long long>(fresh.size()),
                static_cast<long long>(dups)));
}

void IngestServer::ApplyRecord(const IngestRecord& record) {
  ClientState& state = clients_[record.client_id];
  state.last_seq = record.seq;
  state.last_active = ++activity_clock_;
  switch (record.kind) {
    case IngestRecord::Kind::kStartTrip: {
      state.trip_open = true;
      state.pending = sim::DeliveryTrip();
      state.pending.courier_id = record.courier_id;
      state.pending.start_time = record.start_time;
      state.pending.end_time = record.end_time;
      state.pending.waybills = record.waybills;
      state.pending.trajectory.courier_id = record.courier_id;
      state.points.clear();
      return;
    }
    case IngestRecord::Kind::kPoint: {
      state.points.push_back(TrajPoint{record.x, record.y, record.t});
      return;
    }
    case IngestRecord::Kind::kFinishTrip: {
      sim::DeliveryTrip trip = state.pending;
      trip.trajectory.points = state.points;
      ingestor_->ReplayTrip(trip);
      IngestMetrics::Get().trips->Add(1);
      trips_.fetch_add(1, std::memory_order_relaxed);
      state.trip_open = false;
      state.pending = sim::DeliveryTrip();
      state.points.clear();
      return;
    }
  }
}

bool IngestServer::RecoverState(std::string* error) {
  ingestor_ =
      std::make_unique<StreamIngestor>(options_.city, options_.candidates);
  clients_.clear();
  last_covered_segment_ = -1;

  const std::string snapshot_path = SnapshotPath(options_.wal.dir);
  if (std::filesystem::exists(snapshot_path)) {
    std::string open_error;
    auto reader = io::ArtifactReader::Open(
        snapshot_path, io::ArtifactKind::kIngestState, &open_error);
    if (!reader) {
      if (error != nullptr) {
        *error = "corrupt ingest snapshot: " + open_error;
      }
      return false;
    }
    const uint64_t covered = reader->ReadU64();
    sim::World world = io::DecodeWorldPayload(&*reader);
    const uint64_t num_clients = reader->ReadU64();
    std::vector<std::pair<std::string, ClientState>> snapshot_clients;
    for (uint64_t i = 0; reader->ok() && i < num_clients; ++i) {
      std::string client_id = reader->ReadString();
      ClientState state;
      state.last_seq = reader->ReadU64();
      state.trip_open = reader->ReadBool();
      if (state.trip_open) {
        state.pending.courier_id = reader->ReadI64();
        state.pending.start_time = reader->ReadDouble();
        state.pending.end_time = reader->ReadDouble();
        state.pending.trajectory.courier_id = state.pending.courier_id;
        const uint64_t num_waybills = reader->ReadU64();
        for (uint64_t j = 0; reader->ok() && j < num_waybills; ++j) {
          sim::Waybill wb;
          wb.id = reader->ReadI64();
          wb.address_id = reader->ReadI64();
          wb.receive_time = reader->ReadDouble();
          wb.recorded_delivery_time = reader->ReadDouble();
          wb.actual_delivery_time = reader->ReadDouble();
          state.pending.waybills.push_back(wb);
        }
        const uint64_t num_points = reader->ReadU64();
        for (uint64_t j = 0; reader->ok() && j < num_points; ++j) {
          TrajPoint p;
          p.x = reader->ReadDouble();
          p.y = reader->ReadDouble();
          p.t = reader->ReadDouble();
          state.points.push_back(p);
        }
      }
      snapshot_clients.emplace_back(std::move(client_id), std::move(state));
    }
    if (!reader->AtEnd()) {
      if (error != nullptr) *error = "malformed ingest snapshot payload";
      return false;
    }
    // Rebuild the ingestor by re-streaming the snapshot's trips — the
    // replay-equals-stream contract (stream_pipeline.h) makes this exact.
    for (const sim::DeliveryTrip& trip : world.trips) {
      ingestor_->ReplayTrip(trip);
      trips_.fetch_add(1, std::memory_order_relaxed);
    }
    for (auto& [client_id, state] : snapshot_clients) {
      clients_[client_id] = std::move(state);
    }
    last_covered_segment_ = static_cast<int64_t>(covered);
  }

  const IngestMetrics& metrics = IngestMetrics::Get();
  WalReplayStats stats;
  const int64_t covered = last_covered_segment_;
  int64_t replayed = 0;
  const bool ok = ReplayWal(
      options_.wal,
      [&](uint64_t segment, uint32_t /*type*/, const std::string& payload) {
        if (static_cast<int64_t>(segment) <= covered) return;
        IngestRecord record;
        std::string parse_error;
        if (!ParseIngestLine(payload, &record, &parse_error)) {
          // Checksum-valid but unparseable: count it, keep replaying —
          // the record never came from this writer.
          metrics.rejected_malformed->Add(1);
          return;
        }
        ApplyRecord(record);
        ++replayed;
      },
      &stats, error);
  if (!ok) return false;
  metrics.recovered->Add(replayed);
  recovered_.fetch_add(replayed, std::memory_order_relaxed);
  tracked_clients_.store(static_cast<int64_t>(clients_.size()),
                         std::memory_order_relaxed);
  return true;
}

bool IngestServer::WriteSnapshot(uint64_t covered_segment,
                                 std::string* error) {
  io::ArtifactWriter writer(io::ArtifactKind::kIngestState);
  writer.WriteU64(covered_segment);
  io::EncodeWorldPayload(ingestor_->world(), &writer);

  std::vector<std::string> client_ids;
  client_ids.reserve(clients_.size());
  for (const auto& [client_id, state] : clients_) {
    client_ids.push_back(client_id);
  }
  std::sort(client_ids.begin(), client_ids.end());
  writer.WriteU64(client_ids.size());
  for (const std::string& client_id : client_ids) {
    const ClientState& state = clients_.at(client_id);
    writer.WriteString(client_id);
    writer.WriteU64(state.last_seq);
    writer.WriteBool(state.trip_open);
    if (state.trip_open) {
      writer.WriteI64(state.pending.courier_id);
      writer.WriteDouble(state.pending.start_time);
      writer.WriteDouble(state.pending.end_time);
      writer.WriteU64(state.pending.waybills.size());
      for (const sim::Waybill& wb : state.pending.waybills) {
        writer.WriteI64(wb.id);
        writer.WriteI64(wb.address_id);
        writer.WriteDouble(wb.receive_time);
        writer.WriteDouble(wb.recorded_delivery_time);
        writer.WriteDouble(wb.actual_delivery_time);
      }
      writer.WriteU64(state.points.size());
      for (const TrajPoint& p : state.points) {
        writer.WriteDouble(p.x);
        writer.WriteDouble(p.y);
        writer.WriteDouble(p.t);
      }
    }
  }
  if (!writer.Finish(SnapshotPath(options_.wal.dir))) {
    if (error != nullptr) *error = "cannot write ingest snapshot";
    return false;
  }
  return true;
}

void IngestServer::MaybeSnapshot() {
  if (options_.snapshot_every_segments == 0) return;
  const int64_t sealed = static_cast<int64_t>(wal_->current_segment()) - 1;
  if (sealed < 0 ||
      sealed - last_covered_segment_ <
          static_cast<int64_t>(options_.snapshot_every_segments)) {
    return;
  }
  // Seal the partially-filled segment first: the snapshot state reflects
  // every record appended so far, so its covered range must end exactly on
  // a segment boundary — otherwise recovery would replay the current
  // segment's already-snapshotted records a second time.
  std::string error;
  if (!wal_->Rotate(&error)) {
    IngestMetrics::Get().snapshot_errors->Add(1);
    return;
  }
  const int64_t covered = static_cast<int64_t>(wal_->current_segment()) - 1;
  if (!WriteSnapshot(static_cast<uint64_t>(covered), &error)) {
    // Snapshotting is compaction, not correctness: keep serving (the WAL
    // still holds everything), surface the failure through the counter.
    IngestMetrics::Get().snapshot_errors->Add(1);
    return;
  }
  wal_->DeleteSegmentsThrough(static_cast<uint64_t>(covered));
  last_covered_segment_ = covered;
}

}  // namespace stream
}  // namespace dlinf
