#ifndef DLINF_STREAM_INGEST_SERVER_H_
#define DLINF_STREAM_INGEST_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "apps/http_conn.h"
#include "dlinfma/candidate_generation.h"
#include "sim/world.h"
#include "stream/stream_pipeline.h"
#include "stream/wal.h"
#include "traj/trajectory.h"

/// \file
/// Durable network ingestion front end (DESIGN.md §14): an HTTP/1.1
/// `POST /ingest` endpoint that appends every accepted record to the
/// write-ahead log of wal.h *before* acking, then feeds StreamIngestor —
/// so a SIGKILL'd node restarts, replays the WAL, and resumes with zero
/// acked-record loss.
///
/// ## Record protocol
///
/// A POST body carries one or more newline-separated records:
///
///   start_trip <client> <seq> <courier_id> <t0> <t1> [wb=<id>:<addr>:<recv>:<rec>:<act> ...]
///   point <client> <seq> <x> <y> <t>
///   finish_trip <client> <seq>
///
/// `<client>` names a producer; `<seq>` is its strictly monotonic record
/// counter starting at 1. Trips from different clients interleave freely;
/// within a client records follow the trip lifecycle (start → points →
/// finish). Each POST is a transaction:
///
///   200  every fresh record WAL-committed and applied; body reports
///        {"acked":n,"deduped":m}. A retried POST whose records were all
///        committed before is an exact no-op: 200 with acked=0.
///   400  malformed record, or a record whose wire form exceeds the WAL
///        record limit (`WalOptions::max_record_bytes`) — nothing applied.
///   409  sequence gap (seq beyond last+1) or trip-lifecycle violation —
///        nothing applied. Gaps are rejected, not buffered: the producer
///        owns ordering (`ingest.reorder` injects this branch).
///   429  bounded ingest queue full (shed *before* any work), or the
///        tracked-client cap is reached with every client mid-trip
///        (rejected, reason=client_cap). Both carry a Retry-After header.
///        Never blocks the event loop, never silent.
///   503  WAL append failed (wal.{write_fail,disk_full,torn_write,
///        fsync_fail}) — dedup state unchanged, the retry is safe.
///
/// ## Client cardinality
///
/// Per-client dedup state is bounded by `Options::max_clients`. Admitting a
/// new client_id past the cap evicts the longest-idle client with no open
/// trip (counter `stream.ingest.clients_evicted`); if every tracked client
/// is mid-trip the batch is rejected with 429. Eviction drops dedup state
/// only: a retry from an evicted client gets a typed 409 sequence-gap,
/// never a silent double-apply. The cap also bounds snapshot size — the
/// trust model is that producers do not cycle client_ids adversarially; if
/// they do, the cost is their own 409s, not server memory.
///
/// ## Durability & recovery
///
/// Fresh records of a batch are framed and handed to a single write(2)
/// before the 200 goes out (WalWriter's contract). On Start() the server
/// loads the newest state snapshot (if any), replays WAL segments past the
/// snapshot's covered index through the same apply path, truncates any torn
/// tail (WalWriter::Open), and only then begins serving. Snapshots are
/// written at segment-rotation boundaries every `snapshot_every_segments`
/// rotations; segments covered by a persisted snapshot are retired.
///
/// ## Threading
///
/// The epoll loop thread only parses, sheds, or enqueues; a single writer
/// thread owns the WAL, the StreamIngestor and the dedup table, applies
/// batches in arrival order (= WAL order, = recovery replay order — the
/// bit-identical anchor), and completes responses through ResponseHandle.
///
/// Counters: `stream.ingest.{received,acked,deduped,shed,recovered,
/// batches,trips_completed,clients_evicted}`, `stream.ingest.rejected#
/// reason=<malformed|gap|protocol|oversized|client_cap|wal>`, histogram
/// `stream.ingest.ack_seconds`, plus the `wal.*` family from wal.h.

namespace dlinf {
namespace stream {

/// One parsed ingest record (see the protocol grammar above).
struct IngestRecord {
  enum class Kind : uint32_t {
    kStartTrip = 1,
    kPoint = 2,
    kFinishTrip = 3,
  };

  Kind kind = Kind::kPoint;
  std::string client_id;
  uint64_t seq = 0;

  // kStartTrip fields.
  int64_t courier_id = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  std::vector<sim::Waybill> waybills;

  // kPoint fields.
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;
};

/// Parses one protocol line. False (reason in *error) on any syntax
/// problem; never throws, never aborts.
bool ParseIngestLine(const std::string& line, IngestRecord* record,
                     std::string* error);

/// Canonical wire form of a record. Doubles are printed with %.17g so
/// Format → Parse round-trips bit-exactly (the WAL stores these lines).
std::string FormatIngestLine(const IngestRecord& record);

class IngestServer {
 public:
  struct Options {
    int port = 0;  ///< 127.0.0.1 TCP port; 0 picks one (see port()).
    WalOptions wal;
    /// Static side of the world (station, communities, buildings,
    /// addresses, couriers); streamed trips land on top of it.
    sim::World city;
    dlinfma::CandidateGeneration::Options candidates;
    /// Records admitted to the ingest queue before POSTs shed with 429.
    uint64_t max_queue_records = 4096;
    int retry_after_s = 1;  ///< Retry-After header value on 429.
    /// Client_ids tracked for dedup before idle clients are evicted (and,
    /// when none is evictable, new-client batches rejected with 429).
    /// 0 disables the cap. Bounds dedup memory and snapshot size.
    uint64_t max_clients = 4096;
    /// Write a state snapshot (and retire covered segments) every this
    /// many segment rotations; 0 disables snapshots + retention.
    uint64_t snapshot_every_segments = 0;
    double idle_timeout_s = 30.0;
  };

  /// Monotonic server totals, all in records unless noted.
  struct Stats {
    int64_t received = 0;   ///< Parsed records admitted to the queue.
    int64_t acked = 0;      ///< Fresh records WAL-committed and applied.
    int64_t deduped = 0;    ///< Retried records acked as no-ops.
    int64_t shed = 0;       ///< Records turned away with 429 (queue full).
    int64_t rejected = 0;   ///< Records in 400/409/429-cap/503 batches.
    int64_t recovered = 0;  ///< Records replayed from snapshot+WAL at Start.
    int64_t batches = 0;    ///< POSTs fully processed (any status).
    int64_t trips = 0;      ///< finish_trip records applied (incl. recovery).
  };

  explicit IngestServer(Options options);
  ~IngestServer();
  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Recovers state from snapshot + WAL, opens the WAL for append, binds
  /// the port and starts serving. False with a typed reason on any failure
  /// (unreadable WAL dir, corrupt snapshot, port in use).
  bool Start(std::string* error = nullptr);

  /// Graceful: stops accepting, drains the queue, fsyncs + closes the WAL.
  void Stop();

  /// Simulates SIGKILL: serving and the writer halt immediately, queued
  /// batches are dropped unacked, the WAL fd is abandoned without fsync or
  /// truncation (bytes already written survive, a torn tail may remain).
  void CrashForTest();

  int port() const { return http_.port(); }
  bool running() const { return running_; }
  Stats stats() const;

  /// Blocks until the ingest queue is empty and the writer is idle (test
  /// sync point). False on timeout.
  bool WaitIdle(double timeout_s);

  /// The ingested state. Only valid while no writer thread runs (before
  /// Start or after Stop/CrashForTest) — the writer owns it otherwise.
  const StreamIngestor& ingestor() const { return *ingestor_; }

  /// Path of the state snapshot artifact inside the WAL dir.
  static std::string SnapshotPath(const std::string& wal_dir);

 private:
  struct ClientState {
    uint64_t last_seq = 0;
    bool trip_open = false;
    uint64_t last_active = 0;        ///< activity_clock_ at the last apply.
    sim::DeliveryTrip pending;       ///< Metadata while a trip is open.
    std::vector<TrajPoint> points;   ///< Buffered fixes of the open trip.
  };

  struct Batch {
    std::vector<IngestRecord> records;
    apps::HttpServer::ResponseHandle handle;
    double enqueue_monotonic_s = 0.0;
  };

  void HandleRequest(const apps::HttpRequest& request,
                     apps::HttpServer::ResponseHandle handle);
  void WriterLoop();
  void ProcessBatch(Batch* batch);
  /// Applies one WAL-committed record to the dedup table, pending-trip
  /// buffers and (on finish_trip) the ingestor. Shared by the live path
  /// and recovery replay.
  void ApplyRecord(const IngestRecord& record);
  bool RecoverState(std::string* error);
  bool WriteSnapshot(uint64_t covered_segment, std::string* error);
  void MaybeSnapshot();
  std::string StatsJson() const;

  Options options_;
  apps::HttpServer http_;
  std::unique_ptr<StreamIngestor> ingestor_;
  std::optional<WalWriter> wal_;
  std::unordered_map<std::string, ClientState> clients_;
  uint64_t activity_clock_ = 0;  ///< Writer-thread LRU tick for eviction.
  int64_t last_covered_segment_ = -1;  ///< Newest segment a snapshot covers.
  bool running_ = false;

  std::thread writer_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<Batch> queue_;
  bool writer_stop_ = false;       ///< Drain, then exit (Stop).
  bool writer_crashed_ = false;    ///< Exit now, drop the queue (crash).
  bool writer_busy_ = false;
  std::atomic<int64_t> queue_records_{0};

  // Stats mirrors (writer/loop threads write, any thread reads).
  std::atomic<int64_t> received_{0};
  std::atomic<int64_t> acked_{0};
  std::atomic<int64_t> deduped_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> recovered_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> trips_{0};
  std::atomic<int64_t> tracked_clients_{0};
};

}  // namespace stream
}  // namespace dlinf

#endif  // DLINF_STREAM_INGEST_SERVER_H_
