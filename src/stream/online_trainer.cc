#include "stream/online_trainer.h"

#include <filesystem>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "fault/fault.h"
#include "io/bundle.h"
#include "io/checkpoint.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"

namespace dlinf {
namespace stream {

bool PublishBundle(const sim::World& world, const dlinfma::Dataset& data,
                   const dlinfma::SampleSet& samples,
                   const dlinfma::DlInfMaMethod& method,
                   const std::string& publish_dir, std::string* error) {
  obs::Span span("stream_publish");
  obs::Counter* failures =
      obs::MetricsRegistry::Global().GetCounter("stream.publish.failures");
  auto fail = [&](const std::string& why) {
    failures->Add(1);
    if (error != nullptr) *error = why;
    obs::LogLine(obs::LogSeverity::kWarn, "stream.publish")
        .Str("dir", publish_dir)
        .Str("error", why);
    return false;
  };

  if (fault::Hit("stream.publish.fail")) {
    return fail("injected publish failure (stream.publish.fail)");
  }

  // Stage the whole bundle beside the destination so the renames below are
  // same-filesystem (atomic) moves.
  const std::string staging = publish_dir + ".staging";
  std::error_code ec;
  std::filesystem::remove_all(staging, ec);
  std::string save_error;
  if (!io::SaveBundle(staging, world, data, samples, method, &save_error)) {
    std::filesystem::remove_all(staging, ec);
    return fail("staging save failed: " + save_error);
  }
  std::filesystem::create_directories(publish_dir, ec);
  if (ec) {
    std::filesystem::remove_all(staging, ec);
    return fail("cannot create publish dir " + publish_dir);
  }
  // Artifacts first, manifest last: BundleManager watches the manifest
  // stamp, so a watcher that fires mid-publish stages a consistent bundle.
  for (const char* name :
       {"world.art", "candidates.art", "samples.art", "model.art",
        "manifest.art"}) {
    std::filesystem::rename(staging + "/" + name, publish_dir + "/" + name,
                            ec);
    if (ec) {
      std::filesystem::remove_all(staging, ec);
      return fail(std::string("cannot move ") + name + " into " + publish_dir);
    }
  }
  std::filesystem::remove_all(staging, ec);
  obs::MetricsRegistry::Global().GetCounter("stream.publish.success")->Add(1);
  obs::LogLine(obs::LogSeverity::kInfo, "stream.publish")
      .Str("dir", publish_dir)
      .Int("addresses", static_cast<int64_t>(world.addresses.size()))
      .Int("candidates",
           static_cast<int64_t>(data.gen->candidates().size()));
  return true;
}

OnlineTrainer::RoundResult OnlineTrainer::Retrain(
    const sim::World& world, dlinfma::CandidateGeneration generation,
    const dlinfma::TrainCheckpoint* resume) {
  obs::Span span("stream_retrain");
  RoundResult result;
  result.round = rounds_ + 1;

  // Wrap the snapshot in a Dataset: same split rule as BuildDataset, no
  // re-mining.
  dlinfma::Dataset data;
  data.world = &world;
  data.gen = std::make_unique<dlinfma::CandidateGeneration>(
      std::move(generation));
  for (int64_t id : world.DeliveredAddressIds()) {
    switch (world.address(id).split) {
      case sim::Split::kTrain:
        data.train_ids.push_back(id);
        break;
      case sim::Split::kVal:
        data.val_ids.push_back(id);
        break;
      case sim::Split::kTest:
        data.test_ids.push_back(id);
        break;
    }
  }
  const dlinfma::SampleSet samples = dlinfma::ExtractSamples(data, {});
  result.train_samples = samples.train.size();
  result.val_samples = samples.val.size();
  if (samples.train.empty() || samples.val.empty()) {
    result.skip_reason = samples.train.empty()
                             ? "no labeled train samples yet"
                             : "no labeled val samples yet";
    obs::MetricsRegistry::Global()
        .GetCounter("stream.retrain.skipped")
        ->Add(1);
    obs::LogLine(obs::LogSeverity::kInfo, "stream.retrain")
        .Int("round", result.round)
        .Str("skipped", result.skip_reason);
    return result;
  }

  dlinfma::TrainConfig config = options_.train;
  if (!options_.checkpoint_path.empty() &&
      options_.checkpoint_every_epochs > 0) {
    config.checkpoint_every_epochs = options_.checkpoint_every_epochs;
    const std::string path = options_.checkpoint_path;
    config.checkpoint_sink = [path](const dlinfma::TrainCheckpoint& ck) {
      return io::SaveCheckpointArtifact(ck, path);
    };
  }
  config.resume = resume;

  Rng rng(config.seed);
  dlinfma::LocMatcher model(options_.model, &rng);
  std::vector<nn::Tensor> params = model.Parameters();
  if (options_.warm_start && !warm_params_.empty() && resume == nullptr) {
    // Carry the previous round's parameters; the fresh optimizer/schedule
    // state is intentional (see class comment).
    CHECK(nn::DecodeParameters(warm_params_, &params))
        << "warm-start blob does not match the model configuration";
    obs::MetricsRegistry::Global()
        .GetCounter("stream.retrain.warm_starts")
        ->Add(1);
  }
  result.train =
      dlinfma::TrainLocMatcher(&model, samples.train, samples.val, config);
  warm_params_ = nn::EncodeParameters(model.Parameters());

  method_ = std::make_unique<dlinfma::DlInfMaMethod>(
      "DLInfMA-online", options_.model, options_.train);
  CHECK(method_->RestoreModel(warm_params_));
  ++rounds_;
  result.trained = true;
  obs::MetricsRegistry::Global().GetCounter("stream.retrain.rounds")->Add(1);
  obs::LogLine(obs::LogSeverity::kInfo, "stream.retrain")
      .Int("round", result.round)
      .Int("epochs", result.train.epochs_run)
      .Num("train_loss", result.train.final_train_loss)
      .Num("best_val_loss", result.train.best_val_loss)
      .Int("train_samples", static_cast<int64_t>(result.train_samples))
      .Int("val_samples", static_cast<int64_t>(result.val_samples));

  if (!options_.publish_dir.empty()) {
    result.published = PublishBundle(world, data, samples, *method_,
                                     options_.publish_dir,
                                     &result.publish_error);
  }
  return result;
}

}  // namespace stream
}  // namespace dlinf
