#ifndef DLINF_STREAM_ONLINE_TRAINER_H_
#define DLINF_STREAM_ONLINE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "dlinfma/candidate_generation.h"
#include "dlinfma/dlinfma_method.h"
#include "dlinfma/inferrer.h"
#include "dlinfma/locmatcher.h"
#include "dlinfma/trainer.h"
#include "sim/world.h"

namespace dlinf {
namespace stream {

/// Publishes a trained pipeline as a DLAB bundle into `publish_dir` using
/// the hot-reload-safe protocol (DESIGN.md §13): the bundle is written into
/// a staging directory first, then its artifacts are renamed into place with
/// the manifest last — the exact order apps::BundleManager keys its watch
/// on, so a watcher never stages a torn push. The `stream.publish.fail`
/// fault point fails the publication deterministically; outcomes feed the
/// `stream.publish.{success,failures}` counters.
bool PublishBundle(const sim::World& world, const dlinfma::Dataset& data,
                   const dlinfma::SampleSet& samples,
                   const dlinfma::DlInfMaMethod& method,
                   const std::string& publish_dir, std::string* error);

/// Periodic incremental retraining over accumulated streamed samples
/// (DESIGN.md §13). Each Retrain round takes a CandidateIndexUpdater
/// snapshot, extracts features, trains a LocMatcher and (optionally)
/// publishes the resulting bundle:
///
///  - **Warm start**: rounds after the first initialize the model from the
///    previous round's parameters (optimizer state restarts fresh — the
///    sample set changed, so the PR 4 full-state resume contract does not
///    apply across rounds).
///  - **Crash safety within a round**: with a checkpoint path configured,
///    the PR 4 machinery (trainer checkpoint_sink -> io CKPT artifact)
///    runs inside every round; a round killed mid-training resumes
///    bit-identical via `resume` (valid because the round's sample set is
///    fixed), losing no accumulated samples.
///
/// Rounds with an empty train or validation split (early in a stream, the
/// spatial splits may not all be populated yet) are skipped and counted on
/// `stream.retrain.skipped`; completed rounds feed `stream.retrain.rounds`.
class OnlineTrainer {
 public:
  struct Options {
    dlinfma::LocMatcherConfig model;
    dlinfma::TrainConfig train;  ///< Per-round budget (seed fixed per round).
    bool warm_start = true;
    /// Non-empty: write a CKPT artifact here every
    /// `checkpoint_every_epochs` epochs during each round.
    std::string checkpoint_path;
    int checkpoint_every_epochs = 0;
    /// Non-empty: publish a bundle after every completed round.
    std::string publish_dir;
  };

  struct RoundResult {
    int round = 0;        ///< 1-based index of this retrain round.
    bool trained = false; ///< False when the round was skipped.
    std::string skip_reason;
    dlinfma::TrainResult train;
    size_t train_samples = 0;
    size_t val_samples = 0;
    bool published = false;
    std::string publish_error;
  };

  explicit OnlineTrainer(const Options& options) : options_(options) {}

  /// Runs one retrain round over a candidate snapshot. `world` must contain
  /// the streamed trips backing the snapshot and outlives the call. Pass
  /// `resume` to continue a round that was killed mid-training (same
  /// accumulated snapshot; the trainer CHECKs the sample-count match).
  RoundResult Retrain(const sim::World& world,
                      dlinfma::CandidateGeneration generation,
                      const dlinfma::TrainCheckpoint* resume = nullptr);

  /// The most recently trained method; nullptr before the first completed
  /// round. Valid until the next Retrain call.
  const dlinfma::DlInfMaMethod* method() const { return method_.get(); }
  dlinfma::DlInfMaMethod* method() { return method_.get(); }

  int rounds_completed() const { return rounds_; }

 private:
  Options options_;
  int rounds_ = 0;
  std::string warm_params_;  ///< EncodeParameters blob of the last round.
  std::unique_ptr<dlinfma::DlInfMaMethod> method_;
};

}  // namespace stream
}  // namespace dlinf

#endif  // DLINF_STREAM_ONLINE_TRAINER_H_
