#include "stream/stream_pipeline.h"

#include <utility>

#include "common/check.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"

namespace dlinf {
namespace stream {

StreamIngestor::StreamIngestor(
    const sim::World& city,
    const dlinfma::CandidateGeneration::Options& options)
    : options_(options),
      updater_(options),
      filter_(options.noise_filter),
      detector_(options.stay_point) {
  // Static side only; trips arrive over the stream.
  world_.name = city.name;
  world_.station = city.station;
  world_.communities = city.communities;
  world_.buildings = city.buildings;
  world_.addresses = city.addresses;
  world_.couriers = city.couriers;
}

void StreamIngestor::StartTrip(const sim::DeliveryTrip& trip) {
  CHECK(!trip_open_) << "finish the previous trip before starting another";
  trip_open_ = true;
  current_ = sim::DeliveryTrip{};
  current_.courier_id = trip.courier_id;
  current_.start_time = trip.start_time;
  current_.end_time = trip.end_time;
  current_.waybills = trip.waybills;
  current_.planned_stays = trip.planned_stays;
  current_.trajectory.courier_id = trip.courier_id;
  current_stays_.clear();
  filter_.Reset();
  detector_.Reset(trip.courier_id);
}

size_t StreamIngestor::Ingest(const TrajPoint& point) {
  current_.trajectory.points.push_back(point);
  obs::MetricsRegistry::Global().GetCounter("stream.ingest.points")->Add(1);
  if (!filter_.Push(point)) return 0;
  return detector_.Push(point, &current_stays_);
}

size_t StreamIngestor::PushPoint(const TrajPoint& point) {
  CHECK(trip_open_) << "PushPoint without an open trip";
  if (const auto fire = fault::Hit("stream.ingest.latency")) {
    fault::SleepForMs(fire->latency_ms);
  }
  if (fault::Hit("stream.ingest.drop_point")) {
    obs::MetricsRegistry::Global()
        .GetCounter("stream.ingest.dropped_points")
        ->Add(1);
    return 0;
  }
  size_t emitted = Ingest(point);
  if (fault::Hit("stream.ingest.duplicate_point")) {
    obs::MetricsRegistry::Global()
        .GetCounter("stream.ingest.duplicated_points")
        ->Add(1);
    emitted += Ingest(point);
  }
  return emitted;
}

size_t StreamIngestor::FinishTrip() {
  CHECK(trip_open_) << "FinishTrip without an open trip";
  obs::Span span("stream_ingest_trip");
  detector_.Flush(&current_stays_);
  current_.id = updater_.num_trips();
  for (StayPoint& sp : current_stays_) sp.trip_id = current_.id;
  updater_.AddTrip(world_, current_, current_stays_);
  const size_t stays = current_stays_.size();
  world_.trips.push_back(std::move(current_));
  trip_open_ = false;

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("stream.ingest.trips")->Add(1);
  metrics.GetCounter("stream.ingest.stay_points")
      ->Add(static_cast<int64_t>(stays));
  metrics.GetGauge("stream.clusters")
      ->Set(static_cast<double>(updater_.num_clusters()));
  obs::LogLine(obs::LogSeverity::kInfo, "stream.trip")
      .Int("trip", world_.trips.back().id)
      .Int("points",
           static_cast<int64_t>(world_.trips.back().trajectory.size()))
      .Int("stay_points", static_cast<int64_t>(stays))
      .Int("clusters", static_cast<int64_t>(updater_.num_clusters()));
  return stays;
}

size_t StreamIngestor::ReplayTrip(const sim::DeliveryTrip& trip) {
  StartTrip(trip);
  for (const TrajPoint& point : trip.trajectory.points) {
    PushPoint(point);
  }
  return FinishTrip();
}

}  // namespace stream
}  // namespace dlinf
