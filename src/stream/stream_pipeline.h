#ifndef DLINF_STREAM_STREAM_PIPELINE_H_
#define DLINF_STREAM_STREAM_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "dlinfma/candidate_generation.h"
#include "sim/world.h"
#include "stream/candidate_updater.h"
#include "stream/streaming_stay_point.h"
#include "traj/trajectory.h"

namespace dlinf {
namespace stream {

/// Point-at-a-time ingestion front end (DESIGN.md §13): glues the streaming
/// noise filter + stay-point detector to the incremental candidate index and
/// accumulates an ingested sim::World that the batch pipeline can replay.
///
/// Lifecycle per trip: StartTrip (metadata: courier, waybills, window) →
/// PushPoint for each GPS fix in time order → FinishTrip (flushes the
/// detector, assigns the next dense trip id and folds the trip into the
/// candidate index). ReplayTrip drives that loop over a recorded trip.
///
/// The ingested world holds exactly the points that survived ingestion
/// faults — a batch CandidateGeneration::Build over world() (faults
/// disarmed) therefore mines the *identical* stay-point list, which is the
/// anchor for the streamed-vs-batch equivalence suite.
///
/// Fault points (armed via fault::ScopedFaultPlan):
///  - `stream.ingest.drop_point`       drops the incoming fix,
///  - `stream.ingest.duplicate_point`  delivers the fix twice,
///  - `stream.ingest.latency`          sleeps the configured latency.
/// Counters: stream.ingest.{points,dropped_points,duplicated_points,trips,
/// stay_points}; gauge stream.clusters tracks the live candidate pool.
class StreamIngestor {
 public:
  /// `city` supplies the static side of the world (station, communities,
  /// buildings, addresses, couriers — everything except trips, which arrive
  /// over the stream).
  StreamIngestor(const sim::World& city,
                 const dlinfma::CandidateGeneration::Options& options);

  /// Opens a trip. `trip`'s metadata (courier, window, waybills) is copied;
  /// its recorded trajectory is ignored — points arrive via PushPoint. The
  /// previous trip must have been finished.
  void StartTrip(const sim::DeliveryTrip& trip);

  /// Feeds one GPS fix to the open trip. Returns the number of stay points
  /// finalized by this fix.
  size_t PushPoint(const TrajPoint& point);

  /// Closes the open trip: flushes the detector, assigns the next dense
  /// trip id, updates the candidate index and appends the trip (with its
  /// ingested trajectory) to world(). Returns the trip's stay-point count.
  size_t FinishTrip();

  /// StartTrip + PushPoint(each recorded fix) + FinishTrip.
  size_t ReplayTrip(const sim::DeliveryTrip& trip);

  /// The world ingested so far: static city + completed streamed trips.
  const sim::World& world() const { return world_; }

  const CandidateIndexUpdater& updater() const { return updater_; }

  /// Batch-compatible snapshot of the mined state (see CandidateIndexUpdater).
  dlinfma::CandidateGeneration Snapshot() const { return updater_.Snapshot(); }

  int64_t num_trips() const { return updater_.num_trips(); }
  bool trip_open() const { return trip_open_; }

 private:
  /// Runs one delivered (post-fault) fix through filter + detector.
  size_t Ingest(const TrajPoint& point);

  dlinfma::CandidateGeneration::Options options_;
  sim::World world_;
  CandidateIndexUpdater updater_;
  StreamingNoiseFilter filter_;
  StreamingStayPointDetector detector_;

  bool trip_open_ = false;
  sim::DeliveryTrip current_;
  std::vector<StayPoint> current_stays_;
};

}  // namespace stream
}  // namespace dlinf

#endif  // DLINF_STREAM_STREAM_PIPELINE_H_
