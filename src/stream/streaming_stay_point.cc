#include "stream/streaming_stay_point.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geo/point.h"

namespace dlinf {
namespace stream {

StreamingNoiseFilter::StreamingNoiseFilter(const NoiseFilterOptions& options)
    : options_(options) {
  CHECK_GT(options_.max_speed_mps, 0.0);
}

bool StreamingNoiseFilter::Push(const TrajPoint& p) {
  // Mirror of the batch loop body in traj/noise_filter.cc: the batch pass
  // only ever consults output.points.back() and the drop counter, which is
  // exactly the state persisted here.
  if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.t)) {
    return false;
  }
  if (!has_last_) {
    has_last_ = true;
    last_kept_ = p;
    return true;
  }
  const double dt = p.t - last_kept_.t;
  if (dt <= 0) return false;  // Out-of-order or duplicate timestamp.
  const double speed = Distance(p.position(), last_kept_.position()) / dt;
  if (speed > options_.max_speed_mps &&
      consecutive_drops_ < options_.max_consecutive_drops) {
    ++consecutive_drops_;
    return false;
  }
  consecutive_drops_ = 0;
  last_kept_ = p;
  return true;
}

void StreamingNoiseFilter::Reset() {
  has_last_ = false;
  consecutive_drops_ = 0;
}

StreamingStayPointDetector::StreamingStayPointDetector(
    const StayPointOptions& options, int64_t courier_id)
    : options_(options), courier_id_(courier_id) {
  CHECK_GT(options_.distance_threshold_m, 0.0);
  CHECK_GT(options_.time_threshold_s, 0.0);
}

StayPoint StreamingStayPointDetector::Emit(size_t count) const {
  // Same accumulator types and index-order summation as the batch
  // MakeStayPoint, so the centroid bits match exactly.
  double sx = 0.0;
  double sy = 0.0;
  for (size_t k = 0; k < count; ++k) {
    sx += buffer_[k].x;
    sy += buffer_[k].y;
  }
  const double n = static_cast<double>(count);
  StayPoint sp;
  sp.location = Point{sx / n, sy / n};
  sp.start_time = buffer_.front().t;
  sp.end_time = buffer_[count - 1].t;
  sp.courier_id = courier_id_;
  return sp;
}

size_t StreamingStayPointDetector::Drain(bool end_of_stream,
                                         std::vector<StayPoint>* out) {
  size_t emitted = 0;
  while (!buffer_.empty()) {
    // Batch inner loop: advance j while p_j stays within D_max of the
    // anchor. scan_ is j relative to the anchor at buffer_[0].
    while (scan_ < buffer_.size() &&
           Distance(buffer_.front().position(), buffer_[scan_].position()) <=
               options_.distance_threshold_m) {
      ++scan_;
    }
    if (scan_ == buffer_.size() && !end_of_stream) {
      // The window is still open: the batch loop would read p_j next, and
      // that point has not arrived yet. Suspend with the cursor intact.
      return emitted;
    }
    // Window [anchor, scan_) is closed — by a too-far point or by
    // end-of-stream (the batch j == n case).
    if (buffer_[scan_ - 1].t - buffer_.front().t >= options_.time_threshold_s) {
      out->push_back(Emit(scan_));
      ++emitted;
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<ptrdiff_t>(scan_));
      scan_ = 1;  // Batch restart: i = j, j = i + 1.
    } else {
      buffer_.pop_front();
      scan_ = 1;  // Batch anchor advance: ++i, j = i + 1.
    }
  }
  return emitted;
}

size_t StreamingStayPointDetector::Push(const TrajPoint& p,
                                        std::vector<StayPoint>* out) {
  buffer_.push_back(p);
  max_buffered_ = std::max(max_buffered_, buffer_.size());
  return Drain(/*end_of_stream=*/false, out);
}

size_t StreamingStayPointDetector::Flush(std::vector<StayPoint>* out) {
  const size_t emitted = Drain(/*end_of_stream=*/true, out);
  scan_ = 1;
  return emitted;
}

void StreamingStayPointDetector::Reset(int64_t courier_id) {
  courier_id_ = courier_id;
  buffer_.clear();
  scan_ = 1;
}

}  // namespace stream
}  // namespace dlinf
