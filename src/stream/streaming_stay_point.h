#ifndef DLINF_STREAM_STREAMING_STAY_POINT_H_
#define DLINF_STREAM_STREAMING_STAY_POINT_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "traj/noise_filter.h"
#include "traj/stay_point.h"
#include "traj/trajectory.h"

/// \file
/// Point-at-a-time ports of the batch trajectory-cleaning stages
/// (DESIGN.md §13). Both are *provably equivalent* to their batch
/// counterparts on any replayed point sequence:
///
///  - StreamingNoiseFilter mirrors traj::FilterNoise, whose batch loop is
///    already a single forward pass over (last kept point, consecutive-drop
///    counter); the streaming class simply persists that state between
///    Push() calls, so the kept subsequence is identical by construction.
///
///  - StreamingStayPointDetector mirrors traj::DetectStayPoints (the
///    anchor-scan algorithm of Li et al. [7]). The batch loop is a nested
///    scan: anchor i, advance j while Distance(p_i, p_j) <= D_max; on the
///    window break, emit [i, j) if it spans >= T_min and restart at j, else
///    advance the anchor by one. The only data the algorithm ever reads
///    again are the points from the current anchor onward, so the streaming
///    port keeps exactly that suffix in a deque and suspends the scan at
///    "j == end of input" until the next point arrives (or Flush() declares
///    end-of-stream, which is precisely the batch loop's j == n case).
///    Centroids are summed in the same index order with the same double
///    accumulators, so emitted stay points are bit-identical — enforced on
///    >= 1000 randomized trajectories by tests/stream_test.cc.
///
/// Memory is bounded by the current open window (the points within D_max of
/// the live anchor, plus the one that broke the window) — the dwell length,
/// not the trajectory length.

namespace dlinf {
namespace stream {

/// Streaming twin of traj::FilterNoise: feed raw points in arrival order;
/// Push() returns true exactly when the batch filter would have kept the
/// point (same speed gate, same consecutive-drop cap, same finiteness and
/// chronology rules).
class StreamingNoiseFilter {
 public:
  explicit StreamingNoiseFilter(const NoiseFilterOptions& options = {});

  /// True when `p` survives the filter (forward it downstream).
  bool Push(const TrajPoint& p);

  /// Forgets all state (start of a new trajectory).
  void Reset();

 private:
  NoiseFilterOptions options_;
  bool has_last_ = false;
  TrajPoint last_kept_{};
  int consecutive_drops_ = 0;
};

/// Streaming twin of traj::DetectStayPoints. Feed (noise-filtered) points in
/// chronological order; finalized stay points are appended to the caller's
/// vector as soon as the algorithm can prove them complete. Call Flush() at
/// end-of-stream to finalize the tail exactly as the batch detector does at
/// j == n.
class StreamingStayPointDetector {
 public:
  explicit StreamingStayPointDetector(const StayPointOptions& options = {},
                                      int64_t courier_id = -1);

  /// Ingests one point; appends any stay points this point finalizes.
  /// Returns the number of stay points emitted (almost always 0 or 1).
  size_t Push(const TrajPoint& p, std::vector<StayPoint>* out);

  /// End-of-stream: finalizes the buffered tail. After Flush the buffer is
  /// empty and the detector is ready for a new trajectory.
  size_t Flush(std::vector<StayPoint>* out);

  /// Drops buffered state and retags future emissions with `courier_id`.
  void Reset(int64_t courier_id);

  /// Points currently buffered (the open anchor window).
  size_t buffered_points() const { return buffer_.size(); }

  /// High-water mark of the buffer — the bounded-memory claim, observable.
  size_t max_buffered_points() const { return max_buffered_; }

 private:
  /// Runs the batch loop as far as the buffered data allows. With
  /// `end_of_stream` the buffer end is treated as the batch algorithm's n.
  size_t Drain(bool end_of_stream, std::vector<StayPoint>* out);

  /// Emits the window [0, count) of the buffer — the exact arithmetic of
  /// the batch MakeStayPoint (index-order double summation).
  StayPoint Emit(size_t count) const;

  StayPointOptions options_;
  int64_t courier_id_;
  std::deque<TrajPoint> buffer_;  ///< Points from the current anchor on.
  /// The batch scan cursor j, relative to the anchor at buffer_[0]. All
  /// points [0, scan_) are proven within D_max of the anchor; invariant
  /// 1 <= scan_ <= buffer_.size() while the buffer is non-empty.
  size_t scan_ = 1;
  size_t max_buffered_ = 0;
};

}  // namespace stream
}  // namespace dlinf

#endif  // DLINF_STREAM_STREAMING_STAY_POINT_H_
