#include "stream/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace dlinf {
namespace stream {
namespace {

namespace fs = std::filesystem;

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CountError(const char* kind) {
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("wal.errors#kind=") + kind)
      ->Add(1);
}

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Sorted (index -> path, size) map of the segment files in `dir`.
std::map<uint64_t, std::pair<std::string, uint64_t>> ListSegments(
    const std::string& dir) {
  std::map<uint64_t, std::pair<std::string, uint64_t>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t index = 0;
    const std::string name = entry.path().filename().string();
    if (!io::ParseWalSegmentFileName(name, &index)) continue;
    std::error_code size_ec;
    const uint64_t size = entry.is_regular_file()
                              ? static_cast<uint64_t>(entry.file_size(size_ec))
                              : 0;
    segments[index] = {entry.path().string(), size};
  }
  return segments;
}

bool ReadFileBytes(const std::string& path, std::string* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return SetError(error, "cannot open " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  if (in.bad()) return SetError(error, "read error in " + path);
  return true;
}

bool WriteAllBytes(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool ReplayWal(const WalOptions& options, const WalReplayFn& fn,
               WalReplayStats* stats, std::string* error) {
  WalReplayStats local;
  WalReplayStats* out = stats != nullptr ? stats : &local;
  *out = WalReplayStats();

  const auto segments = ListSegments(options.dir);
  if (segments.empty()) return true;
  out->any_segment = true;

  // Walk ascending from the lowest index present (retention may have
  // deleted a prefix); a numbering gap ends the replayable log.
  uint64_t expected = segments.begin()->first;
  bool stopped = false;
  for (const auto& [index, file] : segments) {
    if (stopped || index != expected) {
      out->truncated_bytes += file.second;
      stopped = true;
      continue;
    }
    ++expected;

    std::string bytes;
    if (!ReadFileBytes(file.first, &bytes, error)) return false;
    ++out->segments;
    out->stop_segment = index;
    out->stop_offset = 0;

    size_t offset = 0;
    uint64_t header_index = 0;
    io::WalStatus status =
        io::DecodeWalSegmentHeader(bytes, &offset, &header_index);
    if (status == io::WalStatus::kOk && header_index != index) {
      status = io::WalStatus::kBadMagic;  // Header belongs to another file.
    }
    if (status != io::WalStatus::kOk) {
      out->tail_status = status;
      out->truncated_bytes += bytes.size();
      stopped = true;
      continue;
    }

    io::WalFrame frame;
    for (;;) {
      status = io::DecodeWalFrame(bytes, &offset, options.max_record_bytes,
                                  &frame);
      if (status != io::WalStatus::kOk) break;
      ++out->frames;
      if (fn) fn(index, frame.type, frame.payload);
    }
    out->stop_offset = offset;
    out->bytes += offset;
    out->tail_status = status;
    if (status != io::WalStatus::kEof) {
      // Torn or corrupt tail: everything past the stop point — in this
      // segment and in any later one — is unreachable.
      out->truncated_bytes += bytes.size() - offset;
      stopped = true;
    }
  }
  return true;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) Close();
}

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) Close();
  options_ = std::move(other.options_);
  fd_ = other.fd_;
  segment_index_ = other.segment_index_;
  segment_size_ = other.segment_size_;
  appends_ = other.appends_;
  appends_since_fsync_ = other.appends_since_fsync_;
  last_fsync_monotonic_s_ = other.last_fsync_monotonic_s_;
  dead_ = other.dead_;
  other.fd_ = -1;
  other.dead_ = true;
  return *this;
}

std::optional<WalWriter> WalWriter::Open(const WalOptions& options,
                                         std::string* error) {
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    SetError(error, "cannot create WAL dir " + options.dir + ": " +
                        ec.message());
    return std::nullopt;
  }

  // Find the valid prefix with the same scan replay uses, so appends resume
  // exactly where a recovery replay stopped delivering records.
  WalReplayStats stats;
  if (!ReplayWal(options, nullptr, &stats, error)) return std::nullopt;

  // Only torn-tail statuses (kBadCrc/kTruncated/kBadMagic) are recoverable
  // by truncation (wal_frame.h). kBadVersion means a compatible reader —
  // e.g. the newer binary that wrote the segment — could still decode
  // everything past the stop point; kOversized likewise can mean a writer
  // configured with a larger max_record_bytes. Truncating would destroy
  // that data, so refuse and leave the files untouched for the operator.
  if (stats.tail_status == io::WalStatus::kBadVersion ||
      stats.tail_status == io::WalStatus::kOversized) {
    CountError("open");
    SetError(error,
             StrPrintf("refusing to open WAL: segment %llu stops with "
                       "status '%s' at offset %llu, which truncation cannot "
                       "recover (version skew or max_record_bytes mismatch?)",
                       static_cast<unsigned long long>(stats.stop_segment),
                       io::WalStatusName(stats.tail_status),
                       static_cast<unsigned long long>(stats.stop_offset)));
    return std::nullopt;
  }

  WalWriter writer;
  writer.options_ = options;
  writer.last_fsync_monotonic_s_ = MonotonicSeconds();

  if (!stats.any_segment) {
    if (!writer.OpenSegment(0, false, 0, error)) return std::nullopt;
    writer.dead_ = false;
    return writer;
  }

  // Drop post-corruption segments: replay never delivered their records.
  const auto segments = ListSegments(options.dir);
  for (const auto& [index, file] : segments) {
    if (index > stats.stop_segment) fs::remove(file.first, ec);
  }

  if (stats.truncated_bytes > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("wal.truncated_bytes")
        ->Add(static_cast<int64_t>(stats.truncated_bytes));
  }

  if (stats.stop_offset < io::kWalSegmentHeaderSize) {
    // The tail segment's own header is unusable — rebuild it in place.
    if (!writer.OpenSegment(stats.stop_segment, true, 0, error)) {
      return std::nullopt;
    }
  } else if (!writer.OpenSegment(stats.stop_segment, true, stats.stop_offset,
                                 error)) {
    return std::nullopt;
  }
  writer.dead_ = false;
  return writer;
}

bool WalWriter::OpenSegment(uint64_t index, bool truncate_to, uint64_t size,
                            std::string* error) {
  const std::string path =
      options_.dir + "/" + io::WalSegmentFileName(index);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return SetError(error,
                    "cannot open " + path + ": " + std::strerror(errno));
  }
  if (truncate_to && ::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const int err = errno;
    ::close(fd);
    return SetError(error,
                    "cannot truncate " + path + ": " + std::strerror(err));
  }
  if (fd_ >= 0) {
    // Plain close, not Close(): rotation retires the old segment fd without
    // killing the writer (the pre-rotation fsync already ran).
    ::close(fd_);
  }
  fd_ = fd;
  segment_index_ = index;
  segment_size_ = size;
  if (size == 0) {
    std::string header;
    io::AppendWalSegmentHeader(index, &header);
    if (!WriteAllBytes(fd_, header.data(), header.size())) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      return SetError(error, "cannot write segment header to " + path + ": " +
                                 std::strerror(err));
    }
    segment_size_ = header.size();
  } else if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    return SetError(error,
                    "cannot seek in " + path + ": " + std::strerror(err));
  }
  return true;
}

bool WalWriter::RotateIfNeeded(uint64_t incoming_bytes, std::string* error) {
  if (segment_size_ <= io::kWalSegmentHeaderSize) return true;
  if (segment_size_ + incoming_bytes <= options_.segment_bytes) return true;
  return Rotate(error);
}

bool WalWriter::Rotate(std::string* error) {
  if (dead_) return SetError(error, "wal writer is dead (crashed or closed)");
  if (segment_size_ <= io::kWalSegmentHeaderSize) return true;
  if (::fsync(fd_) != 0) {
    CountError("fsync");
    return SetError(error, std::string("fsync before rotation failed: ") +
                               std::strerror(errno));
  }
  if (!OpenSegment(segment_index_ + 1, false, 0, error)) {
    dead_ = true;
    return false;
  }
  appends_since_fsync_ = 0;
  last_fsync_monotonic_s_ = MonotonicSeconds();
  obs::MetricsRegistry::Global().GetCounter("wal.rotations")->Add(1);
  return true;
}

bool WalWriter::Append(uint32_t type, const std::string& payload,
                       std::string* error) {
  std::string encoded;
  io::AppendWalFrame(type, payload, &encoded);
  return AppendFrames(encoded, 1, error);
}

bool WalWriter::AppendFrames(const std::string& encoded, uint64_t frame_count,
                             std::string* error) {
  if (dead_) return SetError(error, "wal writer is dead (crashed or closed)");
  // Every frame must individually honour max_record_bytes: recovery decodes
  // with the same limit, and a frame it refuses to read would become the
  // truncation point, silently discarding every acked frame after it.
  size_t offset = 0;
  uint64_t frames_seen = 0;
  while (encoded.size() - offset >= io::kWalFrameHeaderSize) {
    uint32_t payload_size = 0;
    std::memcpy(&payload_size, encoded.data() + offset + 4,
                sizeof(payload_size));
    if (payload_size > options_.max_record_bytes) {
      CountError("write");
      return SetError(
          error,
          StrPrintf("frame %llu payload of %u bytes exceeds max_record_bytes "
                    "%llu",
                    static_cast<unsigned long long>(frames_seen), payload_size,
                    static_cast<unsigned long long>(
                        options_.max_record_bytes)));
    }
    if (payload_size > encoded.size() - offset - io::kWalFrameHeaderSize) {
      break;  // Payload overruns the buffer; the check below reports it.
    }
    offset += io::kWalFrameHeaderSize + payload_size;
    ++frames_seen;
  }
  if (offset != encoded.size() || frames_seen != frame_count) {
    CountError("write");
    return SetError(error,
                    StrPrintf("malformed frame batch: %llu frames spanning "
                              "%zu of %zu bytes (caller claimed %llu frames)",
                              static_cast<unsigned long long>(frames_seen),
                              offset, encoded.size(),
                              static_cast<unsigned long long>(frame_count)));
  }
  if (!RotateIfNeeded(encoded.size(), error)) return false;

  if (fault::Hit("wal.write_fail")) {
    CountError("write");
    return SetError(error, "injected WAL write failure");
  }
  if (fault::Hit("wal.disk_full")) {
    CountError("disk_full");
    return SetError(error, "injected WAL disk-full");
  }
  if (auto fire = fault::Hit("wal.torn_write")) {
    // Simulated power cut mid-write: a prefix of the frame reaches the
    // disk and the writer never runs again. The caller must reopen.
    const size_t keep = fire->param > 0
                            ? std::min<size_t>(fire->param, encoded.size())
                            : encoded.size() / 2;
    WriteAllBytes(fd_, encoded.data(), keep);
    dead_ = true;
    CountError("torn");
    return SetError(error, "injected torn WAL write (writer dead)");
  }

  if (!WriteAllBytes(fd_, encoded.data(), encoded.size())) {
    const int err = errno;
    // Restore the whole-frames-only invariant before reporting failure.
    if (::ftruncate(fd_, static_cast<off_t>(segment_size_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(segment_size_), SEEK_SET) < 0) {
      dead_ = true;
    }
    CountError("write");
    return SetError(error,
                    std::string("WAL write failed: ") + std::strerror(err));
  }
  segment_size_ += encoded.size();
  appends_ += static_cast<int64_t>(frame_count);
  appends_since_fsync_ += static_cast<int64_t>(frame_count);
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("wal.appends")->Add(static_cast<int64_t>(frame_count));
  metrics.GetCounter("wal.append_bytes")
      ->Add(static_cast<int64_t>(encoded.size()));
  return MaybeFsync(error);
}

bool WalWriter::MaybeFsync(std::string* error) {
  bool due = false;
  if (options_.fsync_every_n > 0 &&
      appends_since_fsync_ >= options_.fsync_every_n) {
    due = true;
  }
  if (options_.fsync_interval_s > 0.0 &&
      MonotonicSeconds() - last_fsync_monotonic_s_ >=
          options_.fsync_interval_s) {
    due = true;
  }
  if (!due) return true;
  return Sync(error);
}

bool WalWriter::Sync(std::string* error) {
  if (dead_) return SetError(error, "wal writer is dead (crashed or closed)");
  if (fault::Hit("wal.fsync_fail")) {
    CountError("fsync");
    return SetError(error, "injected fsync failure");
  }
  if (::fsync(fd_) != 0) {
    CountError("fsync");
    return SetError(error,
                    std::string("fsync failed: ") + std::strerror(errno));
  }
  appends_since_fsync_ = 0;
  last_fsync_monotonic_s_ = MonotonicSeconds();
  obs::MetricsRegistry::Global().GetCounter("wal.fsyncs")->Add(1);
  return true;
}

int WalWriter::DeleteSegmentsThrough(uint64_t segment) {
  int deleted = 0;
  std::error_code ec;
  for (const auto& [index, file] : ListSegments(options_.dir)) {
    if (index > segment || index == segment_index_) continue;
    if (fs::remove(file.first, ec) && !ec) ++deleted;
  }
  if (deleted > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("wal.segments_retired")
        ->Add(deleted);
  }
  return deleted;
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    if (!dead_) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  dead_ = true;
}

void WalWriter::AbandonForCrashTest() {
  // Deliberately skip fsync and truncation: bytes already handed to
  // write(2) stay visible (page cache), exactly as after SIGKILL.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dead_ = true;
}

}  // namespace stream
}  // namespace dlinf
