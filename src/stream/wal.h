#ifndef DLINF_STREAM_WAL_H_
#define DLINF_STREAM_WAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "io/wal_frame.h"

/// \file
/// Segmented write-ahead log for the ingest server (DESIGN.md §14).
///
/// The durability contract: a record handed to WalWriter::Append (or
/// AppendFrames) has been passed to write(2) on the active segment before
/// the call returns true. The ingest server only acks after that point, so
/// a SIGKILL'd process loses no acked record — the kernel page cache
/// survives the process. fsync policy (`every-n` appends and/or an
/// interval) additionally bounds loss on whole-machine crashes.
///
/// Failure semantics of Append:
///  - A failed append never leaves partial bytes behind: on a short or
///    failed write the writer truncates the segment back to its pre-append
///    size, so the log only ever grows by whole frames (except when a torn
///    write is injected to *simulate* a crash, which marks the writer dead).
///  - After a dead-marking failure every later Append fails fast with a
///    typed error; the owner is expected to reopen (crash-restart path).
///
/// Fault points (DESIGN.md §8): `wal.write_fail` (transient write error),
/// `wal.disk_full` (ENOSPC-style error, segment restored), `wal.torn_write`
/// (prefix of the frame reaches disk, writer dies — models power cut
/// mid-write; `param` = bytes kept, default half), `wal.fsync_fail`
/// (fsync reports failure after a durable write).
///
/// Counters: `wal.appends`, `wal.append_bytes`, `wal.fsyncs`,
/// `wal.rotations`, `wal.truncated_bytes` (recovery truncation),
/// `wal.errors#kind=<write|disk_full|torn|fsync|open>`.

namespace dlinf {
namespace stream {

struct WalOptions {
  std::string dir;                      ///< Segment directory (created).
  uint64_t segment_bytes = 4 << 20;     ///< Rotate past this size.
  int64_t fsync_every_n = 0;            ///< fsync every n appends (0: off).
  double fsync_interval_s = 0.0;        ///< fsync at most this stale (0: off).
  uint64_t max_record_bytes = 1 << 20;  ///< Reject larger payloads.
};

/// Where a replay pass stopped and what it saw on the way.
struct WalReplayStats {
  uint64_t segments = 0;         ///< Segment files visited.
  uint64_t frames = 0;           ///< Valid frames delivered.
  uint64_t bytes = 0;            ///< Bytes of valid frames (with headers).
  uint64_t truncated_bytes = 0;  ///< Bytes past the stop point, all files.
  io::WalStatus tail_status = io::WalStatus::kEof;  ///< Why replay stopped.
  uint64_t stop_segment = 0;     ///< Segment holding the stop point.
  uint64_t stop_offset = 0;      ///< Byte offset of the stop point.
  bool any_segment = false;      ///< False when the directory was empty.
};

/// Visits every valid frame in WAL order: segments ascending from the
/// lowest index present, frames in file order, stopping at the first frame
/// that fails to decode (torn tail, bit rot, version skew) or at a gap in
/// the segment numbering. Read-only — truncation happens in WalWriter::Open.
using WalReplayFn =
    std::function<void(uint64_t segment, uint32_t type,
                       const std::string& payload)>;

/// Returns false only on environmental I/O errors (unreadable file); a
/// corrupt or torn log is a normal outcome reported through `stats`.
bool ReplayWal(const WalOptions& options, const WalReplayFn& fn,
               WalReplayStats* stats, std::string* error = nullptr);

/// Append-side of the log. Open() re-runs the replay scan to find the valid
/// prefix, truncates the tail segment there, deletes any post-corruption
/// segments, and resumes appending — so Open after ReplayWal continues the
/// exact log the replay delivered. Truncation only happens for torn-tail
/// statuses (kBadCrc/kTruncated/kBadMagic); when the scan stops on
/// kBadVersion or kOversized — data a compatible reader could still decode
/// — Open refuses with a typed error and leaves every file untouched.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  static std::optional<WalWriter> Open(const WalOptions& options,
                                       std::string* error = nullptr);

  /// Frames `payload` under `type` and appends it. True only once the bytes
  /// reached write(2) (ack-safe against SIGKILL).
  bool Append(uint32_t type, const std::string& payload,
              std::string* error = nullptr);

  /// Appends `frame_count` pre-encoded frames (AppendWalFrame output,
  /// concatenated) in a single write(2), so a batch commits all-or-nothing
  /// with respect to injected write failures. Every frame in the batch is
  /// validated against max_record_bytes before any byte is written — a
  /// frame recovery would refuse to decode must never be acked.
  bool AppendFrames(const std::string& encoded, uint64_t frame_count,
                    std::string* error = nullptr);

  /// Explicit durability barrier (also honours wal.fsync_fail).
  bool Sync(std::string* error = nullptr);

  /// Seals the current segment (fsync + open the next one). No-op when the
  /// segment holds no frames yet. Snapshotters call this so their covered
  /// range ends exactly on a segment boundary.
  bool Rotate(std::string* error = nullptr);

  /// Deletes every segment with index <= `segment`, except the active one.
  /// Callers must only retire segments whose contents are covered by a
  /// persisted snapshot (ingest_server.h). Returns segments deleted.
  int DeleteSegmentsThrough(uint64_t segment);

  /// fsyncs and closes the active segment.
  void Close();

  /// Drops the file descriptor without truncating or fsyncing — simulates
  /// the writer process dying mid-stream for crash tests. The writer is
  /// dead afterwards.
  void AbandonForCrashTest();

  uint64_t current_segment() const { return segment_index_; }
  uint64_t current_segment_bytes() const { return segment_size_; }
  uint64_t appends() const { return appends_; }
  bool dead() const { return dead_; }

 private:
  bool OpenSegment(uint64_t index, bool truncate_to, uint64_t size,
                   std::string* error);
  bool RotateIfNeeded(uint64_t incoming_bytes, std::string* error);
  bool MaybeFsync(std::string* error);

  WalOptions options_;
  int fd_ = -1;
  uint64_t segment_index_ = 0;
  uint64_t segment_size_ = 0;
  int64_t appends_ = 0;
  int64_t appends_since_fsync_ = 0;
  double last_fsync_monotonic_s_ = 0.0;
  bool dead_ = true;
};

}  // namespace stream
}  // namespace dlinf

#endif  // DLINF_STREAM_WAL_H_
