#include "traj/corruption.h"

#include <limits>
#include <utility>

#include "fault/fault.h"

namespace dlinf {
namespace traj {

Trajectory ApplyTrajectoryFaults(const Trajectory& input) {
  Trajectory output;
  output.courier_id = input.courier_id;
  output.points.reserve(input.points.size());
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (const TrajPoint& original : input.points) {
    if (fault::Hit("traj.gps.dropout")) continue;
    TrajPoint p = original;
    if (fault::Hit("traj.gps.nan")) {
      p.x = kNaN;
      p.y = kNaN;
    }
    if (const auto fire = fault::Hit("traj.gps.clock_skew")) {
      // Receiver clock jumped forward by `param` seconds (default 300).
      p.t += static_cast<double>(fire->param == 0 ? 300 : fire->param);
    }
    if (fault::Hit("traj.gps.out_of_order") && !output.points.empty()) {
      std::swap(p, output.points.back());
    }
    output.points.push_back(p);
    if (fault::Hit("traj.gps.duplicate")) output.points.push_back(p);
  }
  return output;
}

}  // namespace traj
}  // namespace dlinf
