#ifndef DLINF_TRAJ_CORRUPTION_H_
#define DLINF_TRAJ_CORRUPTION_H_

#include "traj/trajectory.h"

/// \file
/// Deterministic GPS-stream corruption for fault-injection runs (DESIGN.md
/// §8). Real courier trackers emit dirty data as a matter of course —
/// dropped fixes, duplicated packets, out-of-order delivery, bogus (NaN)
/// coordinates after a cold start, and receiver clock skew. These helpers
/// reproduce each of those defects on demand, driven by the armed
/// fault::FaultPlan, so the mining pipeline can be tested against degraded
/// input instead of clean synthetic worlds.
///
/// Injection points consulted per input point:
///   traj.gps.dropout       drop this sample entirely
///   traj.gps.duplicate     emit this sample twice (duplicated packet)
///   traj.gps.out_of_order  swap this sample with its predecessor
///   traj.gps.nan           replace the coordinates with NaN
///   traj.gps.clock_skew    shift the timestamp by `param` seconds
///
/// The pipeline's cleaning stage (traj::FilterNoise) is required to absorb
/// all five defect classes: it drops non-finite samples and non-increasing
/// timestamps, so stay-point detection downstream always sees a finite,
/// chronological track.

namespace dlinf {
namespace traj {

/// Returns `input` with every armed `traj.gps.*` fault applied. With no
/// plan armed the input is returned unchanged (callers avoid even the copy
/// by guarding on fault::Armed(), as candidate generation does).
Trajectory ApplyTrajectoryFaults(const Trajectory& input);

}  // namespace traj
}  // namespace dlinf

#endif  // DLINF_TRAJ_CORRUPTION_H_
