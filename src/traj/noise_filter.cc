#include "traj/noise_filter.h"

#include <cmath>

#include "common/check.h"

namespace dlinf {

Trajectory FilterNoise(const Trajectory& input,
                       const NoiseFilterOptions& options) {
  CHECK_GT(options.max_speed_mps, 0.0);
  Trajectory output;
  output.courier_id = input.courier_id;
  output.points.reserve(input.points.size());
  int consecutive_drops = 0;
  for (const TrajPoint& p : input.points) {
    // Non-finite samples (NaN/inf coordinates or timestamps, e.g. from a
    // cold-started receiver) are unconditional outliers: a NaN coordinate
    // would otherwise poison every comparison below (NaN > x is false, so
    // the speed gate alone would wave it through).
    if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.t)) {
      continue;
    }
    if (output.points.empty()) {
      output.points.push_back(p);
      continue;
    }
    const TrajPoint& prev = output.points.back();
    const double dt = p.t - prev.t;
    if (dt <= 0) continue;  // Out-of-order or duplicate timestamp.
    const double speed = Distance(p.position(), prev.position()) / dt;
    if (speed > options.max_speed_mps &&
        consecutive_drops < options.max_consecutive_drops) {
      ++consecutive_drops;
      continue;
    }
    consecutive_drops = 0;
    output.points.push_back(p);
  }
  return output;
}

}  // namespace dlinf
