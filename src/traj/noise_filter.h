#ifndef DLINF_TRAJ_NOISE_FILTER_H_
#define DLINF_TRAJ_NOISE_FILTER_H_

#include "traj/trajectory.h"

namespace dlinf {

/// Parameters for the heuristic GPS outlier filter [8] used before stay-point
/// extraction (Section III-A, operation 1).
struct NoiseFilterOptions {
  /// Points implying a speed above this (m/s) from the previous kept point
  /// are dropped. Couriers ride at most ~15 m/s; default leaves headroom.
  double max_speed_mps = 25.0;

  /// Cap on consecutive drops: after this many rejected points in a row the
  /// next point is accepted unconditionally, so a genuine fast segment (or a
  /// long signal gap) re-anchors the filter instead of consuming the rest of
  /// the track.
  int max_consecutive_drops = 5;
};

/// Returns a copy of `input` with heuristic GPS outliers removed.
/// Duplicate-timestamp and out-of-order points are dropped (keeping the
/// first), as are samples with non-finite coordinates or timestamps, so the
/// result is always finite and satisfies Trajectory::IsChronological() —
/// even on deliberately corrupted input (see traj/corruption.h).
Trajectory FilterNoise(const Trajectory& input,
                       const NoiseFilterOptions& options = {});

}  // namespace dlinf

#endif  // DLINF_TRAJ_NOISE_FILTER_H_
