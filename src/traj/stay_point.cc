#include "traj/stay_point.h"

#include "common/check.h"

namespace dlinf {
namespace {

StayPoint MakeStayPoint(const Trajectory& trajectory, size_t begin,
                        size_t end) {
  // Centroid and time span over points [begin, end).
  double sx = 0.0;
  double sy = 0.0;
  for (size_t k = begin; k < end; ++k) {
    sx += trajectory.points[k].x;
    sy += trajectory.points[k].y;
  }
  const double n = static_cast<double>(end - begin);
  StayPoint sp;
  sp.location = Point{sx / n, sy / n};
  sp.start_time = trajectory.points[begin].t;
  sp.end_time = trajectory.points[end - 1].t;
  sp.courier_id = trajectory.courier_id;
  return sp;
}

}  // namespace

std::vector<StayPoint> DetectStayPoints(const Trajectory& trajectory,
                                        const StayPointOptions& options) {
  CHECK_GT(options.distance_threshold_m, 0.0);
  CHECK_GT(options.time_threshold_s, 0.0);
  std::vector<StayPoint> stays;
  const std::vector<TrajPoint>& pts = trajectory.points;
  const size_t n = pts.size();
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && Distance(pts[i].position(), pts[j].position()) <=
                        options.distance_threshold_m) {
      ++j;
    }
    // Window is [i, j): all points within D_max of the anchor p_i.
    if (pts[j - 1].t - pts[i].t >= options.time_threshold_s) {
      stays.push_back(MakeStayPoint(trajectory, i, j));
      i = j;  // Restart after the stay, per [7].
    } else {
      ++i;
    }
  }
  return stays;
}

}  // namespace dlinf
