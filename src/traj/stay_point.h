#ifndef DLINF_TRAJ_STAY_POINT_H_
#define DLINF_TRAJ_STAY_POINT_H_

#include <cstdint>
#include <vector>

#include "traj/trajectory.h"

namespace dlinf {

/// A detected stay (Definition 4): a maximal trajectory subsequence whose
/// points remain within `distance_threshold` of its first point for at least
/// `time_threshold` seconds.
struct StayPoint {
  Point location;        ///< Spatial centroid of the subsequence.
  double start_time = 0; ///< Time of the first point in the stay.
  double end_time = 0;   ///< Time of the last point in the stay.
  int64_t courier_id = -1;
  int64_t trip_id = -1;  ///< Filled in by callers that know the trip.

  /// Definition 4 assigns a stay point the midpoint of its interval.
  double Time() const { return (start_time + end_time) / 2.0; }

  double Duration() const { return end_time - start_time; }
};

/// Parameters of stay-point detection. The paper (following [5]) uses
/// D_max = 20 m and T_min = 30 s (Section III-A).
struct StayPointOptions {
  double distance_threshold_m = 20.0;  ///< D_max.
  double time_threshold_s = 30.0;      ///< T_min.
};

/// Extracts stay points from a (noise-filtered) trajectory using the
/// anchor-based algorithm of Li et al. [7]:
/// scan j forward from anchor i while distance(p_i, p_j) <= D_max; when the
/// window breaks, emit <p_i..p_{j-1}> as a stay if it spans >= T_min.
/// Stay points inherit `courier_id` from the trajectory; `trip_id` is left -1.
std::vector<StayPoint> DetectStayPoints(const Trajectory& trajectory,
                                        const StayPointOptions& options = {});

}  // namespace dlinf

#endif  // DLINF_TRAJ_STAY_POINT_H_
