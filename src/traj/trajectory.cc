#include "traj/trajectory.h"

#include "common/check.h"

namespace dlinf {

bool Trajectory::IsChronological() const {
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].t <= points[i - 1].t) return false;
  }
  return true;
}

Point Trajectory::PositionAt(double t) const {
  CHECK(!points.empty());
  if (t <= points.front().t) return points.front().position();
  if (t >= points.back().t) return points.back().position();
  // Binary search for the segment containing t.
  size_t lo = 0;
  size_t hi = points.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (points[mid].t <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const TrajPoint& a = points[lo];
  const TrajPoint& b = points[hi];
  const double span = b.t - a.t;
  const double frac = span > 0 ? (t - a.t) / span : 0.0;
  return Point{a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)};
}

double Trajectory::PathLength() const {
  double length = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    length += Distance(points[i - 1].position(), points[i].position());
  }
  return length;
}

}  // namespace dlinf
