#ifndef DLINF_TRAJ_TRAJECTORY_H_
#define DLINF_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace dlinf {

/// One spatio-temporal sample of a courier (Definition 3 of the paper).
struct TrajPoint {
  double x = 0.0;  ///< Local easting, meters.
  double y = 0.0;  ///< Local northing, meters.
  double t = 0.0;  ///< Seconds since the dataset epoch.

  Point position() const { return Point{x, y}; }
};

/// A chronologically ordered GPS track of one courier.
struct Trajectory {
  int64_t courier_id = -1;
  std::vector<TrajPoint> points;

  bool empty() const { return points.empty(); }
  size_t size() const { return points.size(); }

  /// True when points are strictly increasing in time (Definition 3).
  bool IsChronological() const;

  /// Linearly interpolated position at time `t`, clamped to the track's time
  /// span. Aborts on an empty trajectory. Used to derive "annotated
  /// locations" (courier position at the recorded delivery time) for the
  /// annotation-based baselines.
  Point PositionAt(double t) const;

  /// Total path length in meters (sum of consecutive segment lengths).
  double PathLength() const;

  double StartTime() const { return points.front().t; }
  double EndTime() const { return points.back().t; }
};

}  // namespace dlinf

#endif  // DLINF_TRAJ_TRAJECTORY_H_
