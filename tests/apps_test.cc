#include <cmath>

#include "apps/availability.h"
#include "apps/location_service.h"
#include "apps/route_planner.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "sim/generator.h"

namespace dlinf {
namespace apps {
namespace {

TEST(RoutePlannerTest, NearestNeighborVisitsAll) {
  const std::vector<Point> stops = {{10, 0}, {5, 0}, {20, 0}};
  const std::vector<int> order = NearestNeighborRoute({0, 0}, stops);
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(RoutePlannerTest, RouteLengthComputesOpenTour) {
  const std::vector<Point> stops = {{3, 4}, {3, 0}};
  EXPECT_DOUBLE_EQ(RouteLength({0, 0}, stops, {1, 0}), 3.0 + 4.0);
}

TEST(RoutePlannerTest, TwoOptFixesCrossing) {
  // Square corners visited in a crossing order; 2-opt must untangle.
  const std::vector<Point> stops = {{0, 10}, {10, 0}, {10, 10}, {0, 20}};
  std::vector<int> bad = {1, 0, 2, 3};  // Forces zig-zag.
  const std::vector<int> improved = TwoOptImprove({0, 0}, stops, bad);
  EXPECT_LE(RouteLength({0, 0}, stops, improved),
            RouteLength({0, 0}, stops, bad));
}

TEST(RoutePlannerTest, PlanRouteBeatsOrRivalsRandomOrders) {
  Rng rng(3);
  std::vector<Point> stops;
  for (int i = 0; i < 15; ++i) {
    stops.push_back({rng.Uniform(0, 500), rng.Uniform(0, 500)});
  }
  const std::vector<int> planned = PlanRoute({0, 0}, stops);
  const double planned_len = RouteLength({0, 0}, stops, planned);
  std::vector<int> random_order = planned;
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(&random_order);
    EXPECT_LE(planned_len, RouteLength({0, 0}, stops, random_order) + 1e-9);
  }
}

TEST(RoutePlannerTest, BetterLocationsGiveShorterActualRoutes) {
  // True stops on a line; believed stops = true + noise. More noise ->
  // a worse visiting order -> a longer walk over the true stops.
  Rng rng(4);
  std::vector<Point> true_stops;
  for (int i = 0; i < 12; ++i) {
    true_stops.push_back({i * 100.0, (i % 2) * 50.0});
  }
  double cost_exact = 0.0, cost_noisy = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Point> noisy;
    for (const Point& p : true_stops) {
      noisy.push_back({p.x + rng.Normal(0, 250), p.y + rng.Normal(0, 250)});
    }
    cost_exact += ActualRouteCost({0, 0}, true_stops, true_stops);
    cost_noisy += ActualRouteCost({0, 0}, noisy, true_stops);
  }
  EXPECT_LT(cost_exact, cost_noisy);
}

TEST(LocationServiceTest, ThreeTierLookup) {
  sim::SimConfig config = sim::SynDowBJConfig();
  config.num_days = 3;
  config.num_communities = 6;
  const sim::World world = sim::GenerateWorld(config);

  // Infer locations for the first half of addresses only.
  std::unordered_map<int64_t, Point> inferred;
  for (size_t i = 0; i < world.addresses.size() / 2; ++i) {
    inferred[world.addresses[i].id] =
        world.addresses[i].true_delivery_location;
  }
  const DeliveryLocationService service =
      DeliveryLocationService::Build(world, inferred);
  EXPECT_EQ(service.address_entries(), inferred.size());
  EXPECT_GT(service.building_entries(), 0u);

  // Tier 1: a known address answers from the address KV.
  const auto known = service.Query(0);
  EXPECT_EQ(known.source, DeliveryLocationService::Source::kAddress);
  EXPECT_EQ(known.location, world.addresses[0].true_delivery_location);

  // Tier 2: an unknown address in a known building answers from the
  // building KV.
  bool checked_building = false;
  for (size_t i = world.addresses.size() / 2; i < world.addresses.size();
       ++i) {
    const sim::Address& addr = world.addresses[i];
    bool building_known = false;
    for (const auto& [id, p] : inferred) {
      if (world.address(id).building_id == addr.building_id) {
        building_known = true;
      }
    }
    if (building_known) {
      const auto answer = service.Query(addr.id);
      EXPECT_EQ(answer.source, DeliveryLocationService::Source::kBuilding);
      checked_building = true;
      break;
    }
  }
  EXPECT_TRUE(checked_building);

  // Tier 3: unknown building falls back to the geocode.
  const auto fallback = service.QueryByBuilding(999999, Point{1, 2});
  EXPECT_EQ(fallback.source, DeliveryLocationService::Source::kGeocode);
  EXPECT_EQ(fallback.location, (Point{1, 2}));
}

TEST(LocationServiceTest, BuildingTierUsesModalLocation) {
  sim::World world;
  sim::Community c;
  c.id = 0;
  world.communities.push_back(c);
  sim::Building b;
  b.id = 0;
  b.community_id = 0;
  world.buildings.push_back(b);
  for (int i = 0; i < 3; ++i) {
    sim::Address a;
    a.id = i;
    a.building_id = 0;
    a.community_id = 0;
    world.addresses.push_back(a);
  }
  // Two addresses share a location, one differs: the shared one is modal.
  std::unordered_map<int64_t, Point> inferred = {
      {0, {0, 0}}, {1, {1, 1}}, {2, {100, 100}}};
  const auto service = DeliveryLocationService::Build(world, inferred);
  const auto answer = service.QueryByBuilding(0, Point{});
  EXPECT_EQ(answer.source, DeliveryLocationService::Source::kBuilding);
  EXPECT_LT(Distance(answer.location, Point{0.5, 0.5}), 2.0);
}

// A minimal world: `addresses_per_building[b]` addresses in building b,
// sequential ids, all in community 0.
sim::World TinyWorld(const std::vector<int>& addresses_per_building) {
  sim::World world;
  sim::Community community;
  community.id = 0;
  world.communities.push_back(community);
  int64_t next_address = 0;
  for (size_t b = 0; b < addresses_per_building.size(); ++b) {
    sim::Building building;
    building.id = static_cast<int64_t>(b);
    building.community_id = 0;
    world.buildings.push_back(building);
    for (int i = 0; i < addresses_per_building[b]; ++i) {
      sim::Address address;
      address.id = next_address++;
      address.building_id = static_cast<int64_t>(b);
      address.community_id = 0;
      address.geocoded_location = Point{1000.0 + 10.0 * address.id, 500.0};
      world.addresses.push_back(address);
    }
  }
  return world;
}

TEST(LocationServiceTest, AnswerSourceCoversAllThreeTiers) {
  // Building 0: address 0 inferred, address 1 not. Building 1: address 2,
  // nothing inferred anywhere in the building.
  const sim::World world = TinyWorld({2, 1});
  const std::unordered_map<int64_t, Point> inferred = {{0, {7, 7}}};
  const auto service = DeliveryLocationService::Build(world, inferred);

  // Tier 1: the address itself was inferred.
  const auto tier1 = service.Query(0);
  EXPECT_EQ(tier1.source, DeliveryLocationService::Source::kAddress);
  EXPECT_EQ(tier1.location, (Point{7, 7}));

  // Tier 2: new address, but a sibling in the same building was inferred.
  const auto tier2 = service.Query(1);
  EXPECT_EQ(tier2.source, DeliveryLocationService::Source::kBuilding);
  EXPECT_EQ(tier2.location, (Point{7, 7}));

  // Tier 3: no history for the address or its building -> geocode.
  const auto tier3 = service.Query(2);
  EXPECT_EQ(tier3.source, DeliveryLocationService::Source::kGeocode);
  EXPECT_EQ(tier3.location, world.address(2).geocoded_location);
}

TEST(LocationServiceTest, BuildingTierTenMeterToleranceEdge) {
  // Two locations exactly 10 m apart count as the same modal location
  // (<= 10 m tolerance), so the pair beats the lone outlier.
  const sim::World world = TinyWorld({3});
  const std::unordered_map<int64_t, Point> inferred = {
      {0, {0, 0}}, {1, {10, 0}}, {2, {50, 50}}};
  const auto service = DeliveryLocationService::Build(world, inferred);
  const auto answer = service.QueryByBuilding(0, Point{});
  EXPECT_EQ(answer.source, DeliveryLocationService::Source::kBuilding);
  // Either member of the 10 m pair is an acceptable mode; the outlier is not.
  EXPECT_TRUE(answer.location == (Point{0, 0}) ||
              answer.location == (Point{10, 0}));
}

TEST(LocationServiceTest, BuildingTierBeyondToleranceSplitsTheMode) {
  // Just over 10 m apart: the two near points no longer pool, so the
  // duplicated far location (two identical votes) wins.
  const sim::World world = TinyWorld({4});
  const std::unordered_map<int64_t, Point> inferred = {
      {0, {0, 0}}, {1, {10.5, 0}}, {2, {50, 50}}, {3, {50, 50}}};
  const auto service = DeliveryLocationService::Build(world, inferred);
  const auto answer = service.QueryByBuilding(0, Point{});
  EXPECT_EQ(answer.source, DeliveryLocationService::Source::kBuilding);
  EXPECT_EQ(answer.location, (Point{50, 50}));
}

TEST(LocationServiceTest, QueryBatchMatchesSequentialQueries) {
  // Batched answers must be exactly N sequential Query() calls, for empty,
  // single, and large batches, serial or pool-backed.
  const sim::World world = TinyWorld({2, 1, 3});
  const std::unordered_map<int64_t, Point> inferred = {{0, {7, 7}},
                                                       {3, {21, 4}}};
  const auto service = DeliveryLocationService::Build(world, inferred);
  ThreadPool pool(4);

  for (const size_t batch_size : {size_t{0}, size_t{1}, size_t{1000}}) {
    std::vector<int64_t> ids;
    for (size_t i = 0; i < batch_size; ++i) {
      ids.push_back(static_cast<int64_t>(i % world.addresses.size()));
    }
    for (ThreadPool* maybe_pool : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const std::vector<DeliveryLocationService::Answer> batched =
          service.QueryBatch(ids, maybe_pool);
      ASSERT_EQ(batched.size(), ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        const auto sequential = service.Query(ids[i]);
        EXPECT_EQ(batched[i].source, sequential.source) << "i=" << i;
        EXPECT_EQ(batched[i].location, sequential.location) << "i=" << i;
      }
    }
  }
}

TEST(LocationServiceTest, QueryBatchCountsTierHitsOncePerQuery) {
  const sim::World world = TinyWorld({2, 1});
  const std::unordered_map<int64_t, Point> inferred = {{0, {7, 7}}};
  const auto service = DeliveryLocationService::Build(world, inferred);

  obs::Counter* address_hits =
      obs::MetricsRegistry::Global().GetCounter("service.query.hits.address");
  obs::Counter* building_hits =
      obs::MetricsRegistry::Global().GetCounter("service.query.hits.building");
  obs::Counter* geocode_hits =
      obs::MetricsRegistry::Global().GetCounter("service.query.hits.geocode");
  const int64_t address_before = address_hits->value();
  const int64_t building_before = building_hits->value();
  const int64_t geocode_before = geocode_hits->value();

  // Address 0 -> tier 1, address 1 -> tier 2 (sibling), address 2 -> tier 3.
  service.QueryBatch({0, 0, 1, 2, 2, 2});
  EXPECT_EQ(address_hits->value() - address_before, 2);
  EXPECT_EQ(building_hits->value() - building_before, 1);
  EXPECT_EQ(geocode_hits->value() - geocode_before, 3);
}

TEST(AvailabilityTest, ProfileHistogramNormalizes) {
  // Two deliveries Monday 9am (day 0), one Tuesday 14pm (day 1).
  const std::vector<double> times = {9 * 3600.0, 9.5 * 3600.0,
                                     86400.0 + 14 * 3600.0};
  const AvailabilityProfile profile = BuildAvailabilityProfile(times);
  EXPECT_EQ(profile.num_observations, 3);
  EXPECT_NEAR(profile.ProbabilityAt(0, 9), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(profile.ProbabilityAt(1, 14), 1.0 / 3.0, 1e-9);
  double sum = 0;
  for (int d = 0; d < 7; ++d) {
    for (int h = 0; h < 24; ++h) sum += profile.ProbabilityAt(d, h);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AvailabilityTest, WindowsAboveThreshold) {
  AvailabilityProfile profile;
  profile.histogram[2][9] = 0.3;
  profile.histogram[2][10] = 0.4;
  profile.histogram[2][15] = 0.3;
  const auto windows = profile.WindowsAbove(0.25, 2);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (std::pair<int, int>{9, 11}));
  EXPECT_EQ(windows[1], (std::pair<int, int>{15, 16}));
  EXPECT_TRUE(profile.WindowsAbove(0.9, 2).empty());
}

TEST(AvailabilityTest, EstimatedTimesCorrectDelayedConfirmations) {
  // On a delayed dataset, stay-point-based actual-time estimates should be
  // closer to ground truth than the recorded times are.
  sim::SimConfig config = sim::SynDowBJConfig();
  config.num_days = 5;
  config.num_communities = 6;
  config.p_delay = 0.8;
  const sim::World world = sim::GenerateWorld(config);
  const auto gen = dlinfma::CandidateGeneration::Build(world, {});

  double err_estimated = 0.0, err_recorded = 0.0;
  int count = 0;
  for (const sim::DeliveryTrip& trip : world.trips) {
    for (const sim::Waybill& w : trip.waybills) {
      const sim::Address& addr = world.address(w.address_id);
      // Use the true location (upper bound on what inference provides).
      const std::vector<double> estimates = EstimateActualDeliveryTimes(
          gen, w.address_id, addr.true_delivery_location);
      // Match this waybill's trip by picking the estimate for that trip.
      const auto& records = gen.address_trips(w.address_id);
      for (size_t r = 0; r < records.size(); ++r) {
        if (records[r].trip_id == trip.id &&
            std::fabs(records[r].recorded_delivery_time -
                      w.recorded_delivery_time) < 1e-6) {
          err_estimated += std::fabs(estimates[r] - w.actual_delivery_time);
          err_recorded +=
              std::fabs(w.recorded_delivery_time - w.actual_delivery_time);
          ++count;
        }
      }
    }
  }
  ASSERT_GT(count, 100);
  EXPECT_LT(err_estimated, err_recorded * 0.5);
}

TEST(AvailabilityTest, ProfileDistanceZeroForIdentical) {
  const std::vector<double> times = {9 * 3600.0, 86400.0 * 3 + 12 * 3600.0};
  const AvailabilityProfile a = BuildAvailabilityProfile(times);
  const AvailabilityProfile b = BuildAvailabilityProfile(times);
  EXPECT_DOUBLE_EQ(ProfileDistance(a, b), 0.0);
  const AvailabilityProfile c = BuildAvailabilityProfile({15 * 3600.0});
  EXPECT_GT(ProfileDistance(a, c), 0.0);
}

}  // namespace
}  // namespace apps
}  // namespace dlinf
