#include <cmath>
#include <memory>

#include "baselines/annotation_util.h"
#include "geo/geohash.h"
#include "baselines/evaluation.h"
#include "baselines/georank.h"
#include "baselines/simple_baselines.h"
#include "baselines/unet_baseline.h"
#include "baselines/variants.h"
#include "gtest/gtest.h"
#include "sim/generator.h"

namespace dlinf {
namespace baselines {
namespace {

/// Shared small dataset for all baseline tests (built once: candidate
/// generation is the expensive part).
class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimConfig config = sim::SynDowBJConfig();
    config.num_days = 8;
    config.num_communities = 9;
    config.num_couriers = 3;
    world_ = new sim::World(sim::GenerateWorld(config));
    data_ = new dlinfma::Dataset(dlinfma::BuildDataset(*world_, {}));
    samples_ = new dlinfma::SampleSet(
        dlinfma::ExtractSamples(*data_, dlinfma::FeatureConfig{}));
  }
  static void TearDownTestSuite() {
    delete samples_;
    delete data_;
    delete world_;
  }

  static sim::World* world_;
  static dlinfma::Dataset* data_;
  static dlinfma::SampleSet* samples_;
};

sim::World* BaselinesTest::world_ = nullptr;
dlinfma::Dataset* BaselinesTest::data_ = nullptr;
dlinfma::SampleSet* BaselinesTest::samples_ = nullptr;

TEST_F(BaselinesTest, AnnotationsExistForEveryDeliveredAddress) {
  const auto annotations = ComputeAnnotatedLocations(*world_);
  for (int64_t id : world_->DeliveredAddressIds()) {
    auto it = annotations.find(id);
    ASSERT_NE(it, annotations.end());
    EXPECT_EQ(it->second.size(), data_->gen->address_trips(id).size());
  }
}

TEST_F(BaselinesTest, AnnotationIsCourierPositionAtRecordedTime) {
  const auto annotations = ComputeAnnotatedLocations(*world_);
  const sim::DeliveryTrip& trip = world_->trips.front();
  const sim::Waybill& w = trip.waybills.front();
  const Point expected = trip.trajectory.PositionAt(w.recorded_delivery_time);
  bool found = false;
  for (const Point& p : annotations.at(w.address_id)) {
    if (Distance(p, expected) < 1e-9) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(BaselinesTest, GeocodingReturnsGeocodedLocations) {
  GeocodingBaseline method;
  const std::vector<Point> out = method.InferAll(*data_, samples_->test);
  ASSERT_EQ(out.size(), samples_->test.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i],
              world_->address(samples_->test[i].address_id).geocoded_location);
  }
}

TEST_F(BaselinesTest, AnnotationBaselineReturnsCentroid) {
  AnnotationBaseline method;
  method.Fit(*data_, *samples_);
  const auto annotations = ComputeAnnotatedLocations(*world_);
  const std::vector<Point> out = method.InferAll(*data_, samples_->test);
  for (size_t i = 0; i < out.size(); ++i) {
    const auto& points = annotations.at(samples_->test[i].address_id);
    EXPECT_LT(Distance(out[i], Centroid(points)), 1e-9);
  }
}

TEST_F(BaselinesTest, GeoCloudReturnsBiggestClusterCentroid) {
  GeoCloudBaseline method;
  method.Fit(*data_, *samples_);
  const std::vector<Point> out = method.InferAll(*data_, samples_->test);
  ASSERT_EQ(out.size(), samples_->test.size());
  // GeoCloud should never be (much) worse than plain Annotation on MAE:
  // discarding mis-annotated outliers only helps.
  AnnotationBaseline annotation;
  annotation.Fit(*data_, *samples_);
  const auto truth = dlinfma::GroundTruthOf(*world_, samples_->test);
  const auto geocloud_metrics = dlinfma::ComputeMetrics(out, truth);
  const auto annotation_metrics = dlinfma::ComputeMetrics(
      annotation.InferAll(*data_, samples_->test), truth);
  EXPECT_LT(geocloud_metrics.mae_m, annotation_metrics.mae_m * 1.25);
}

TEST_F(BaselinesTest, MinDistPicksNearestCandidateToGeocode) {
  MinDistBaseline method;
  const std::vector<Point> out = method.InferAll(*data_, samples_->test);
  for (size_t i = 0; i < out.size(); ++i) {
    const dlinfma::AddressSample& s = samples_->test[i];
    const Point geocode = world_->address(s.address_id).geocoded_location;
    const double chosen = Distance(out[i], geocode);
    for (int64_t id : s.candidate_ids) {
      EXPECT_LE(chosen,
                Distance(data_->gen->candidate(id).location, geocode) + 1e-9);
    }
  }
}

TEST_F(BaselinesTest, MaxTcPicksMaximumCoverage) {
  MaxTcBaseline method;
  const std::vector<Point> out = method.InferAll(*data_, samples_->test);
  for (size_t i = 0; i < out.size(); ++i) {
    const dlinfma::AddressSample& s = samples_->test[i];
    double chosen_tc = -1.0;
    double max_tc = -1.0;
    for (size_t j = 0; j < s.features.size(); ++j) {
      max_tc = std::max(max_tc, s.features[j].trip_coverage);
      if (Distance(data_->gen->candidate(s.candidate_ids[j]).location,
                   out[i]) < 1e-9) {
        chosen_tc = std::max(chosen_tc, s.features[j].trip_coverage);
      }
    }
    EXPECT_DOUBLE_EQ(chosen_tc, max_tc);
  }
}

TEST_F(BaselinesTest, MaxTcIlcOutperformsMaxTc) {
  // The paper's Table II relationship: adding inverse LC dramatically helps.
  MaxTcBaseline max_tc;
  MaxTcIlcBaseline max_tc_ilc;
  const auto truth = dlinfma::GroundTruthOf(*world_, samples_->test);
  const auto m1 = dlinfma::ComputeMetrics(
      max_tc.InferAll(*data_, samples_->test), truth);
  const auto m2 = dlinfma::ComputeMetrics(
      max_tc_ilc.InferAll(*data_, samples_->test), truth);
  EXPECT_LT(m2.mae_m, m1.mae_m);
  EXPECT_GT(m2.beta50_pct, m1.beta50_pct);
}

TEST_F(BaselinesTest, GeoRankTrainsAndInfers) {
  GeoRankBaseline method;
  method.Fit(*data_, *samples_);
  const std::vector<Point> out = method.InferAll(*data_, samples_->test);
  ASSERT_EQ(out.size(), samples_->test.size());
  // GeoRank selects among annotated locations: every output must be one of
  // the address's annotations (or its geocode fallback).
  const auto annotations = ComputeAnnotatedLocations(*world_);
  for (size_t i = 0; i < out.size(); ++i) {
    const auto it = annotations.find(samples_->test[i].address_id);
    ASSERT_NE(it, annotations.end());
    bool is_annotation = false;
    for (const Point& p : it->second) {
      if (Distance(p, out[i]) < 1e-9) is_annotation = true;
    }
    EXPECT_TRUE(is_annotation);
  }
}

TEST_F(BaselinesTest, UnetBaselineTrainsAndInfersWithinImage) {
  UnetBaseline::Options options;
  options.max_epochs = 6;
  UnetBaseline method(options);
  method.Fit(*data_, *samples_);
  const std::vector<Point> out = method.InferAll(*data_, samples_->test);
  ASSERT_EQ(out.size(), samples_->test.size());
  // Every prediction lies inside the 9x9 geohash-8 image around the
  // annotations' modal cell (the cell holding the most annotations).
  const auto annotations = ComputeAnnotatedLocations(*world_);
  const LocalProjection projection(LatLng{39.9042, 116.4074});
  for (size_t i = 0; i < out.size(); ++i) {
    const auto& points = annotations.at(samples_->test[i].address_id);
    std::unordered_map<std::string, int> counts;
    for (const Point& p : points) {
      counts[GeohashEncode(projection.Backward(p), 8)]++;
    }
    std::string modal;
    int best = 0;
    for (const auto& [hash, count] : counts) {
      if (count > best) {
        best = count;
        modal = hash;
      }
    }
    const Point center = projection.Forward(GeohashDecode(modal).Center());
    // 9x9 cells of ~38 m x 19 m: anything within the image is < ~220 m of
    // the center cell.
    EXPECT_LT(Distance(out[i], center), 260.0);
  }
}

TEST_F(BaselinesTest, ClassificationVariantsFitAndInfer) {
  ClassificationVariant::Options options;
  options.gbdt_stages = 20;
  options.rf_trees = 15;
  options.mlp_epochs = 5;
  for (auto model : {ClassificationVariant::Model::kGbdt,
                     ClassificationVariant::Model::kRandomForest,
                     ClassificationVariant::Model::kMlp}) {
    ClassificationVariant variant(model, "test-variant", options);
    variant.Fit(*data_, *samples_);
    const std::vector<Point> out = variant.InferAll(*data_, samples_->test);
    ASSERT_EQ(out.size(), samples_->test.size());
    // Predictions must come from each sample's candidate set.
    for (size_t i = 0; i < out.size(); ++i) {
      bool from_candidates = false;
      for (int64_t id : samples_->test[i].candidate_ids) {
        if (Distance(data_->gen->candidate(id).location, out[i]) < 1e-9) {
          from_candidates = true;
        }
      }
      EXPECT_TRUE(from_candidates);
    }
  }
}

TEST_F(BaselinesTest, RankingVariantsFitAndInfer) {
  RankDtVariant rkdt;
  rkdt.Fit(*data_, *samples_);
  EXPECT_EQ(rkdt.InferAll(*data_, samples_->test).size(),
            samples_->test.size());

  RankNetVariant::Options options;
  options.epochs = 5;
  RankNetVariant rknet(options);
  rknet.Fit(*data_, *samples_);
  EXPECT_EQ(rknet.InferAll(*data_, samples_->test).size(),
            samples_->test.size());
}

TEST_F(BaselinesTest, RunMethodProducesMetricsAndTimings) {
  GeocodingBaseline method;
  const MethodResult result = RunMethod(&method, *data_, *samples_);
  EXPECT_EQ(result.method, "Geocoding");
  EXPECT_GT(result.metrics.mae_m, 0.0);
  EXPECT_EQ(result.metrics.num_samples,
            static_cast<int>(samples_->test.size()));
  EXPECT_GE(result.infer_seconds, 0.0);
}

}  // namespace
}  // namespace baselines
}  // namespace dlinf
