// Tests for the benchmark-regression comparison policy
// (src/common/bench_compare.h): missing-vs-new asymmetry, regression
// detection, calibration normalization, the min-seconds floor, and the
// markdown digest.

#include "common/bench_compare.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace dlinf {
namespace {

using Results = std::map<std::string, double>;

TEST(BenchCompareTest, IdenticalResultsPass) {
  const Results both = {{"a", 1.0}, {"b", 0.5}};
  const BenchComparison comparison = CompareBenchResults(both, both);
  EXPECT_TRUE(comparison.ok());
  EXPECT_EQ(comparison.regressions, 0);
  EXPECT_TRUE(comparison.missing.empty());
  EXPECT_TRUE(comparison.new_entries.empty());
  ASSERT_EQ(comparison.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(comparison.rows[0].ratio, 1.0);
}

TEST(BenchCompareTest, MixedKeysNewIsInformationalMissingIsFailure) {
  // The satellite case: candidate adds `profiler.overhead` (new key, not in
  // the committed baseline) while also dropping `b` (baseline key gone).
  const Results baseline = {{"a", 1.0}, {"b", 0.5}};
  const Results pr = {{"a", 1.0}, {"profiler.overhead", 0.2}};
  const BenchComparison comparison = CompareBenchResults(baseline, pr);

  ASSERT_EQ(comparison.missing.size(), 1u);
  EXPECT_EQ(comparison.missing[0], "b");
  ASSERT_EQ(comparison.new_entries.size(), 1u);
  EXPECT_EQ(comparison.new_entries[0].first, "profiler.overhead");
  EXPECT_DOUBLE_EQ(comparison.new_entries[0].second, 0.2);
  EXPECT_FALSE(comparison.ok());  // Because of the missing key only.

  // Without the drop, a candidate-only key alone must pass.
  const Results pr_additive = {{"a", 1.0}, {"b", 0.5},
                               {"profiler.overhead", 0.2}};
  const BenchComparison additive = CompareBenchResults(baseline, pr_additive);
  EXPECT_TRUE(additive.ok());
  ASSERT_EQ(additive.new_entries.size(), 1u);
  EXPECT_EQ(additive.regressions, 0);
}

TEST(BenchCompareTest, RegressionBeyondThresholdFails) {
  const Results baseline = {{"a", 1.0}};
  const Results pr = {{"a", 1.30}};
  BenchCompareOptions options;
  options.threshold = 0.25;
  const BenchComparison comparison =
      CompareBenchResults(baseline, pr, options);
  EXPECT_FALSE(comparison.ok());
  EXPECT_EQ(comparison.regressions, 1);
  ASSERT_EQ(comparison.rows.size(), 1u);
  EXPECT_TRUE(comparison.rows[0].regressed);
  EXPECT_NEAR(comparison.rows[0].ratio, 1.30, 1e-9);

  // Just inside the band passes.
  const Results pr_ok = {{"a", 1.24}};
  EXPECT_TRUE(CompareBenchResults(baseline, pr_ok, options).ok());
}

TEST(BenchCompareTest, CalibrationNormalizesMachineSpeed) {
  // Candidate machine is 2x slower (calibration 0.2 vs 0.1): its 2.2s run
  // normalizes to 1.1s, within the 25% band of the 1.0s baseline.
  const Results baseline = {{"_calibration", 0.1}, {"a", 1.0}};
  const Results pr = {{"_calibration", 0.2}, {"a", 2.2}};
  const BenchComparison comparison = CompareBenchResults(baseline, pr);
  EXPECT_TRUE(comparison.calibrated);
  EXPECT_DOUBLE_EQ(comparison.scale, 0.5);
  EXPECT_TRUE(comparison.ok());
  ASSERT_EQ(comparison.rows.size(), 1u);  // _calibration is not a row.
  EXPECT_NEAR(comparison.rows[0].pr_seconds, 1.1, 1e-9);

  // Calibration on one side only: raw comparison, and the 2.2s run fails.
  const Results pr_uncal = {{"a", 2.2}};
  const BenchComparison uncal = CompareBenchResults(baseline, pr_uncal);
  EXPECT_FALSE(uncal.calibrated);
  EXPECT_FALSE(uncal.ok());
}

TEST(BenchCompareTest, MinSecondsFloorExemptsFromRatioCheck) {
  // 10x slower but the baseline is below the 1ms floor: present, not gated.
  const Results baseline = {{"tiny", 0.0001}, {"big", 1.0}};
  const Results pr = {{"tiny", 0.001}, {"big", 1.0}};
  const BenchComparison comparison = CompareBenchResults(baseline, pr);
  EXPECT_TRUE(comparison.ok());
  for (const BenchCompareRow& row : comparison.rows) {
    if (row.name == "tiny") {
      EXPECT_FALSE(row.gated);
      EXPECT_FALSE(row.regressed);
    } else {
      EXPECT_TRUE(row.gated);
    }
  }
  // The floor does not exempt from presence: dropping `tiny` still fails.
  const Results pr_dropped = {{"big", 1.0}};
  EXPECT_FALSE(CompareBenchResults(baseline, pr_dropped).ok());
}

TEST(BenchCompareTest, MarkdownDigestCoversAllOutcomeKinds) {
  const Results baseline = {{"gone", 1.0}, {"slow", 1.0}, {"fast", 1.0}};
  const Results pr = {{"slow", 2.0}, {"fast", 0.5}, {"brand.new", 0.3}};
  const BenchCompareOptions options;
  const BenchComparison comparison =
      CompareBenchResults(baseline, pr, options);
  const std::string markdown = BenchComparisonMarkdown(comparison, options);

  EXPECT_NE(markdown.find("**FAIL**"), std::string::npos);
  EXPECT_NE(markdown.find("`gone` **missing from PR results**"),
            std::string::npos);
  EXPECT_NE(markdown.find("`slow` **100% slower**"), std::string::npos);
  EXPECT_NE(markdown.find("`fast` **50% faster**"), std::string::npos);
  // The new-key note says why it is not a failure.
  EXPECT_NE(markdown.find("`brand.new`"), std::string::npos);
  EXPECT_NE(markdown.find("no baseline yet"), std::string::npos);
  // Table rows include the new entry with a "new" ratio cell.
  EXPECT_NE(markdown.find("| `brand.new` | - | 0.3000 | new |"),
            std::string::npos);

  // All-green digest.
  const Results clean = {{"a", 1.0}};
  const BenchComparison ok_cmp = CompareBenchResults(clean, clean, options);
  const std::string ok_md = BenchComparisonMarkdown(ok_cmp, options);
  EXPECT_EQ(ok_md.find("**FAIL**"), std::string::npos);
  EXPECT_NE(ok_md.find("within +25% of baseline"), std::string::npos);
}

}  // namespace
}  // namespace dlinf
