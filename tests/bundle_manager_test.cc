// BundleManager hot-reload tests (src/apps/bundle_manager.h, DESIGN.md §9):
// boot, the watch->stage->validate->swap state machine, every rollback
// trigger (injected corruption, real on-disk corruption, shadow-validation
// veto, agreement threshold), RCU semantics for pinned generations, and the
// reload counters + degraded-health flag.

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/bundle_manager.h"
#include "common/check.h"
#include "dlinfma/dlinfma_method.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "io/bundle.h"
#include "obs/metrics.h"
#include "sim/generator.h"

namespace dlinf {
namespace apps {
namespace {

using ::testing::TempDir;

int64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << bytes;
}

/// One small trained pipeline saved as an on-disk bundle, shared by every
/// test; tests that mutate bundle files restore them afterwards.
struct BundleFixture {
  BundleFixture() {
    sim::SimConfig config = sim::SynDowBJConfig();
    config.num_days = 3;
    config.num_communities = 5;
    world = sim::GenerateWorld(config);
    data = dlinfma::BuildDataset(world, {});
    samples = dlinfma::ExtractSamples(data, {});
    dlinfma::TrainConfig train_config;
    train_config.max_epochs = 2;
    train_config.early_stop_patience = 2;
    method = std::make_unique<dlinfma::DlInfMaMethod>(
        "DLInfMA", dlinfma::LocMatcherConfig{}, train_config);
    method->Fit(data, samples);
    // Suffix with the pid: under `ctest -j` each test case is a separate
    // process, and several of them mutate or corrupt bundle files — a shared
    // fixed path makes concurrent cases clobber each other's bundles.
    dir = TempDir() + "manager_bundle." + std::to_string(::getpid());
    std::string error;
    CHECK(io::SaveBundle(dir, world, data, samples, *method, &error)) << error;
  }

  sim::World world;
  dlinfma::Dataset data;
  dlinfma::SampleSet samples;
  std::unique_ptr<dlinfma::DlInfMaMethod> method;
  std::string dir;
};

BundleFixture& Fixture() {
  static BundleFixture* fixture = new BundleFixture();
  return *fixture;
}

std::unique_ptr<BundleManager> MakeManager(BundleManager::Config config = {}) {
  config.dir = Fixture().dir;
  std::string error;
  std::unique_ptr<BundleManager> manager =
      BundleManager::Create(config, &error);
  EXPECT_NE(manager, nullptr) << error;
  return manager;
}

TEST(BundleManagerTest, BootsAndServes) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->generation(), 0u);
  EXPECT_FALSE(manager->reload_degraded());

  const std::shared_ptr<const BundleManager::ServingState> state =
      manager->state();
  ASSERT_NE(state, nullptr);
  ASSERT_FALSE(state->samples.empty());
  const DeliveryLocationService::Answer answer =
      state->service->Query(state->samples.front().address_id);
  EXPECT_TRUE(std::isfinite(answer.location.x));
  EXPECT_TRUE(std::isfinite(answer.location.y));
}

TEST(BundleManagerTest, BootFailureReturnsNullWithReason) {
  BundleManager::Config config;
  config.dir = TempDir() + "no_such_bundle_dir";
  std::string error;
  EXPECT_EQ(BundleManager::Create(config, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(BundleManagerTest, PollWithoutPushIsUnchanged) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  const int64_t attempts_before = CounterValue("service.reload.attempts");
  EXPECT_EQ(manager->Poll(), BundleManager::ReloadOutcome::kUnchanged);
  EXPECT_EQ(manager->Poll(), BundleManager::ReloadOutcome::kUnchanged);
  // Unchanged polls never enter the reload machinery.
  EXPECT_EQ(CounterValue("service.reload.attempts"), attempts_before);
}

TEST(BundleManagerTest, PollDetectsFreshPushAndSwaps) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  // A push bumps the manifest mtime; set it explicitly rather than relying
  // on filesystem timestamp granularity.
  const std::filesystem::path manifest =
      std::filesystem::path(Fixture().dir) / "manifest.art";
  std::filesystem::last_write_time(
      manifest, std::filesystem::last_write_time(manifest) +
                    std::chrono::seconds(2));
  std::string error;
  EXPECT_EQ(manager->Poll(&error), BundleManager::ReloadOutcome::kSwapped)
      << error;
  EXPECT_EQ(manager->generation(), 1u);
  // The same stamp again: nothing new.
  EXPECT_EQ(manager->Poll(), BundleManager::ReloadOutcome::kUnchanged);
}

TEST(BundleManagerTest, PollDuringMidPushManifestGapIsUnchanged) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  // A pusher writes the manifest last; while it is absent the directory is
  // mid-push and must be left alone.
  const std::filesystem::path manifest =
      std::filesystem::path(Fixture().dir) / "manifest.art";
  const std::string bytes = ReadFileBytes(manifest.string());
  std::filesystem::remove(manifest);
  EXPECT_EQ(manager->Poll(), BundleManager::ReloadOutcome::kUnchanged);
  EXPECT_EQ(manager->generation(), 0u);
  WriteFileBytes(manifest.string(), bytes);
}

TEST(BundleManagerTest, InjectedCorruptPushRollsBack) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  const int64_t rollbacks_before = CounterValue("service.reload.rollbacks");
  const std::shared_ptr<const BundleManager::ServingState> before =
      manager->state();

  fault::ScopedFaultPlan armed(
      fault::FaultPlan().FailAlways("service.reload.corrupt"), /*seed=*/1);
  std::string error;
  EXPECT_EQ(manager->ReloadNow(&error),
            BundleManager::ReloadOutcome::kRolledBack);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(manager->reload_degraded());
  EXPECT_EQ(manager->state(), before);  // Same generation object, untouched.
  EXPECT_EQ(CounterValue("service.reload.rollbacks") - rollbacks_before, 1);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetGauge("service.reload.degraded")
                ->value(),
            1.0);
}

TEST(BundleManagerTest, RealOnDiskCorruptionRollsBack) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  const std::string model_path = Fixture().dir + "/model.art";
  const std::string valid = ReadFileBytes(model_path);
  ASSERT_GT(valid.size(), 64u);
  std::string mutated = valid;
  mutated[mutated.size() / 2] ^= 0x01;
  WriteFileBytes(model_path, mutated);

  std::string error;
  EXPECT_EQ(manager->ReloadNow(&error),
            BundleManager::ReloadOutcome::kRolledBack);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(manager->generation(), 0u);
  WriteFileBytes(model_path, valid);
}

TEST(BundleManagerTest, ValidationVetoRollsBackThenHealthySwapRecovers) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  {
    fault::ScopedFaultPlan armed(
        fault::FaultPlan().FailAlways("service.reload.validation_fail"),
        /*seed=*/1);
    std::string error;
    EXPECT_EQ(manager->ReloadNow(&error),
              BundleManager::ReloadOutcome::kRolledBack);
    EXPECT_TRUE(manager->reload_degraded());
  }
  // The next (healthy) push swaps and clears the degraded flag.
  const int64_t success_before = CounterValue("service.reload.success");
  std::string error;
  EXPECT_EQ(manager->ReloadNow(&error),
            BundleManager::ReloadOutcome::kSwapped)
      << error;
  EXPECT_EQ(manager->generation(), 1u);
  EXPECT_FALSE(manager->reload_degraded());
  EXPECT_EQ(CounterValue("service.reload.success") - success_before, 1);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetGauge("service.reload.degraded")
                ->value(),
            0.0);
}

TEST(BundleManagerTest, AgreementThresholdRejectsDivergentCandidate) {
  // An impossible agreement tolerance makes every probe "disagree": the
  // same bundle pushed back at itself must now fail shadow validation.
  BundleManager::Config config;
  config.agree_tolerance_m = -1.0;
  std::unique_ptr<BundleManager> manager = MakeManager(config);
  ASSERT_NE(manager, nullptr);
  std::string error;
  EXPECT_EQ(manager->ReloadNow(&error),
            BundleManager::ReloadOutcome::kRolledBack);
  EXPECT_NE(error.find("agree"), std::string::npos) << error;
}

TEST(BundleManagerTest, PinnedGenerationSurvivesSwap) {
  std::unique_ptr<BundleManager> manager = MakeManager();
  ASSERT_NE(manager, nullptr);
  const std::shared_ptr<const BundleManager::ServingState> pinned =
      manager->state();
  ASSERT_FALSE(pinned->samples.empty());
  const int64_t probe_id = pinned->samples.front().address_id;
  const DeliveryLocationService::Answer before =
      pinned->service->Query(probe_id);

  std::string error;
  ASSERT_EQ(manager->ReloadNow(&error),
            BundleManager::ReloadOutcome::kSwapped)
      << error;
  EXPECT_EQ(manager->generation(), 1u);
  EXPECT_EQ(pinned->generation, 0u);

  // The old generation, still pinned by an "in-flight query", keeps
  // answering exactly as before the swap.
  const DeliveryLocationService::Answer after =
      pinned->service->Query(probe_id);
  EXPECT_EQ(after.location.x, before.location.x);
  EXPECT_EQ(after.location.y, before.location.y);
}

}  // namespace
}  // namespace apps
}  // namespace dlinf
