// Death tests: the CHECK family must abort with a diagnostic on violated
// invariants (the library is exception-free; these are its failure surface).

#include "common/check.h"

#include "gtest/gtest.h"
#include "nn/tensor.h"

namespace dlinf {
namespace {

TEST(CheckDeathTest, CheckFailsWithMessage) {
  EXPECT_DEATH({ CHECK(1 == 2) << "custom context"; },
               "CHECK failed.*1 == 2.*custom context");
}

TEST(CheckDeathTest, ComparisonMacrosIncludeValues) {
  EXPECT_DEATH({ CHECK_EQ(3, 4); }, "3.*vs.*4");
  EXPECT_DEATH({ CHECK_LT(9, 2); }, "9.*vs.*2");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  CHECK(true);
  CHECK_EQ(1, 1);
  CHECK_GE(2, 1);
}

TEST(CheckDeathTest, TensorShapeMismatchAborts) {
  EXPECT_DEATH(
      { nn::Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f}); },
      "CHECK failed");
}

TEST(CheckDeathTest, BackwardOnNonScalarAborts) {
  nn::Tensor t = nn::Tensor::Zeros({2, 2}, /*requires_grad=*/true);
  EXPECT_DEATH({ t.Backward(); }, "scalar");
}

}  // namespace
}  // namespace dlinf
